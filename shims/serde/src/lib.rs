//! Offline stand-in for `serde`.
//!
//! The real serde models serialization through a generic `Serializer`
//! visitor; this workspace only ever serializes to JSON (via
//! `serde_json::to_string_pretty` in the bench report writer), so the shim
//! collapses the abstraction: [`Serialize`] writes JSON text directly into a
//! `String`. `#[derive(Serialize)]` (from the sibling `serde_derive` shim)
//! generates field-by-field implementations; `#[derive(Deserialize)]` is
//! accepted and expands to nothing, since nothing in the workspace
//! deserializes.

pub use serde_derive::{Deserialize, Serialize};

/// Types that can write themselves as JSON.
pub trait Serialize {
    /// Append this value's JSON encoding to `out`.
    fn serialize_json(&self, out: &mut String);
}

/// Marker trait accepted where real serde's `Deserialize` would be named.
pub trait DeserializeShim {}

/// Mirror of serde's `ser` module path.
pub mod ser {
    pub use crate::Serialize;
}

/// Append `s` as a JSON string literal (quoted, escaped).
pub fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Serialize a map key: JSON object keys must be strings, so non-string
/// keys (integers, etc.) are wrapped in quotes the way serde_json does.
pub fn write_json_key<K: Serialize + ?Sized>(key: &K, out: &mut String) {
    let mut tmp = String::new();
    key.serialize_json(&mut tmp);
    if tmp.starts_with('"') {
        out.push_str(&tmp);
    } else {
        out.push('"');
        out.push_str(&tmp);
        out.push('"');
    }
}

macro_rules! int_impls {
    ($($t:ty),*) => {
        $(impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        })*
    };
}

int_impls!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! float_impls {
    ($($t:ty),*) => {
        $(impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                if self.is_finite() {
                    // `{:?}` keeps a decimal point or exponent so the value
                    // reads back as a float ("1.0", not "1").
                    out.push_str(&format!("{self:?}"));
                } else {
                    out.push_str("null");
                }
            }
        })*
    };
}

float_impls!(f32, f64);

impl Serialize for bool {
    fn serialize_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Serialize for char {
    fn serialize_json(&self, out: &mut String) {
        write_json_string(&self.to_string(), out);
    }
}

impl Serialize for str {
    fn serialize_json(&self, out: &mut String) {
        write_json_string(self, out);
    }
}

impl Serialize for String {
    fn serialize_json(&self, out: &mut String) {
        write_json_string(self, out);
    }
}

impl Serialize for () {
    fn serialize_json(&self, out: &mut String) {
        out.push_str("null");
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, out: &mut String) {
        match self {
            Some(v) => v.serialize_json(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

fn write_seq<'a, T: Serialize + 'a, I: Iterator<Item = &'a T>>(iter: I, out: &mut String) {
    out.push('[');
    let mut first = true;
    for item in iter {
        if !first {
            out.push(',');
        }
        first = false;
        item.serialize_json(out);
    }
    out.push(']');
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, out: &mut String) {
        write_seq(self.iter(), out);
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self, out: &mut String) {
        write_seq(self.iter(), out);
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_json(&self, out: &mut String) {
        write_seq(self.iter(), out);
    }
}

macro_rules! tuple_impls {
    ($(($($n:tt $t:ident),+))+) => {
        $(impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize_json(&self, out: &mut String) {
                out.push('[');
                let mut first = true;
                $(
                    if !first { out.push(','); }
                    first = false;
                    self.$n.serialize_json(out);
                )+
                let _ = first;
                out.push(']');
            }
        })+
    };
}

tuple_impls! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

fn write_map<'a, K, V, I>(iter: I, out: &mut String)
where
    K: Serialize + 'a,
    V: Serialize + 'a,
    I: Iterator<Item = (&'a K, &'a V)>,
{
    out.push('{');
    let mut first = true;
    for (k, v) in iter {
        if !first {
            out.push(',');
        }
        first = false;
        write_json_key(k, out);
        out.push(':');
        v.serialize_json(out);
    }
    out.push('}');
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize_json(&self, out: &mut String) {
        write_map(self.iter(), out);
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn serialize_json(&self, out: &mut String) {
        write_map(self.iter(), out);
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn serialize_json(&self, out: &mut String) {
        write_seq(self.iter(), out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn json<T: Serialize>(v: &T) -> String {
        let mut s = String::new();
        v.serialize_json(&mut s);
        s
    }

    #[test]
    fn primitives() {
        assert_eq!(json(&3u32), "3");
        assert_eq!(json(&-4i64), "-4");
        assert_eq!(json(&1.5f64), "1.5");
        assert_eq!(json(&2.0f64), "2.0");
        assert_eq!(json(&true), "true");
        assert_eq!(json(&"a\"b"), "\"a\\\"b\"");
    }

    #[test]
    fn containers() {
        assert_eq!(json(&vec![1u8, 2]), "[1,2]");
        assert_eq!(json(&Some(5u8)), "5");
        assert_eq!(json(&None::<u8>), "null");
        let mut m = std::collections::BTreeMap::new();
        m.insert(7u64, 9u64);
        assert_eq!(json(&m), "{\"7\":9}");
        assert_eq!(json(&(1u8, "x")), "[1,\"x\"]");
    }
}
