//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s non-poisoning API:
//! `lock()`/`read()`/`write()` return guards directly instead of a
//! `LockResult`. A poisoned std lock (a panic while held) is recovered
//! rather than propagated, matching parking_lot's behaviour of not having
//! poisoning at all.
//!
//! Unlike the real crate, this shim carries an opt-in **lockdep** layer
//! (`src/lockdep.rs`, armed by `RADD_LOCKDEP=1`): every lock joins a
//! global acquisition-order graph and an AB/BA ordering inversion panics
//! with a two-chain witness at the moment the second order is *observed*
//! — no actual deadlock or special scheduler needed. Guards are therefore
//! thin wrappers (deref to the inner guard) rather than type aliases, so
//! releases can pop the thread's held-lock stack.

mod lockdep;

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

/// A mutual exclusion primitive (non-poisoning `lock()`).
#[derive(Debug)]
pub struct Mutex<T: ?Sized> {
    dep: lockdep::LockClass,
    inner: sync::Mutex<T>,
}

/// A guard returned by [`Mutex::lock`]. Dropping it unlocks (and pops the
/// lockdep held-stack entry when the detector is armed).
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    _dep: Option<lockdep::Held>,
    inner: sync::MutexGuard<'a, T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Display> fmt::Display for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            dep: lockdep::LockClass::new::<T>(),
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let dep = self.dep.acquire("Mutex");
        MutexGuard {
            _dep: dep,
            inner: self.inner.lock().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let inner = match self.inner.try_lock() {
            Ok(g) => g,
            Err(sync::TryLockError::Poisoned(e)) => e.into_inner(),
            Err(sync::TryLockError::WouldBlock) => return None,
        };
        Some(MutexGuard {
            _dep: self.dep.acquire_try("Mutex"),
            inner,
        })
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock (non-poisoning `read()`/`write()`).
#[derive(Debug)]
pub struct RwLock<T: ?Sized> {
    dep: lockdep::LockClass,
    inner: sync::RwLock<T>,
}

/// A shared guard returned by [`RwLock::read`].
#[derive(Debug)]
pub struct RwLockReadGuard<'a, T: ?Sized> {
    _dep: Option<lockdep::Held>,
    inner: sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized + fmt::Display> fmt::Display for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

/// An exclusive guard returned by [`RwLock::write`].
#[derive(Debug)]
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    _dep: Option<lockdep::Held>,
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Display> fmt::Display for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            dep: lockdep::LockClass::new::<T>(),
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let dep = self.dep.acquire("RwLock");
        RwLockReadGuard {
            _dep: dep,
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let dep = self.dep.acquire("RwLock");
        RwLockWriteGuard {
            _dep: dep,
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Try to acquire shared access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        let inner = match self.inner.try_read() {
            Ok(g) => g,
            Err(sync::TryLockError::Poisoned(e)) => e.into_inner(),
            Err(sync::TryLockError::WouldBlock) => return None,
        };
        Some(RwLockReadGuard {
            _dep: self.dep.acquire_try("RwLock"),
            inner,
        })
    }

    /// Try to acquire exclusive access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        let inner = match self.inner.try_write() {
            Ok(g) => g,
            Err(sync::TryLockError::Poisoned(e)) => e.into_inner(),
            Err(sync::TryLockError::WouldBlock) => return None,
        };
        Some(RwLockWriteGuard {
            _dep: self.dep.acquire_try("RwLock"),
            inner,
        })
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(3);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 4);
        assert_eq!(m.into_inner(), 4);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![false; 2]);
        l.write()[1] = true;
        assert!(l.read()[1]);
        assert!(!l.read()[0]);
    }

    #[test]
    fn try_variants_and_defaults() {
        let m: Mutex<u32> = Mutex::default();
        {
            let _g = m.lock();
            // Same-thread second try_lock must not succeed (std semantics;
            // a same-instance relock would self-deadlock if blocking).
            assert!(m.try_lock().is_none());
        }
        assert_eq!(*m.try_lock().expect("uncontended"), 0);
        let l: RwLock<u32> = RwLock::default();
        {
            let _r = l.read();
            assert!(l.try_write().is_none());
            assert!(l.try_read().is_some());
        }
        assert!(l.try_write().is_some());
    }
}
