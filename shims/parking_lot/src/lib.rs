//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s non-poisoning API:
//! `lock()`/`read()`/`write()` return guards directly instead of a
//! `LockResult`. A poisoned std lock (a panic while held) is recovered
//! rather than propagated, matching parking_lot's behaviour of not having
//! poisoning at all.

use std::sync;

/// A mutual exclusion primitive (non-poisoning `lock()`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// A guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock (non-poisoning `read()`/`write()`).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// A shared guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// An exclusive guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire shared access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Try to acquire exclusive access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(3);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 4);
        assert_eq!(m.into_inner(), 4);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![false; 2]);
        l.write()[1] = true;
        assert!(l.read()[1]);
        assert!(!l.read()[0]);
    }
}
