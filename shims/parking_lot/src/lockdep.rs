//! Opt-in lock-order (“lockdep”) instrumentation.
//!
//! With `RADD_LOCKDEP=1` in the environment, every `Mutex`/`RwLock` built
//! from this shim joins a global acquisition-order graph:
//!
//! * each lock instance gets a **class id** at construction (plus the
//!   inner type's name for readable witnesses);
//! * a thread-local stack tracks the classes the current thread holds;
//! * on every **blocking** acquisition, a directed edge `held → wanted`
//!   is recorded for each currently-held class, remembering the full
//!   holder chain that first produced it (the *witness*);
//! * before recording, the would-be edges are checked against the graph:
//!   if a path `wanted →* held` already exists, the two orders form a
//!   cycle — a potential deadlock — and the acquisition **panics** with
//!   a two-chain witness (this thread's chain and the recorded chain of
//!   the conflicting edge), after dumping the same text under
//!   `target/lockdep/` for CI artifact upload.
//!
//! `try_lock`/`try_read`/`try_write` acquisitions enter the held stack
//! (so later blocking acquisitions see them) but record no edges and
//! trigger no panic: a non-blocking attempt cannot complete a deadlock
//! cycle by itself. `RwLock` readers are tracked like writers — a
//! read-read inversion only deadlocks with a writer wedged between, but
//! the discipline “one order, everywhere” is the point of the tool, so
//! the conservative report is intended.
//!
//! The detector works fully offline — unlike loom or TSan it needs no
//! special runtime or schedule exploration; a single test run that merely
//! *uses* two locks in both orders (even without contending) produces the
//! inversion report. With the variable unset, cost is one relaxed atomic
//! load per lock construction and a `None` branch per acquisition.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

/// Is the detector armed? Decided once per process from `RADD_LOCKDEP`.
pub(crate) fn enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| std::env::var("RADD_LOCKDEP").is_ok_and(|v| v == "1"))
}

static NEXT_CLASS: AtomicU64 = AtomicU64::new(1);
static NEXT_TOKEN: AtomicU64 = AtomicU64::new(1);

/// Identity a lock carries from construction: a process-unique class id
/// and the inner type's name for witness text. Id 0 means “detector off”.
#[derive(Debug)]
pub(crate) struct LockClass {
    id: u64,
    name: &'static str,
}

impl LockClass {
    pub(crate) fn new<T>() -> LockClass {
        if enabled() {
            LockClass {
                id: NEXT_CLASS.fetch_add(1, Ordering::Relaxed),
                name: std::any::type_name::<T>(),
            }
        } else {
            LockClass { id: 0, name: "" }
        }
    }

    /// Record a blocking acquisition (edges + cycle check), returning the
    /// held-stack token to drop on release.
    pub(crate) fn acquire(&self, kind: &'static str) -> Option<Held> {
        if self.id == 0 {
            return None;
        }
        Some(on_acquire(self, kind, true))
    }

    /// Record a successful non-blocking acquisition (held-stack only).
    pub(crate) fn acquire_try(&self, kind: &'static str) -> Option<Held> {
        if self.id == 0 {
            return None;
        }
        Some(on_acquire(self, kind, false))
    }
}

/// A held-stack entry's receipt; dropping it releases the entry.
#[derive(Debug)]
pub(crate) struct Held {
    token: u64,
}

impl Drop for Held {
    fn drop(&mut self) {
        HELD.with(|h| {
            h.borrow_mut().retain(|e| e.token != self.token);
        });
    }
}

#[derive(Clone)]
struct HeldEntry {
    class: u64,
    desc: String,
    token: u64,
}

thread_local! {
    static HELD: RefCell<Vec<HeldEntry>> = const { RefCell::new(Vec::new()) };
}

/// First-witness record for one graph edge `from → to`.
struct EdgeWitness {
    /// Chain of descriptions the recording thread held, in order.
    held_chain: Vec<String>,
    /// Description of the lock it was acquiring.
    acquired: String,
}

#[derive(Default)]
struct Graph {
    /// Adjacency: class id → classes acquired while it was held.
    adj: HashMap<u64, Vec<u64>>,
    /// Edge (from, to) → the first chain that recorded it.
    witness: HashMap<(u64, u64), EdgeWitness>,
}

fn graph() -> &'static Mutex<Graph> {
    static GRAPH: OnceLock<Mutex<Graph>> = OnceLock::new();
    GRAPH.get_or_init(|| Mutex::new(Graph::default()))
}

/// DFS: is `to` reachable from `from`? Returns the path `from → … → to`
/// (as class ids) when it is.
fn find_path(g: &Graph, from: u64, to: u64) -> Option<Vec<u64>> {
    let mut stack = vec![vec![from]];
    let mut seen = vec![from];
    while let Some(path) = stack.pop() {
        let last = *path.last().expect("paths are never empty");
        if last == to {
            return Some(path);
        }
        if let Some(nexts) = g.adj.get(&last) {
            for &n in nexts {
                if !seen.contains(&n) {
                    seen.push(n);
                    let mut p = path.clone();
                    p.push(n);
                    stack.push(p);
                }
            }
        }
    }
    None
}

fn on_acquire(class: &LockClass, kind: &'static str, blocking: bool) -> Held {
    let desc = format!("{kind}#{} ({})", class.id, class.name);
    let held: Vec<HeldEntry> = HELD.with(|h| h.borrow().clone());
    if blocking && !held.is_empty() {
        let mut g = graph().lock().unwrap_or_else(PoisonError::into_inner);
        // Cycle check first: a path wanted →* held means some thread has
        // acquired a lock we hold while holding the lock we want.
        for e in &held {
            if e.class == class.id {
                continue; // same instance re-entry would self-deadlock; out of scope
            }
            if let Some(path) = find_path(&g, class.id, e.class) {
                let report = inversion_report(&g, &held, &desc, &path);
                drop(g);
                dump_witness(&report);
                panic!("{report}");
            }
        }
        for e in &held {
            if e.class == class.id {
                continue;
            }
            let key = (e.class, class.id);
            if let std::collections::hash_map::Entry::Vacant(slot) = g.witness.entry(key) {
                slot.insert(EdgeWitness {
                    held_chain: held.iter().map(|h| h.desc.clone()).collect(),
                    acquired: desc.clone(),
                });
                g.adj.entry(e.class).or_default().push(class.id);
            }
        }
    }
    let token = NEXT_TOKEN.fetch_add(1, Ordering::Relaxed);
    HELD.with(|h| {
        h.borrow_mut().push(HeldEntry {
            class: class.id,
            desc,
            token,
        });
    });
    Held { token }
}

/// Build the two-chain witness text for an inversion: this thread's chain
/// and the recorded chain of the first edge along the conflicting path.
fn inversion_report(g: &Graph, held: &[HeldEntry], acquiring: &str, path: &[u64]) -> String {
    let this_chain = held
        .iter()
        .map(|e| e.desc.as_str())
        .collect::<Vec<_>>()
        .join(" -> ");
    let mut report = format!(
        "lockdep: lock-order inversion (potential deadlock)\n  \
         this thread: holds [{this_chain}], acquiring {acquiring}\n"
    );
    for pair in path.windows(2) {
        if let Some(w) = g.witness.get(&(pair[0], pair[1])) {
            let prior_chain = w.held_chain.join(" -> ");
            report.push_str(&format!(
                "  prior chain: held [{prior_chain}], acquired {}\n",
                w.acquired
            ));
        }
    }
    report.push_str(
        "  the two acquisition orders form a cycle; pick one order and use it everywhere \
         (DESIGN.md §16)",
    );
    report
}

/// Best-effort dump next to the workspace target dir so CI can upload it.
fn dump_witness(report: &str) {
    let mut dir = std::env::current_dir().unwrap_or_default();
    loop {
        if dir.join("Cargo.lock").is_file() {
            break;
        }
        if !dir.pop() {
            return;
        }
    }
    let dump_dir = dir.join("target").join("lockdep");
    if std::fs::create_dir_all(&dump_dir).is_err() {
        return;
    }
    let seq = NEXT_TOKEN.fetch_add(1, Ordering::Relaxed);
    let path = dump_dir.join(format!("witness-{}-{seq}.txt", std::process::id()));
    let _ = std::fs::write(path, report);
}
