//! Offline stand-in for the `bytes` crate.
//!
//! This workspace builds in environments with no crates.io access, so the
//! external dependencies are vendored as minimal shims implementing exactly
//! the API surface the workspace uses. [`Bytes`] here is a cheaply-cloneable
//! immutable byte buffer backed by `Arc<[u8]>` — reference-counted clones,
//! slice deref, and the usual comparison traits.

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable contiguous slice of memory.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Copy `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes { data: data.into() }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copy out into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }

    /// A sub-range copy (the real crate shares the backing buffer; copying
    /// preserves semantics, which is all the workspace relies on).
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        Bytes::copy_from_slice(&self.data[range])
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Bytes {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.data.cmp(&other.data)
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.data.hash(state)
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.data[..] == *other
    }
}

impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        *self == other.data[..]
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.data[..] == other[..]
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other.data[..]
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.data[..] == **other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_and_compares() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
        assert_eq!(b, vec![1u8, 2, 3]);
        assert_eq!(&b[..], &[1u8, 2, 3][..]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(b.slice(1..3).to_vec(), vec![2, 3]);
    }

    #[test]
    fn empty_default() {
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::default().len(), 0);
    }
}
