//! Offline stand-in for the `bytes` crate.
//!
//! This workspace builds in environments with no crates.io access, so the
//! external dependencies are vendored as minimal shims implementing exactly
//! the API surface the workspace uses. [`Bytes`] here is a cheaply-cloneable
//! immutable byte buffer backed by `Arc<Vec<u8>>` plus a view range —
//! reference-counted clones, zero-copy sub-slicing, slice deref, and the
//! usual comparison traits. Like the real crate, `clone`, `slice`, and
//! `From<Vec<u8>>` never copy payload bytes (the vector's allocation is
//! adopted as the backing store); only `copy_from_slice`/`to_vec` do.

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable contiguous slice of memory.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes {
            data: Arc::new(Vec::new()),
            start: 0,
            end: 0,
        }
    }
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Copy `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes {
            data: Arc::new(data.to_vec()),
            start: 0,
            end: data.len(),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Copy out into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// A zero-copy sub-range view sharing the backing allocation.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice {}..{} out of range for Bytes of length {}",
            range.start,
            range.end,
            self.len()
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    #[inline]
    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Bytes {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == other.as_slice()
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        *self.as_slice() == other[..]
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == *other.as_slice()
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl serde::Serialize for Bytes {
    fn serialize_json(&self, out: &mut String) {
        self.as_slice().serialize_json(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_and_compares() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
        assert_eq!(b, vec![1u8, 2, 3]);
        assert_eq!(&b[..], &[1u8, 2, 3][..]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(b.slice(1..3).to_vec(), vec![2, 3]);
    }

    #[test]
    fn empty_default() {
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::default().len(), 0);
    }

    #[test]
    fn slice_shares_backing_allocation() {
        let b = Bytes::from((0u8..64).collect::<Vec<u8>>());
        let s = b.slice(8..24);
        assert_eq!(s.len(), 16);
        assert_eq!(s[0], 8);
        // Same allocation: the sub-slice's pointer sits inside the parent's.
        let parent = b.as_ref().as_ptr() as usize;
        let child = s.as_ref().as_ptr() as usize;
        assert_eq!(child, parent + 8);
        // Nested slices keep composing against the original buffer.
        let s2 = s.slice(4..8);
        assert_eq!(s2.to_vec(), vec![12, 13, 14, 15]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slice_out_of_range_panics() {
        Bytes::from(vec![0u8; 4]).slice(2..6);
    }
}
