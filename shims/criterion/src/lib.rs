//! Offline stand-in for `criterion`.
//!
//! Implements the `criterion_group!`/`criterion_main!` entry points and the
//! `Criterion` → `BenchmarkGroup` → `Bencher::iter` API used by the bench
//! targets, with a simple calibrated timing loop instead of criterion's
//! statistical machinery. Each benchmark prints its mean per-iteration time
//! (and throughput when configured). Under `--test` (how `cargo test` runs
//! `harness = false` bench targets) every benchmark executes exactly one
//! iteration as a smoke check.

use std::hint;
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a value or the work producing it.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Throughput units for per-second reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A named benchmark id (`BenchmarkId::new("op", param)`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Compose a function name and a parameter display.
    pub fn new<S: std::fmt::Display, P: std::fmt::Display>(name: S, param: P) -> BenchmarkId {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }

    /// A bare parameterised id.
    pub fn from_parameter<P: std::fmt::Display>(param: P) -> BenchmarkId {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// The timing loop handle passed to each benchmark closure.
pub struct Bencher {
    smoke_only: bool,
    measured: Option<Duration>,
}

impl Bencher {
    /// Run `f` repeatedly and record its mean execution time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.smoke_only {
            black_box(f());
            self.measured = Some(Duration::ZERO);
            return;
        }
        // Calibrate: grow the batch until it runs for at least ~10 ms.
        let mut batch: u64 = 1;
        let batch_time = loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let t = start.elapsed();
            if t >= Duration::from_millis(10) || batch >= 1 << 30 {
                break t;
            }
            batch *= 4;
        };
        // Measure: several batches, keep the best (least-noise) mean. The
        // minimum is the standard contention-resistant estimator — shared
        // CPUs only ever add time, never subtract it.
        let mut best = batch_time;
        for _ in 0..8 {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            best = best.min(start.elapsed());
        }
        self.measured = Some(best / u32::try_from(batch).unwrap_or(u32::MAX).max(1));
    }

    /// Like [`iter`](Bencher::iter) with per-iteration setup excluded —
    /// approximated here by timing setup + routine together (adequate for a
    /// smoke-capable shim).
    pub fn iter_batched<I, O, S: FnMut() -> I, F: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: F,
        _size: BatchSize,
    ) {
        self.iter(|| routine(setup()));
    }
}

/// Batch sizing hint (ignored by the shim).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs.
    SmallInput,
    /// Large inputs.
    LargeInput,
    /// Per-iteration inputs.
    PerIteration,
}

fn report(name: &str, time: Duration, throughput: Option<Throughput>) {
    if time.is_zero() {
        println!("bench {name:50} smoke-tested (1 iteration)");
        return;
    }
    let ns = time.as_nanos();
    match throughput {
        Some(Throughput::Bytes(b)) if ns > 0 => {
            let gib_s = b as f64 / time.as_secs_f64() / (1024.0 * 1024.0 * 1024.0);
            println!("bench {name:50} {ns:>12} ns/iter  {gib_s:>9.3} GiB/s");
        }
        Some(Throughput::Elements(e)) if ns > 0 => {
            let melem_s = e as f64 / time.as_secs_f64() / 1.0e6;
            println!("bench {name:50} {ns:>12} ns/iter  {melem_s:>9.3} Melem/s");
        }
        _ => println!("bench {name:50} {ns:>12} ns/iter"),
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    parent: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the throughput used for per-second reporting.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Run one benchmark in the group.
    pub fn bench_function<S: std::fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        mut f: F,
    ) {
        let mut b = Bencher {
            smoke_only: self.parent.smoke_only,
            measured: None,
        };
        f(&mut b);
        let full = format!("{}/{}", self.name, id);
        report(&full, b.measured.unwrap_or_default(), self.throughput);
    }

    /// Finish the group (reporting is incremental; this is a no-op).
    pub fn finish(self) {}
}

/// The benchmark driver.
pub struct Criterion {
    smoke_only: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // `cargo test` runs harness=false bench binaries with `--test`;
        // `cargo bench` passes `--bench`. Smoke mode keeps test runs fast.
        let smoke = std::env::args().any(|a| a == "--test")
            || std::env::var_os("CRITERION_SMOKE").is_some();
        Criterion { smoke_only: smoke }
    }
}

impl Criterion {
    /// Open a named group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<S: std::fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        mut f: F,
    ) {
        let mut b = Bencher {
            smoke_only: self.smoke_only,
            measured: None,
        };
        f(&mut b);
        report(&id.to_string(), b.measured.unwrap_or_default(), None);
    }

    /// Configuration hook (accepted and ignored).
    pub fn configure_from_args(self) -> Criterion {
        self
    }
}

/// Declare a benchmark group function, as in real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declare the bench binary's `main`, as in real criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_once() {
        let mut c = Criterion { smoke_only: true };
        let mut runs = 0u32;
        c.bench_function("counter", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        assert_eq!(runs, 1);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion { smoke_only: true };
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Bytes(128));
        g.bench_function("f", |b| b.iter(|| black_box(2 + 2)));
        g.finish();
    }
}
