//! Offline stand-in for `serde_json`.
//!
//! Serializes via the serde shim's direct-to-JSON [`serde::Serialize`]
//! trait. `to_string` emits compact JSON; `to_string_pretty` re-indents it
//! with the same 2-space style serde_json uses, so the files under
//! `results/` stay human-readable.

use std::fmt;

/// Serialization error (the shim's serializers are infallible, but the
/// signature keeps call sites source-compatible with real serde_json).
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> std::io::Error {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e)
    }
}

/// Serialize `value` as a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize_json(&mut out);
    Ok(out)
}

/// Serialize `value` as 2-space-indented JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let compact = to_string(value)?;
    Ok(prettify(&compact))
}

/// Re-indent compact JSON. Structure-aware but not validating: strings are
/// passed through opaquely, separators outside strings get newlines and
/// indentation.
fn prettify(compact: &str) -> String {
    let mut out = String::with_capacity(compact.len() * 2);
    let mut indent = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    let push_indent = |out: &mut String, n: usize| {
        out.push('\n');
        for _ in 0..n {
            out.push_str("  ");
        }
    };
    let mut chars = compact.chars().peekable();
    while let Some(c) = chars.next() {
        if in_string {
            out.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_string = true;
                out.push(c);
            }
            '{' | '[' => {
                out.push(c);
                // Keep empty containers on one line.
                if let Some(&next) = chars.peek() {
                    if (c == '{' && next == '}') || (c == '[' && next == ']') {
                        out.push(chars.next().unwrap());
                        continue;
                    }
                }
                indent += 1;
                push_indent(&mut out, indent);
            }
            '}' | ']' => {
                indent = indent.saturating_sub(1);
                push_indent(&mut out, indent);
                out.push(c);
            }
            ',' => {
                out.push(c);
                push_indent(&mut out, indent);
            }
            ':' => {
                out.push(c);
                out.push(' ');
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty() {
        let v = vec![1u8, 2];
        assert_eq!(to_string(&v).unwrap(), "[1,2]");
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }

    #[test]
    fn pretty_keeps_strings_opaque() {
        let s = "a{b,c}d";
        assert_eq!(to_string_pretty(&s).unwrap(), "\"a{b,c}d\"");
    }

    #[test]
    fn error_converts_to_io() {
        let e = Error("x".into());
        let io: std::io::Error = e.into();
        assert_eq!(io.kind(), std::io::ErrorKind::InvalidData);
    }
}
