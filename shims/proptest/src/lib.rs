//! Offline stand-in for `proptest`.
//!
//! Keeps the real crate's surface (`proptest!`, `prop_assert*`,
//! `prop_oneof!`, `any`, `Just`, `Strategy::prop_map`, `collection::vec`,
//! `ProptestConfig::with_cases`) but swaps the engine for a deterministic
//! seeded runner:
//!
//! * every test's case sequence derives from an FNV hash of the test's full
//!   path, so runs are reproducible across processes and machines;
//! * each case gets its own `u64` seed; on failure the seed is printed with
//!   replay instructions (`PROPTEST_SEED=0x... cargo test <name>` reruns
//!   exactly that case);
//! * `PROPTEST_CASES` scales the case count globally;
//! * there is no shrinking — the per-case seed already pinpoints the input.

/// Deterministic splitmix64 generator handed to strategies.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn uniform_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

pub mod test_runner {
    /// Runner configuration. Only `cases` is honoured by the shim; the
    /// struct is non-exhaustive in spirit, so construct it via
    /// [`ProptestConfig::with_cases`] or `Default`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod strategy {
    use super::TestRng;

    /// A recipe for generating values of `Self::Value` from a seeded RNG.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            (**self).sample(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            (**self).sample(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Result of [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {
            $(
                impl Strategy for std::ops::Range<$t> {
                    type Value = $t;
                    fn sample(&self, rng: &mut TestRng) -> $t {
                        assert!(
                            self.start < self.end,
                            "empty range strategy {:?}..{:?}", self.start, self.end
                        );
                        let span = (self.end as i128 - self.start as i128) as u64;
                        (self.start as i128 + rng.below(span) as i128) as $t
                    }
                }
                impl Strategy for std::ops::RangeInclusive<$t> {
                    type Value = $t;
                    fn sample(&self, rng: &mut TestRng) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "empty range strategy {lo:?}..={hi:?}");
                        let span = (hi as i128 - lo as i128 + 1) as u64;
                        if span == 0 {
                            // Full-width inclusive range.
                            return rng.next_u64() as $t;
                        }
                        (lo as i128 + rng.below(span) as i128) as $t
                    }
                }
            )*
        };
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty f64 range strategy");
            self.start + rng.uniform_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;
        fn sample(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty f32 range strategy");
            self.start + (rng.uniform_f64() as f32) * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($n:tt $t:ident),+))+) => {
            $(
                impl<$($t: Strategy),+> Strategy for ($($t,)+) {
                    type Value = ($($t::Value,)+);
                    fn sample(&self, rng: &mut TestRng) -> Self::Value {
                        ($(self.$n.sample(rng),)+)
                    }
                }
            )+
        };
    }

    tuple_strategy! {
        (0 A)
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    }

    /// Weighted choice among boxed strategies — the engine behind
    /// `prop_oneof!`.
    pub struct Union<T> {
        arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
        total: u64,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
            let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! needs at least one positive weight");
            Union { arms, total }
        }

        /// Box an arm, erasing its concrete strategy type.
        pub fn arm<S>(s: S) -> Box<dyn Strategy<Value = T>>
        where
            S: Strategy<Value = T> + 'static,
        {
            Box::new(s)
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.sample(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weights exhausted")
        }
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {
            $(impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            })*
        };
    }

    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for u128 {
        fn arbitrary(rng: &mut TestRng) -> u128 {
            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
        }
    }

    impl Arbitrary for i128 {
        fn arbitrary(rng: &mut TestRng) -> i128 {
            u128::arbitrary(rng) as i128
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            // Scalar values below the surrogate range are always valid.
            char::from_u32(rng.below(0xD800) as u32).unwrap()
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.uniform_f64()
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            rng.uniform_f64() as f32
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Debug)]
    pub struct Any<T>(PhantomData<fn() -> T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T` (`any::<u64>()` etc.).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Length bound for [`vec()`](fn@vec): an exact size or a half-open/inclusive range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of values from `element`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi_inclusive - self.size.lo + 1;
            let len = self.size.lo + rng.below(span as u64) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

#[doc(hidden)]
pub mod __private {
    use super::test_runner::ProptestConfig;
    use super::TestRng;
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

    fn fnv1a(s: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    fn env_u64(name: &str) -> Option<u64> {
        let raw = std::env::var(name).ok()?;
        let raw = raw.trim();
        let parsed = if let Some(hex) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
            u64::from_str_radix(hex, 16)
        } else {
            raw.parse()
        };
        match parsed {
            Ok(v) => Some(v),
            Err(_) => {
                eprintln!("proptest shim: ignoring unparsable {name}={raw:?}");
                None
            }
        }
    }

    /// Drive one property through its deterministic case schedule.
    pub fn run_cases<F: FnMut(&mut TestRng)>(name: &str, config: &ProptestConfig, mut f: F) {
        // Explicit replay: run exactly the one failing case.
        if let Some(seed) = env_u64("PROPTEST_SEED") {
            eprintln!("proptest shim: replaying {name} with seed {seed:#018x}");
            let mut rng = TestRng::new(seed);
            f(&mut rng);
            return;
        }
        let cases = env_u64("PROPTEST_CASES")
            .map(|c| c.min(u32::MAX as u64) as u32)
            .unwrap_or(config.cases)
            .max(1);
        let base = fnv1a(name);
        for case in 0..cases {
            // Per-case seed: mix the base with the index so any case can be
            // replayed in isolation via PROPTEST_SEED.
            let seed = base
                .wrapping_add((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .rotate_left(17)
                ^ 0x5851_F42D_4C95_7F2D;
            let mut rng = TestRng::new(seed);
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(&mut rng))) {
                eprintln!(
                    "proptest shim: {name} failed at case {case}/{cases} \
                     (seed {seed:#018x}); replay just this case with \
                     PROPTEST_SEED={seed:#x}"
                );
                resume_unwind(payload);
            }
        }
    }
}

/// Property-test harness macro. Accepts an optional
/// `#![proptest_config(expr)]` header followed by any number of test
/// functions whose parameters use `pattern in strategy` syntax. Attributes
/// (including `#[test]` and doc comments) are passed through verbatim.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$attr:meta])*
     fn $name:ident($($p:pat_param in $s:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __config = $config;
            let __strats = ($($s,)+);
            $crate::__private::run_cases(
                concat!(module_path!(), "::", stringify!($name)),
                &__config,
                |__rng| {
                    let ($($p,)+) =
                        $crate::strategy::Strategy::sample(&__strats, __rng);
                    $body
                },
            );
        }
        $crate::__proptest_fns!(($config) $($rest)*);
    };
}

/// Assert within a property; panics abort the case and print its seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Skip the current case when its inputs don't meet a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return;
        }
    };
}

/// Weighted (`w => strategy`) or uniform choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Union::arm($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Union::arm($strategy))),+
        ])
    };
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

// Re-exported for strategies written against the crate root path.
pub use arbitrary::any;
pub use strategy::{Just, Strategy};
pub use test_runner::ProptestConfig;

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    #[test]
    fn determinism() {
        use super::strategy::Strategy;
        let strat = super::collection::vec(0u8..200, 3..9);
        let a: Vec<Vec<u8>> = {
            let mut rng = TestRng::new(42);
            (0..10).map(|_| strat.sample(&mut rng)).collect()
        };
        let b: Vec<Vec<u8>> = {
            let mut rng = TestRng::new(42);
            (0..10).map(|_| strat.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn ranges_respect_bounds() {
        use super::strategy::Strategy;
        let mut rng = TestRng::new(7);
        for _ in 0..1000 {
            let v = (5usize..17).sample(&mut rng);
            assert!((5..17).contains(&v));
            let f = (0.25f64..0.75).sample(&mut rng);
            assert!((0.25..0.75).contains(&f));
            let i = (-4i64..=4).sample(&mut rng);
            assert!((-4..=4).contains(&i));
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        use super::strategy::Strategy;
        let strat = prop_oneof![
            1 => Just(0u8),
            3 => (1u8..4).prop_map(|v| v),
        ];
        let mut rng = TestRng::new(99);
        let mut seen = [false; 4];
        for _ in 0..500 {
            seen[strat.sample(&mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    // The macro itself, exercised end to end.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Sum of sampled parts stays within the strategy bounds.
        #[test]
        fn macro_roundtrip(
            a in 0u64..100,
            mut v in super::collection::vec(any::<u8>(), 1..5),
            flag in any::<bool>(),
        ) {
            v.push(0);
            prop_assume!(a < 100);
            prop_assert!(v.len() >= 2);
            prop_assert_eq!(u64::from(flag) / 2, 0);
            prop_assert_ne!(v.len(), 0, "len {}", v.len());
            prop_assert!(a < 100, "a was {}", a);
        }
    }
}
