//! Offline stand-in for `crossbeam`.
//!
//! Only the `channel` module is provided, implemented over
//! `std::sync::mpsc`. The workspace uses MPSC topology exclusively (each
//! receiver is owned by one site thread), so std's channels carry the exact
//! semantics needed: unbounded buffering, `Sender: Clone`, timeout receives
//! and disconnect detection.

/// Multi-producer channels (std-backed subset of `crossbeam-channel`).
pub mod channel {
    use std::sync::mpsc;
    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};
    use std::time::Duration;

    /// The sending half of a channel.
    #[derive(Debug)]
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    // Derived Clone would require T: Clone; the sender handle itself is
    // always cloneable.
    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Send a value; errors only when every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value)
        }
    }

    /// The receiving half of a channel.
    #[derive(Debug)]
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Block until a value arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv()
        }

        /// Block up to `timeout` for a value.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout)
        }

        /// Take a value if one is already queued.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv()
        }

        /// Iterate over queued values without blocking.
        pub fn try_iter(&self) -> mpsc::TryIter<'_, T> {
            self.inner.try_iter()
        }

        /// Iterate, blocking, until all senders disconnect.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.inner.iter()
        }
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    /// Create a bounded channel (std `sync_channel`).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        // std's sync_channel sender is a different type; wrap via a relay is
        // overkill for a shim — the workspace only uses unbounded channels,
        // so bounded simply degrades to unbounded buffering.
        let _ = cap;
        unbounded()
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn send_recv_across_threads() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        std::thread::spawn(move || tx2.send(7u32).unwrap());
        assert_eq!(rx.recv_timeout(Duration::from_secs(2)).unwrap(), 7);
    }

    #[test]
    fn timeout_and_disconnect() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)).unwrap_err(),
            RecvTimeoutError::Timeout
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)).unwrap_err(),
            RecvTimeoutError::Disconnected
        );
    }

    #[test]
    fn try_recv_nonblocking() {
        let (tx, rx) = unbounded();
        assert!(rx.try_recv().is_err());
        tx.send(1i32).unwrap();
        assert_eq!(rx.try_recv().unwrap(), 1);
    }
}
