//! Offline stand-in for `serde_derive`.
//!
//! A dependency-free (no syn/quote) derive pair:
//!
//! * `#[derive(Serialize)]` parses the struct/enum token stream by hand and
//!   generates an `impl serde::Serialize` that writes JSON field by field
//!   (externally-tagged enums, newtype transparency — matching serde_json's
//!   default output shapes).
//! * `#[derive(Deserialize)]` expands to nothing: the workspace never
//!   deserializes, it only needs the attribute to be accepted.
//!
//! Supported shapes cover everything the workspace derives: non-generic
//! structs with named fields, tuple structs, unit structs, and enums whose
//! variants are unit, tuple or struct-like. Generic types are rejected with
//! a clear compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Accept and discard `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Generate a JSON `serde::Serialize` implementation.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match generate(input) {
        Ok(src) => src.parse().expect("generated impl parses"),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

enum Body {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

enum Item {
    Struct(Body),
    Enum(Vec<(String, Body)>),
}

fn generate(input: TokenStream) -> Result<String, String> {
    let (name, item) = parse_item(input)?;
    let mut f = String::new();
    f.push_str(&format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize_json(&self, out: &mut String) {{\n"
    ));
    match item {
        Item::Struct(Body::Named(fields)) => {
            f.push_str("out.push('{');\n");
            for (i, field) in fields.iter().enumerate() {
                if i > 0 {
                    f.push_str("out.push(',');\n");
                }
                f.push_str(&format!("out.push_str(\"\\\"{field}\\\":\");\n"));
                f.push_str(&format!(
                    "::serde::Serialize::serialize_json(&self.{field}, out);\n"
                ));
            }
            f.push_str("out.push('}');\n");
        }
        Item::Struct(Body::Tuple(1)) => {
            // Newtype transparency, as in serde_json.
            f.push_str("::serde::Serialize::serialize_json(&self.0, out);\n");
        }
        Item::Struct(Body::Tuple(n)) => {
            f.push_str("out.push('[');\n");
            for i in 0..n {
                if i > 0 {
                    f.push_str("out.push(',');\n");
                }
                f.push_str(&format!(
                    "::serde::Serialize::serialize_json(&self.{i}, out);\n"
                ));
            }
            f.push_str("out.push(']');\n");
        }
        Item::Struct(Body::Unit) => {
            f.push_str("out.push_str(\"null\");\n");
        }
        Item::Enum(variants) => {
            f.push_str("match self {\n");
            for (vname, body) in &variants {
                match body {
                    Body::Unit => {
                        f.push_str(&format!(
                            "{name}::{vname} => out.push_str(\"\\\"{vname}\\\"\"),\n"
                        ));
                    }
                    Body::Tuple(1) => {
                        f.push_str(&format!(
                            "{name}::{vname}(__f0) => {{\n\
                             out.push_str(\"{{\\\"{vname}\\\":\");\n\
                             ::serde::Serialize::serialize_json(__f0, out);\n\
                             out.push('}}');\n}}\n"
                        ));
                    }
                    Body::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        f.push_str(&format!(
                            "{name}::{vname}({}) => {{\n\
                             out.push_str(\"{{\\\"{vname}\\\":[\");\n",
                            binds.join(", ")
                        ));
                        for (i, b) in binds.iter().enumerate() {
                            if i > 0 {
                                f.push_str("out.push(',');\n");
                            }
                            f.push_str(&format!("::serde::Serialize::serialize_json({b}, out);\n"));
                        }
                        f.push_str("out.push_str(\"]}\");\n}\n");
                    }
                    Body::Named(fields) => {
                        f.push_str(&format!(
                            "{name}::{vname} {{ {} }} => {{\n\
                             out.push_str(\"{{\\\"{vname}\\\":{{\");\n",
                            fields.join(", ")
                        ));
                        for (i, field) in fields.iter().enumerate() {
                            if i > 0 {
                                f.push_str("out.push(',');\n");
                            }
                            f.push_str(&format!("out.push_str(\"\\\"{field}\\\":\");\n"));
                            f.push_str(&format!(
                                "::serde::Serialize::serialize_json({field}, out);\n"
                            ));
                        }
                        f.push_str("out.push_str(\"}}\");\n}\n");
                    }
                }
            }
            f.push_str("}\n");
        }
    }
    f.push_str("}\n}\n");
    Ok(f)
}

/// Consume leading `#[...]` attribute pairs.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Consume `pub`, `pub(...)`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

fn parse_item(input: TokenStream) -> Result<(String, Item), String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_vis(&tokens, skip_attrs(&tokens, 0));
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, found {other:?}")),
    };
    if kind != "struct" && kind != "enum" {
        return Err(format!("expected struct or enum, found `{kind}`"));
    }
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "serde shim derive does not support generic type `{name}`"
            ));
        }
    }
    if kind == "struct" {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                Ok((name, Item::Struct(Body::Named(fields))))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                Ok((name, Item::Struct(Body::Tuple(n))))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok((name, Item::Struct(Body::Unit))),
            other => Err(format!("unsupported struct body: {other:?}")),
        }
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let variants = parse_variants(g.stream())?;
                Ok((name, Item::Enum(variants)))
            }
            other => Err(format!("unsupported enum body: {other:?}")),
        }
    }
}

/// Parse `name: Type, ...` — commas inside `<...>` belong to the type.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_vis(&tokens, skip_attrs(&tokens, i));
        if i >= tokens.len() {
            break;
        }
        let fname = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        fields.push(fname);
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected ':' after field, found {other:?}")),
        }
        // Skip the type up to a top-level comma.
        let mut angle_depth: i32 = 0;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    Ok(fields)
}

/// Count tuple-struct fields by top-level commas.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut n = 1;
    let mut angle_depth: i32 = 0;
    let mut saw_tokens_since_comma = true;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                n += 1;
                saw_tokens_since_comma = false;
            }
            _ => saw_tokens_since_comma = true,
        }
    }
    if !saw_tokens_since_comma {
        n -= 1; // trailing comma
    }
    n
}

fn parse_variants(stream: TokenStream) -> Result<Vec<(String, Body)>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let vname = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;
        let body = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Body::Named(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Body::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Body::Unit,
        };
        // Skip a `= discriminant` and advance past the separating comma.
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push((vname, body));
    }
    Ok(variants)
}
