//! Property tests for the disk array: flat addressing is a bijection, and
//! failure/replacement touch exactly the failed disk's range.

use proptest::prelude::*;
use radd_blockdev::{BlockDevice, DiskArray};

proptest! {
    /// Every flat block lands on exactly one disk, ranges partition the
    /// space, and contents round-trip.
    #[test]
    fn flat_addressing_partitions_the_space(
        disks in 1usize..8,
        blocks_per_disk in 1u64..16,
    ) {
        let mut a = DiskArray::new(disks, blocks_per_disk, 16);
        let total = disks as u64 * blocks_per_disk;
        prop_assert_eq!(a.num_blocks(), total);
        let mut covered = vec![false; total as usize];
        for d in 0..disks {
            for b in a.blocks_on_disk(d) {
                prop_assert_eq!(a.disk_of(b), d);
                prop_assert!(!covered[b as usize], "overlap at {}", b);
                covered[b as usize] = true;
            }
        }
        prop_assert!(covered.iter().all(|&c| c));
        for k in 0..total {
            a.write_block(k, &[(k % 251) as u8; 16]).unwrap();
        }
        for k in 0..total {
            prop_assert_eq!(a.read_block(k).unwrap()[0], (k % 251) as u8);
        }
    }

    /// Failing one disk errors exactly its own range and nothing else;
    /// replacement blanks exactly that range.
    #[test]
    fn failure_granularity_is_one_disk(
        disks in 2usize..6,
        blocks_per_disk in 1u64..10,
        victim_sel in 0usize..6,
    ) {
        let victim = victim_sel % disks;
        let mut a = DiskArray::new(disks, blocks_per_disk, 8);
        let total = disks as u64 * blocks_per_disk;
        for k in 0..total {
            a.write_block(k, &[7u8; 8]).unwrap();
        }
        a.fail_disk(victim);
        for k in 0..total {
            let on_victim = a.disk_of(k) == victim;
            prop_assert_eq!(a.read_block(k).is_err(), on_victim, "block {}", k);
        }
        a.replace_disk(victim);
        for k in 0..total {
            let want = if a.disk_of(k) == victim { 0u8 } else { 7u8 };
            prop_assert_eq!(a.read_block(k).unwrap()[0], want, "block {}", k);
        }
    }
}
