//! CRC-32 (IEEE 802.3 polynomial), table-driven.
//!
//! Used by the WAL storage manager to detect torn or partially written log
//! records during recovery. Implemented here rather than pulled in as a
//! dependency to keep the crate set within the approved list.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        t
    })
}

/// CRC-32 of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    crc32_finish(crc32_update(crc32_init(), data))
}

/// Start an incremental CRC-32 (see [`crc32_update`]).
pub const fn crc32_init() -> u32 {
    0xFFFF_FFFF
}

/// Fold `data` into an incremental CRC-32 state. Feeding a record's parts
/// through successive updates yields the same digest as [`crc32`] over
/// their concatenation, so framed writes can checksum a header and a
/// borrowed payload without first copying them into one buffer.
pub fn crc32_update(state: u32, data: &[u8]) -> u32 {
    let t = table();
    let mut c = state;
    for &b in data {
        c = t[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c
}

/// Finish an incremental CRC-32.
pub const fn crc32_finish(state: u32) -> u32 {
    state ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC-32/IEEE check values.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = vec![0x5Au8; 256];
        let base = crc32(&data);
        for byte in [0usize, 100, 255] {
            for bit in 0..8 {
                let mut corrupted = data.clone();
                corrupted[byte] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), base, "byte {byte} bit {bit}");
            }
        }
    }

    #[test]
    fn different_lengths_differ() {
        assert_ne!(crc32(&[0u8; 10]), crc32(&[0u8; 11]));
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        for split in [0, 1, 7, data.len()] {
            let mut c = crc32_init();
            c = crc32_update(c, &data[..split]);
            c = crc32_update(c, &data[split..]);
            assert_eq!(crc32_finish(c), crc32(&data[..]), "split at {split}");
        }
    }
}
