//! The block-device abstraction and its error type.

use bytes::Bytes;
use std::fmt;

/// Why a block operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DevError {
    /// The device (or the disk within an array) has failed; every access
    /// errors until it is replaced.
    Failed {
        /// Which disk of an array failed (0 for single devices).
        disk: usize,
    },
    /// Block number past the end of the device.
    OutOfRange {
        /// The requested block.
        block: u64,
        /// The device capacity in blocks.
        capacity: u64,
    },
    /// Payload length does not match the device block size.
    WrongBlockSize {
        /// Bytes supplied.
        got: usize,
        /// The device's block size.
        expected: usize,
    },
}

impl fmt::Display for DevError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DevError::Failed { disk } => write!(f, "disk {disk} has failed"),
            DevError::OutOfRange { block, capacity } => {
                write!(f, "block {block} out of range (capacity {capacity})")
            }
            DevError::WrongBlockSize { got, expected } => {
                write!(f, "payload of {got} bytes, device block size is {expected}")
            }
        }
    }
}

impl std::error::Error for DevError {}

/// A device addressed in fixed-size blocks.
///
/// Reads return [`Bytes`] so higher layers can hold block snapshots without
/// copying; writes take a slice that must be exactly one block long.
pub trait BlockDevice {
    /// Size of one block in bytes.
    fn block_size(&self) -> usize;

    /// Capacity in blocks.
    fn num_blocks(&self) -> u64;

    /// Read one block.
    fn read_block(&mut self, block: u64) -> Result<Bytes, DevError>;

    /// Overwrite one block.
    fn write_block(&mut self, block: u64, data: &[u8]) -> Result<(), DevError>;

    /// Overwrite one block, adopting an owned buffer. The default copies
    /// through [`write_block`](BlockDevice::write_block); devices that
    /// store refcounted buffers override it to adopt `data` without a
    /// copy.
    fn write_block_owned(&mut self, block: u64, data: Bytes) -> Result<(), DevError> {
        self.write_block(block, &data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_messages() {
        assert_eq!(
            DevError::Failed { disk: 3 }.to_string(),
            "disk 3 has failed"
        );
        assert!(DevError::OutOfRange {
            block: 9,
            capacity: 8
        }
        .to_string()
        .contains("capacity 8"));
        assert!(DevError::WrongBlockSize {
            got: 10,
            expected: 4096
        }
        .to_string()
        .contains("4096"));
    }
}
