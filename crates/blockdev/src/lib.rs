//! # radd-blockdev — the disk substrate
//!
//! The paper's sites each own "some number, N, physical disks each with B
//! blocks". This crate provides that hardware in simulation:
//!
//! * [`BlockDevice`] — the minimal trait every algorithm layer programs
//!   against (read/write a fixed-size block).
//! * [`MemDisk`] — an in-memory disk with operation counters; unwritten
//!   blocks read as zeros, matching a freshly formatted drive (and making
//!   the XOR-parity algebra work without explicit initialisation).
//! * [`DiskArray`] — a site's array of N disks with flat block addressing,
//!   per-disk **failure injection** (a failed disk errors every access) and
//!   **replacement** (a blank spare swapped in, contents lost) — the events
//!   behind the paper's "disk failure" rows.
//! * [`checksum`] — a CRC-32 used by the WAL storage manager to detect torn
//!   log records.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod array;
pub mod checksum;
pub mod device;
pub mod mem;
pub mod stats;

pub use array::DiskArray;
pub use device::{BlockDevice, DevError};
pub use mem::MemDisk;
pub use stats::DevStats;
