//! In-memory disk.
//!
//! Blocks are stored sparsely: a block that was never written reads as
//! zeros, like a freshly formatted drive. This matters for the parity
//! algebra — the XOR of all-zero blocks is zero, so a brand-new RADD cluster
//! satisfies the stripe invariant without an initialisation pass.

use crate::device::{BlockDevice, DevError};
use crate::stats::DevStats;
use bytes::Bytes;

/// A sparse, in-memory block device with operation counters.
#[derive(Debug, Clone)]
pub struct MemDisk {
    block_size: usize,
    blocks: Vec<Option<Bytes>>,
    stats: DevStats,
}

impl MemDisk {
    /// A disk of `num_blocks` blocks of `block_size` bytes, all zero.
    pub fn new(num_blocks: u64, block_size: usize) -> MemDisk {
        assert!(block_size > 0, "block size must be positive");
        MemDisk {
            block_size,
            blocks: vec![None; num_blocks as usize],
            stats: DevStats::default(),
        }
    }

    /// Operation counters since construction (or the last [`reset_stats`]).
    ///
    /// [`reset_stats`]: MemDisk::reset_stats
    pub fn stats(&self) -> &DevStats {
        &self.stats
    }

    /// Zero the counters.
    pub fn reset_stats(&mut self) {
        self.stats = DevStats::default();
    }

    /// True if the block has never been written (reads as zeros).
    pub fn is_untouched(&self, block: u64) -> bool {
        self.blocks.get(block as usize).is_none_or(|b| b.is_none())
    }

    fn zero_block(&self) -> Bytes {
        Bytes::from(vec![0u8; self.block_size])
    }
}

impl BlockDevice for MemDisk {
    fn block_size(&self) -> usize {
        self.block_size
    }

    fn num_blocks(&self) -> u64 {
        self.blocks.len() as u64
    }

    fn read_block(&mut self, block: u64) -> Result<Bytes, DevError> {
        let cap = self.num_blocks();
        let slot = self
            .blocks
            .get(block as usize)
            .ok_or(DevError::OutOfRange {
                block,
                capacity: cap,
            })?;
        self.stats.reads += 1;
        self.stats.bytes_read += self.block_size as u64;
        Ok(slot.clone().unwrap_or_else(|| self.zero_block()))
    }

    fn write_block(&mut self, block: u64, data: &[u8]) -> Result<(), DevError> {
        if data.len() != self.block_size {
            return Err(DevError::WrongBlockSize {
                got: data.len(),
                expected: self.block_size,
            });
        }
        let cap = self.num_blocks();
        let slot = self
            .blocks
            .get_mut(block as usize)
            .ok_or(DevError::OutOfRange {
                block,
                capacity: cap,
            })?;
        *slot = Some(Bytes::copy_from_slice(data));
        self.stats.writes += 1;
        self.stats.bytes_written += data.len() as u64;
        Ok(())
    }

    fn write_block_owned(&mut self, block: u64, data: Bytes) -> Result<(), DevError> {
        if data.len() != self.block_size {
            return Err(DevError::WrongBlockSize {
                got: data.len(),
                expected: self.block_size,
            });
        }
        let cap = self.num_blocks();
        let slot = self
            .blocks
            .get_mut(block as usize)
            .ok_or(DevError::OutOfRange {
                block,
                capacity: cap,
            })?;
        self.stats.writes += 1;
        self.stats.bytes_written += data.len() as u64;
        // The slot adopts the refcounted buffer — no copy.
        *slot = Some(data);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_blocks_read_zero() {
        let mut d = MemDisk::new(4, 16);
        let b = d.read_block(3).unwrap();
        assert_eq!(&b[..], &[0u8; 16]);
        assert!(d.is_untouched(3));
    }

    #[test]
    fn write_then_read() {
        let mut d = MemDisk::new(4, 8);
        d.write_block(1, &[7u8; 8]).unwrap();
        assert_eq!(&d.read_block(1).unwrap()[..], &[7u8; 8]);
        assert!(!d.is_untouched(1));
        assert!(d.is_untouched(0));
    }

    #[test]
    fn rejects_out_of_range() {
        let mut d = MemDisk::new(2, 8);
        assert_eq!(
            d.read_block(2).unwrap_err(),
            DevError::OutOfRange {
                block: 2,
                capacity: 2
            }
        );
        assert!(matches!(
            d.write_block(99, &[0u8; 8]).unwrap_err(),
            DevError::OutOfRange { .. }
        ));
    }

    #[test]
    fn rejects_wrong_block_size() {
        let mut d = MemDisk::new(2, 8);
        assert_eq!(
            d.write_block(0, &[0u8; 7]).unwrap_err(),
            DevError::WrongBlockSize {
                got: 7,
                expected: 8
            }
        );
    }

    #[test]
    fn stats_count_operations() {
        let mut d = MemDisk::new(4, 100);
        d.write_block(0, &[1u8; 100]).unwrap();
        d.read_block(0).unwrap();
        d.read_block(1).unwrap();
        assert_eq!(d.stats().writes, 1);
        assert_eq!(d.stats().reads, 2);
        assert_eq!(d.stats().bytes_written, 100);
        assert_eq!(d.stats().bytes_read, 200);
        d.reset_stats();
        assert_eq!(d.stats().reads, 0);
    }

    #[test]
    fn failed_ops_not_counted() {
        let mut d = MemDisk::new(2, 8);
        let _ = d.read_block(5);
        let _ = d.write_block(0, &[0u8; 3]);
        assert_eq!(d.stats().reads, 0);
        assert_eq!(d.stats().writes, 0);
    }
}
