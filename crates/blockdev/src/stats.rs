//! Per-device operation counters.

use serde::{Deserialize, Serialize};

/// Counts of block operations a device has served.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DevStats {
    /// Blocks read.
    pub reads: u64,
    /// Blocks written.
    pub writes: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
}

impl DevStats {
    /// Fold another counter set into this one.
    pub fn merge(&mut self, other: &DevStats) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
    }

    /// Total operations of both kinds.
    pub fn total_ops(&self) -> u64 {
        self.reads + self.writes
    }

    /// Total bytes moved in both directions — the "disk bandwidth" side of
    /// the paper's §7.4 network/disk bandwidth ratio.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let mut a = DevStats {
            reads: 1,
            writes: 2,
            bytes_read: 10,
            bytes_written: 20,
        };
        a.merge(&DevStats {
            reads: 100,
            writes: 200,
            bytes_read: 1000,
            bytes_written: 2000,
        });
        assert_eq!(a.reads, 101);
        assert_eq!(a.writes, 202);
        assert_eq!(a.total_ops(), 303);
        assert_eq!(a.total_bytes(), 3030);
    }
}
