//! A site's disk array: N disks × B blocks with failure injection.
//!
//! The paper's failure taxonomy at the disk level:
//!
//! * **disk failure** — "a site … loses one of its N disks. The other disks
//!   continue to function normally" — [`DiskArray::fail_disk`];
//! * repair — "the failed disk must be replaced with a spare disk"; the
//!   replacement is *blank* and must be reconstructed from parity —
//!   [`DiskArray::replace_disk`];
//! * **site disaster** — "all information from all N disks is lost" —
//!   [`DiskArray::disaster`], which blanks every disk at once.
//!
//! Blocks are addressed flat across the array: block `K` lives on disk
//! `K / B` at offset `K % B`, so a disk failure knocks out one contiguous
//! range of the site's block space (exactly the granularity the RADD
//! recovery algorithms reason about).

use crate::device::{BlockDevice, DevError};
use crate::mem::MemDisk;
use crate::stats::DevStats;
use bytes::Bytes;

/// An array of `N` equal disks presenting a flat block space.
#[derive(Debug, Clone)]
pub struct DiskArray {
    disks: Vec<MemDisk>,
    failed: Vec<bool>,
    blocks_per_disk: u64,
    block_size: usize,
}

impl DiskArray {
    /// `num_disks` disks of `blocks_per_disk` blocks each.
    pub fn new(num_disks: usize, blocks_per_disk: u64, block_size: usize) -> DiskArray {
        assert!(num_disks > 0, "array needs at least one disk");
        DiskArray {
            disks: (0..num_disks)
                .map(|_| MemDisk::new(blocks_per_disk, block_size))
                .collect(),
            failed: vec![false; num_disks],
            blocks_per_disk,
            block_size,
        }
    }

    /// Number of disks `N`.
    pub fn num_disks(&self) -> usize {
        self.disks.len()
    }

    /// Blocks per disk `B`.
    pub fn blocks_per_disk(&self) -> u64 {
        self.blocks_per_disk
    }

    /// Which disk a flat block number lives on.
    pub fn disk_of(&self, block: u64) -> usize {
        (block / self.blocks_per_disk) as usize
    }

    /// The flat block range hosted by one disk.
    pub fn blocks_on_disk(&self, disk: usize) -> std::ops::Range<u64> {
        let start = disk as u64 * self.blocks_per_disk;
        start..start + self.blocks_per_disk
    }

    /// Mark a disk failed: every access to its blocks errors until
    /// [`replace_disk`] is called.
    ///
    /// [`replace_disk`]: DiskArray::replace_disk
    pub fn fail_disk(&mut self, disk: usize) {
        self.failed[disk] = true;
    }

    /// Swap in a blank spare for a failed (or healthy) disk. The previous
    /// contents are gone — reconstruction is the caller's job.
    pub fn replace_disk(&mut self, disk: usize) {
        self.disks[disk] = MemDisk::new(self.blocks_per_disk, self.block_size);
        self.failed[disk] = false;
    }

    /// A site disaster: all disks blanked and healthy again (restored "on
    /// alternate or replacement hardware").
    pub fn disaster(&mut self) {
        for d in 0..self.disks.len() {
            self.replace_disk(d);
        }
    }

    /// True if the disk is currently failed.
    pub fn is_failed(&self, disk: usize) -> bool {
        self.failed[disk]
    }

    /// True if any disk is failed.
    pub fn any_failed(&self) -> bool {
        self.failed.iter().any(|&f| f)
    }

    /// Aggregated operation counters across all disks.
    pub fn stats(&self) -> DevStats {
        let mut total = DevStats::default();
        for d in &self.disks {
            total.merge(d.stats());
        }
        total
    }

    /// Zero all per-disk counters.
    pub fn reset_stats(&mut self) {
        for d in &mut self.disks {
            d.reset_stats();
        }
    }

    fn locate(&self, block: u64) -> Result<(usize, u64), DevError> {
        let capacity = self.num_blocks();
        if block >= capacity {
            return Err(DevError::OutOfRange { block, capacity });
        }
        let disk = self.disk_of(block);
        if self.failed[disk] {
            return Err(DevError::Failed { disk });
        }
        Ok((disk, block % self.blocks_per_disk))
    }
}

impl BlockDevice for DiskArray {
    fn block_size(&self) -> usize {
        self.block_size
    }

    fn num_blocks(&self) -> u64 {
        self.disks.len() as u64 * self.blocks_per_disk
    }

    fn read_block(&mut self, block: u64) -> Result<Bytes, DevError> {
        let (disk, offset) = self.locate(block)?;
        self.disks[disk].read_block(offset)
    }

    fn write_block(&mut self, block: u64, data: &[u8]) -> Result<(), DevError> {
        let (disk, offset) = self.locate(block)?;
        self.disks[disk].write_block(offset, data)
    }

    fn write_block_owned(&mut self, block: u64, data: Bytes) -> Result<(), DevError> {
        let (disk, offset) = self.locate(block)?;
        self.disks[disk].write_block_owned(offset, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn array() -> DiskArray {
        DiskArray::new(3, 4, 8) // 3 disks × 4 blocks of 8 bytes
    }

    #[test]
    fn flat_addressing() {
        let a = array();
        assert_eq!(a.num_blocks(), 12);
        assert_eq!(a.disk_of(0), 0);
        assert_eq!(a.disk_of(3), 0);
        assert_eq!(a.disk_of(4), 1);
        assert_eq!(a.disk_of(11), 2);
        assert_eq!(a.blocks_on_disk(1), 4..8);
    }

    #[test]
    fn write_read_across_disks() {
        let mut a = array();
        for k in 0..12u64 {
            a.write_block(k, &[k as u8; 8]).unwrap();
        }
        for k in 0..12u64 {
            assert_eq!(&a.read_block(k).unwrap()[..], &[k as u8; 8]);
        }
    }

    #[test]
    fn failed_disk_errors_only_its_blocks() {
        let mut a = array();
        a.write_block(2, &[1u8; 8]).unwrap();
        a.write_block(6, &[2u8; 8]).unwrap();
        a.fail_disk(0);
        assert!(a.any_failed());
        assert_eq!(a.read_block(2).unwrap_err(), DevError::Failed { disk: 0 });
        assert!(a.write_block(0, &[0u8; 8]).is_err());
        // Other disks keep working — "the other disks continue to function
        // normally and the site remains operational".
        assert_eq!(&a.read_block(6).unwrap()[..], &[2u8; 8]);
    }

    #[test]
    fn replace_disk_is_blank() {
        let mut a = array();
        a.write_block(1, &[9u8; 8]).unwrap();
        a.fail_disk(0);
        a.replace_disk(0);
        assert!(!a.is_failed(0));
        assert_eq!(&a.read_block(1).unwrap()[..], &[0u8; 8], "contents lost");
    }

    #[test]
    fn disaster_blanks_everything() {
        let mut a = array();
        for k in 0..12u64 {
            a.write_block(k, &[0xEEu8; 8]).unwrap();
        }
        a.fail_disk(1);
        a.disaster();
        assert!(!a.any_failed());
        for k in 0..12u64 {
            assert_eq!(&a.read_block(k).unwrap()[..], &[0u8; 8]);
        }
    }

    #[test]
    fn out_of_range_before_failure_check() {
        let mut a = array();
        a.fail_disk(2);
        assert!(matches!(
            a.read_block(100).unwrap_err(),
            DevError::OutOfRange { .. }
        ));
    }

    #[test]
    fn stats_aggregate_across_disks() {
        let mut a = array();
        a.write_block(0, &[0u8; 8]).unwrap();
        a.write_block(5, &[0u8; 8]).unwrap();
        a.read_block(9).unwrap();
        let s = a.stats();
        assert_eq!(s.writes, 2);
        assert_eq!(s.reads, 1);
        a.reset_stats();
        assert_eq!(a.stats().writes, 0);
    }
}
