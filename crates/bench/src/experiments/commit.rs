//! Section 6: two-phase commit vs the RADD "done = prepared" optimisation.

use radd_txn::{radd_commit, two_phase_commit, FailureScript, RaddCommitConfig};
use serde::Serialize;

/// One row of the commit-cost comparison.
#[derive(Debug, Clone, Serialize)]
pub struct CommitRow {
    /// Number of slave sites.
    pub slaves: usize,
    /// 2PC messages.
    pub two_pc_messages: u64,
    /// 2PC forced log writes.
    pub two_pc_forces: u64,
    /// 2PC message rounds.
    pub two_pc_rounds: u32,
    /// Optimised-commit messages.
    pub radd_messages: u64,
    /// Optimised-commit forced log writes.
    pub radd_forces: u64,
    /// Optimised-commit rounds.
    pub radd_rounds: u32,
}

/// Compare commit overhead across slave counts.
pub fn section6(slave_counts: &[usize]) -> Vec<CommitRow> {
    slave_counts
        .iter()
        .map(|&n| {
            let full = two_phase_commit(&vec![true; n], FailureScript::default());
            let opt = radd_commit(RaddCommitConfig {
                slaves: n,
                parity_acks_complete: true,
            });
            CommitRow {
                slaves: n,
                two_pc_messages: full.messages,
                two_pc_forces: full.forced_log_writes,
                two_pc_rounds: full.rounds,
                radd_messages: opt.messages,
                radd_forces: opt.forced_log_writes,
                radd_rounds: opt.rounds,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimisation_quarters_messages_at_every_scale() {
        for row in section6(&[1, 2, 4, 8, 16]) {
            assert_eq!(row.two_pc_messages, 4 * row.radd_messages);
            assert_eq!(row.radd_rounds, 1);
            assert_eq!(row.radd_forces, 1);
        }
    }
}
