//! Figure 1: the logical layout of disk blocks, G = 4.

use radd_layout::Geometry;

/// Render the Figure 1 table (G = 4, six sites, six rows) exactly as the
/// paper prints it, plus the paper's own G = 8 evaluation shape.
pub fn figure1() -> String {
    let mut out = String::new();
    let g4 = Geometry::new(4, 6).expect("valid geometry");
    out.push_str("Figure 1 — The Logical Layout of Disk Blocks (G = 4)\n\n");
    out.push_str(&g4.render_figure(6));
    out.push_str("\nEvaluation shape (G = 8, first 10 rows):\n\n");
    let g8 = Geometry::paper_g8(10);
    out.push_str(&g8.render_figure(10));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_paper_row_by_row() {
        let s = figure1();
        // Spot-check the distinctive rows of the paper's table.
        assert!(s.contains("block 0  P     S     0     0     0     0"));
        assert!(s.contains("block 5  S     3     3     3     3     P"));
    }
}
