//! Section 2's striping argument, measured.
//!
//! "A RAID can support as many as G parallel reads but only a single write
//! because of contention for the parity disk. In order to overcome this
//! last bottleneck, \[PATT88\] suggests striping the parity over all G + 1
//! drives … In this way, up to G/2 writes can occur in parallel. This
//! striped parity proposal is called a Level 5 RAID."
//!
//! The experiment schedules `K` concurrent writers on the virtual clock.
//! Every write occupies its data disk and its parity disk for `W` both at
//! once; a Level-4 array has one dedicated parity disk, a Level-5 array
//! rotates parity across all drives (our Figure-1 placement). Write
//! throughput is ops per unit of makespan, normalised to a single writer.

use radd_layout::Geometry;
use radd_sim::{SimDuration, SimRng, SimTime};
use serde::Serialize;

/// Parity placement under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum ParityLayout {
    /// Level 4: one dedicated parity disk.
    Dedicated,
    /// Level 5: parity striped round-robin (the Figure 1 rotation),
    /// writers picking rows at random — pays a collision tax.
    Striped,
    /// Level 5 with coordinated placement: each scheduling slot runs
    /// disjoint (data, parity) disk pairs — the paper's "up to G/2" best
    /// case.
    StripedScheduled,
}

/// One sweep point.
#[derive(Debug, Clone, Serialize)]
pub struct StripingRow {
    /// Concurrent writers.
    pub writers: usize,
    /// Level-4 write throughput (normalised to one writer's).
    pub level4_speedup: f64,
    /// Level-5 write throughput with random placement (normalised).
    pub level5_speedup: f64,
    /// Level-5 write throughput with coordinated placement (normalised) —
    /// the paper's "up to G/2".
    pub level5_scheduled_speedup: f64,
}

/// Simulate `writers` concurrent writers issuing `ops_each` writes to
/// random rows of a `g + 1`-disk array, and return the makespan.
fn makespan(
    layout: ParityLayout,
    g: usize,
    writers: usize,
    ops_each: u64,
    seed: u64,
) -> SimDuration {
    let w = SimDuration::from_millis(30);
    let disks = g + 1;
    let geo = Geometry::new(g - 1, 1_000_000).expect("valid"); // striping map over g+1 cols
    let mut rng = SimRng::seed_from_u64(seed);
    let mut disk_free = vec![SimTime::ZERO; disks];
    let mut writer_free = vec![SimTime::ZERO; writers];
    let mut finish = SimTime::ZERO;
    let pairs_per_slot = disks / 2;
    for op in 0..ops_each {
        #[allow(clippy::needless_range_loop)] // wi also selects the disk pair
        for wi in 0..writers {
            let row = rng.below(1_000_000);
            let (parity_disk, data_disk) = match layout {
                ParityLayout::Dedicated => {
                    let p = disks - 1;
                    (p, rng.index(disks - 1))
                }
                ParityLayout::Striped => {
                    let p = geo.parity_site(row);
                    let mut d = rng.index(disks);
                    while d == p {
                        d = rng.index(disks);
                    }
                    (p, d)
                }
                ParityLayout::StripedScheduled => {
                    // Coordinated slots: pair k of a slot uses disks
                    // (2k, 2k+1), the whole pattern rotating each round so
                    // every disk carries parity in turn.
                    let pair = wi % pairs_per_slot;
                    let rot = (op as usize * 31 + wi / pairs_per_slot) % disks;
                    let p = (2 * pair + rot) % disks;
                    let d = (2 * pair + 1 + rot) % disks;
                    (p, d)
                }
            };
            let start = writer_free[wi]
                .max(disk_free[data_disk])
                .max(disk_free[parity_disk]);
            let end = start + w;
            disk_free[data_disk] = end;
            disk_free[parity_disk] = end;
            writer_free[wi] = end;
            finish = finish.max(end);
        }
    }
    finish - SimTime::ZERO
}

/// Sweep writer counts for both layouts at `g = 8` (the paper's shape:
/// `G + 1 = 9` drives).
pub fn section2(ops_each: u64, seed: u64) -> Vec<StripingRow> {
    let g = 8;
    let base4 = makespan(ParityLayout::Dedicated, g, 1, ops_each, seed);
    let base5 = makespan(ParityLayout::Striped, g, 1, ops_each, seed);
    let base5s = makespan(ParityLayout::StripedScheduled, g, 1, ops_each, seed);
    [1usize, 2, 4, 6, 8, 12]
        .iter()
        .map(|&writers| {
            let m4 = makespan(ParityLayout::Dedicated, g, writers, ops_each, seed + 1);
            let m5 = makespan(ParityLayout::Striped, g, writers, ops_each, seed + 1);
            let m5s = makespan(
                ParityLayout::StripedScheduled,
                g,
                writers,
                ops_each,
                seed + 1,
            );
            StripingRow {
                writers,
                level4_speedup: writers as f64 * base4.as_millis_f64() / m4.as_millis_f64(),
                level5_speedup: writers as f64 * base5.as_millis_f64() / m5.as_millis_f64(),
                level5_scheduled_speedup: writers as f64 * base5s.as_millis_f64()
                    / m5s.as_millis_f64(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedicated_parity_caps_write_throughput_near_one() {
        let rows = section2(400, 5);
        let at8 = rows.iter().find(|r| r.writers == 8).unwrap();
        // Every write serialises on the single parity disk.
        assert!(
            at8.level4_speedup < 1.4,
            "level 4 at 8 writers: {}",
            at8.level4_speedup
        );
    }

    #[test]
    fn striped_parity_beats_dedicated_and_schedules_to_g_over_2() {
        let rows = section2(400, 5);
        let at8 = rows.iter().find(|r| r.writers == 8).unwrap();
        // Random placement pays a collision tax but still clearly beats the
        // dedicated parity disk…
        assert!(
            (1.6..4.6).contains(&at8.level5_speedup),
            "level 5 random at 8 writers: {}",
            at8.level5_speedup
        );
        assert!(at8.level5_speedup > 1.5 * at8.level4_speedup);
        // …and coordinated placement reaches the paper's "up to G/2" = 4
        // (9 disks sustain ⌊9/2⌋ = 4 disjoint pairs).
        assert!(
            (3.5..4.6).contains(&at8.level5_scheduled_speedup),
            "level 5 scheduled at 8 writers: {}",
            at8.level5_scheduled_speedup
        );
    }

    #[test]
    fn single_writer_sees_no_difference() {
        let rows = section2(300, 7);
        let at1 = rows.iter().find(|r| r.writers == 1).unwrap();
        assert!((at1.level4_speedup - 1.0).abs() < 0.05);
        assert!((at1.level5_speedup - 1.0).abs() < 0.05);
        assert!((at1.level5_scheduled_speedup - 1.0).abs() < 0.05);
    }
}
