//! Figure 2: space overhead of each scheme.
//!
//! Each scheme reports its analytic overhead; for the RADD family the
//! number is additionally *verified against the layout* by counting parity
//! and spare rows in the Figure 1 placement.

use radd_layout::{Geometry, Role};
use serde::Serialize;

/// One Figure 2 row.
#[derive(Debug, Clone, Serialize)]
pub struct SpaceRow {
    /// Scheme name.
    pub scheme: &'static str,
    /// Analytic overhead (fraction of data capacity).
    pub overhead: f64,
    /// The paper's printed percentage.
    pub paper_percent: f64,
    /// Layout-census verification, where the scheme has a block layout to
    /// count (RADD variants).
    pub census_percent: Option<f64>,
}

/// Count redundancy blocks in an actual layout: overhead = (parity +
/// spare) / data.
fn census(g: usize) -> f64 {
    let m = g + 2;
    let geo = Geometry::new(g, 10 * m as u64).expect("valid");
    let mut data = 0u64;
    let mut redundancy = 0u64;
    for site in 0..m {
        for row in 0..geo.rows() {
            match geo.role(site, row) {
                Role::Data(_) => data += 1,
                Role::Parity | Role::Spare => redundancy += 1,
            }
        }
    }
    redundancy as f64 / data as f64
}

/// Compute the Figure 2 table.
pub fn figure2() -> Vec<SpaceRow> {
    vec![
        SpaceRow {
            scheme: "RADD",
            overhead: 2.0 / 8.0,
            paper_percent: 25.0,
            census_percent: Some(census(8) * 100.0),
        },
        SpaceRow {
            scheme: "ROWB",
            overhead: 1.0,
            paper_percent: 100.0,
            census_percent: None,
        },
        SpaceRow {
            scheme: "RAID",
            overhead: 2.0 / 8.0,
            paper_percent: 25.0,
            census_percent: Some(census(8) * 100.0),
        },
        SpaceRow {
            scheme: "C-RAID",
            // 2 extra per 8 for the RADD layer; the 10 resulting disks need
            // 2.5 for the local layer: (10/8)·(10/8) - 1 = 56.25 %.
            overhead: (1.0 + 0.25) * (1.0 + 0.25) - 1.0,
            paper_percent: 56.25,
            census_percent: None,
        },
        SpaceRow {
            scheme: "2D-RADD",
            // 64 data disks need 2 × 16 extras.
            overhead: 32.0 / 64.0,
            paper_percent: 50.0,
            census_percent: None,
        },
        SpaceRow {
            scheme: "1/2-RADD",
            overhead: 2.0 / 4.0,
            paper_percent: 50.0,
            census_percent: Some(census(4) * 100.0),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analytic_matches_paper_percentages() {
        for row in figure2() {
            assert!(
                (row.overhead * 100.0 - row.paper_percent).abs() < 1e-9,
                "{}: {} vs {}",
                row.scheme,
                row.overhead * 100.0,
                row.paper_percent
            );
        }
    }

    #[test]
    fn layout_census_confirms_the_radd_numbers() {
        for row in figure2() {
            if let Some(census) = row.census_percent {
                assert!(
                    (census - row.paper_percent).abs() < 1e-9,
                    "{}: census {census}",
                    row.scheme
                );
            }
        }
    }
}
