//! Figures 5 and 6: MTTU and MTTF — paper values, closed forms, and
//! Monte-Carlo validation.

use radd_reliability::{
    mttf_hours, mttu_exact_radd, mttu_exact_rowb, mttu_hours, Environment, MonteCarlo, Scheme,
    HOURS_PER_YEAR,
};
use serde::Serialize;

const G: usize = 8;

/// One Figure 5 row.
#[derive(Debug, Clone, Serialize)]
pub struct MttuRow {
    /// Scheme name.
    pub scheme: &'static str,
    /// The paper's printed hours.
    pub paper_hours: f64,
    /// Our closed form (one-ordering approximation, like the paper's).
    pub formula_hours: f64,
    /// Exact absorbing-CTMC solution, where the chain is modelled.
    pub markov_hours: Option<f64>,
    /// Monte-Carlo measurement (both orderings — expect ≈ the exact chain),
    /// where a simulator exists for the scheme.
    pub monte_carlo_hours: Option<f64>,
    /// Standard error of the Monte-Carlo mean.
    pub monte_carlo_stderr: Option<f64>,
}

/// Compute Figure 5 with `trials` Monte-Carlo trials per simulated scheme.
pub fn figure5(trials: u32, seed: u64) -> Vec<MttuRow> {
    let c = Environment::CautiousConventional.constants(); // MTTU is env-independent
    Scheme::ALL
        .iter()
        .map(|&s| {
            let mc = match s {
                Scheme::Radd => Some(MonteCarlo::new(G, c, seed).mttu_radd(trials)),
                Scheme::Rowb => Some(MonteCarlo::new(G, c, seed + 1).mttu_rowb(trials)),
                Scheme::Raid => Some(MonteCarlo::new(G, c, seed + 2).mttu_raid(trials)),
                _ => None,
            };
            let markov = match s {
                Scheme::Radd | Scheme::CRaid => Some(mttu_exact_radd(G, &c)),
                Scheme::HalfRadd => Some(mttu_exact_radd(G / 2, &c)),
                Scheme::Rowb => Some(mttu_exact_rowb(&c)),
                _ => None,
            };
            MttuRow {
                scheme: s.label(),
                paper_hours: s.paper_mttu_hours(),
                formula_hours: mttu_hours(s, G, &c),
                markov_hours: markov,
                monte_carlo_hours: mc.as_ref().map(|e| e.mean_hours),
                monte_carlo_stderr: mc.as_ref().map(|e| e.std_error),
            }
        })
        .collect()
}

/// One Figure 6 cell.
#[derive(Debug, Clone, Serialize)]
pub struct MttfCell {
    /// Environment label.
    pub environment: &'static str,
    /// The paper's printed years (500 stands for its ">500").
    pub paper_years: f64,
    /// Our analytic model.
    pub model_years: f64,
    /// Monte-Carlo years, where simulated.
    pub monte_carlo_years: Option<f64>,
}

/// One Figure 6 row (scheme × four environments).
#[derive(Debug, Clone, Serialize)]
pub struct MttfRow {
    /// Scheme name.
    pub scheme: &'static str,
    /// The four environments.
    pub cells: Vec<MttfCell>,
}

/// Compute Figure 6 with `trials` Monte-Carlo trials per simulated cell.
pub fn figure6(trials: u32, seed: u64) -> Vec<MttfRow> {
    Scheme::ALL
        .iter()
        .map(|&s| {
            let cells = Environment::ALL
                .iter()
                .enumerate()
                .map(|(i, &env)| {
                    let c = env.constants();
                    let mc_hours = match s {
                        Scheme::Radd => Some(
                            MonteCarlo::new(G, c, seed + i as u64)
                                .mttf_radd(trials)
                                .mean_hours,
                        ),
                        Scheme::Rowb => Some(
                            MonteCarlo::new(G, c, seed + 10 + i as u64)
                                .mttf_rowb(trials)
                                .mean_hours,
                        ),
                        Scheme::Raid => Some(
                            MonteCarlo::new(G, c, seed + 20 + i as u64)
                                .mttf_raid(trials * 10)
                                .mean_hours,
                        ),
                        _ => None,
                    };
                    MttfCell {
                        environment: env.label(),
                        paper_years: s.paper_mttf_years()[i],
                        model_years: mttf_hours(s, G, &c) / HOURS_PER_YEAR,
                        monte_carlo_years: mc_hours.map(|h| h / HOURS_PER_YEAR),
                    }
                })
                .collect();
            MttfRow {
                scheme: s.label(),
                cells,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure5_shape() {
        let rows = figure5(60, 7);
        assert_eq!(rows.len(), 6);
        let radd = &rows[0];
        assert_eq!(radd.scheme, "RADD");
        assert_eq!(radd.formula_hours, 5000.0);
        let mc = radd.monte_carlo_hours.unwrap();
        assert!((1000.0..5000.0).contains(&mc), "MC {mc}");
        // RAID's MC should be near 150 h.
        let raid = &rows[2];
        let mc = raid.monte_carlo_hours.unwrap();
        assert!((110.0..190.0).contains(&mc), "MC {mc}");
    }

    #[test]
    fn figure6_shape() {
        let rows = figure6(25, 11);
        assert_eq!(rows.len(), 6);
        // C-RAID and 2D-RADD must clear 500 years everywhere.
        for row in rows
            .iter()
            .filter(|r| r.scheme == "C-RAID" || r.scheme == "2D-RADD")
        {
            for cell in &row.cells {
                assert!(
                    cell.model_years > 500.0,
                    "{} {}",
                    row.scheme,
                    cell.environment
                );
            }
        }
        // RADD beats RAID in the cautious conventional column.
        let radd = rows[0].cells[1].model_years;
        let raid = rows[2].cells[1].model_years;
        assert!(radd > 4.0 * raid);
    }
}
