//! Experiment drivers, one module per paper exhibit.

pub mod bandwidth;
pub mod commit;
pub mod costs;
pub mod layout;
pub mod recovery;
pub mod reliability;
pub mod space;
pub mod spares;
pub mod striping;
pub mod summary;
