//! §7.2's open question, answered: availability under *partial* spare
//! allocation.
//!
//! "Clearly, a smaller number of spare blocks can be allocated per site if
//! the system administrator is willing to tolerate lower availability. …
//! Analyzing availability for lesser numbers of parity blocks is left as a
//! future exercise."
//!
//! The exercise: sweep the spare fraction from 0 to 1, run a mixed workload
//! against a cluster with one site down, and measure (a) space overhead,
//! (b) the fraction of operations that remain serviceable, and (c) the mean
//! cost of the operations that do succeed. Spare-less rows refuse down-site
//! writes and pay full reconstruction on every down-site read.

use radd_core::{RaddConfig, RaddError, SparePolicy};
use radd_schemes::{FailureKind, Radd, ReplicationScheme};
use radd_sim::SimRng;
use radd_workload::{run_mix, AccessPattern, Mix};
use serde::Serialize;

/// One sweep point.
#[derive(Debug, Clone, Serialize)]
pub struct SpareSweepRow {
    /// Human-readable policy label.
    pub policy: String,
    /// Space overhead, percent.
    pub space_percent: f64,
    /// Fraction of operations served during the failure.
    pub availability: f64,
    /// Mean latency (ms) of served operations during the failure.
    pub degraded_ms: f64,
    /// Mean latency (ms) of served *reads* during the failure.
    pub degraded_read_ms: f64,
}

/// Run the sweep: one site down, `ops` operations of a 50 %-read mix.
pub fn spare_sweep(ops: u64, seed: u64) -> Result<Vec<SpareSweepRow>, RaddError> {
    let policies: Vec<(String, SparePolicy)> = vec![
        ("no spares (0/1)".into(), SparePolicy::None),
        (
            "1 of 4 rows".into(),
            SparePolicy::Fraction {
                numerator: 1,
                denominator: 4,
            },
        ),
        (
            "1 of 2 rows".into(),
            SparePolicy::Fraction {
                numerator: 1,
                denominator: 2,
            },
        ),
        (
            "3 of 4 rows".into(),
            SparePolicy::Fraction {
                numerator: 3,
                denominator: 4,
            },
        ),
        ("one per parity (paper)".into(), SparePolicy::OnePerParity),
    ];
    let mut rows = Vec::new();
    for (label, policy) in policies {
        let mut cfg = RaddConfig::paper_g8();
        cfg.block_size = 512;
        cfg.spare_policy = policy;
        let g = cfg.group_size;
        let mut scheme = Radd::new(cfg)?;
        scheme.inject(3, FailureKind::SiteFailure)?;

        let mut rng = SimRng::seed_from_u64(seed);
        let mixed = run_mix(
            &mut scheme,
            &mut rng,
            ops,
            Mix { read_fraction: 0.5 },
            AccessPattern::Uniform,
        )?;
        let served = mixed.reads + mixed.writes;
        let availability = served as f64 / (served + mixed.unavailable) as f64;

        let mut rng = SimRng::seed_from_u64(seed + 1);
        let reads = run_mix(
            &mut scheme,
            &mut rng,
            ops / 2,
            Mix::read_only(),
            AccessPattern::Uniform,
        )?;

        rows.push(SpareSweepRow {
            policy: label,
            space_percent: policy.space_overhead(g) * 100.0,
            availability,
            degraded_ms: mixed.mean_latency_ms(),
            degraded_read_ms: reads.mean_latency_ms(),
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn availability_rises_monotonically_with_spares() {
        let rows = spare_sweep(3000, 9).unwrap();
        assert_eq!(rows.len(), 5);
        for pair in rows.windows(2) {
            assert!(
                pair[1].availability >= pair[0].availability - 0.01,
                "{} {} → {} {}",
                pair[0].policy,
                pair[0].availability,
                pair[1].policy,
                pair[1].availability
            );
            assert!(pair[1].space_percent > pair[0].space_percent);
        }
        // Endpoints: no spares loses the down site's writes (~5 % of ops);
        // full spares serve everything.
        assert!(rows[0].availability < 0.99);
        assert!((rows[4].availability - 1.0).abs() < 1e-9);
        // And degraded reads get cheaper as spares absorb repeats.
        assert!(rows[4].degraded_read_ms < rows[0].degraded_read_ms);
    }
}
