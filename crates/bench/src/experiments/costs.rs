//! Figures 3 and 4: measured operation counts and priced latencies for all
//! six schemes under every condition the paper tabulates.
//!
//! Every cell is **measured**: a fresh scheme instance is built, driven
//! into the row's condition (seed write, failure injection, spare
//! installation…), and the single operation's [`OpReceipt`] provides both
//! the Figure 3 formula and the Figure 4 milliseconds. The paper's
//! published values ride along for comparison.
//!
//! [`OpReceipt`]: radd_core::OpReceipt

use radd_core::{Actor, OpReceipt, RaddConfig, RaddError, SiteState};
use radd_schemes::{CRaid, FailureKind, Radd, Raid5, ReplicationScheme, Rowb, TwoDRadd};
use radd_sim::CostParams;
use serde::Serialize;

/// The seven rows of Figure 3 / Figure 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum CostRow {
    /// No failure, read.
    NfRead,
    /// No failure, write.
    NfWrite,
    /// Disk failure, read.
    DiskFailRead,
    /// Disk failure, write.
    DiskFailWrite,
    /// Previously reconstructed (spare-resident) read.
    ReconRead,
    /// Site failure, read.
    SiteFailRead,
    /// Site failure, write.
    SiteFailWrite,
}

impl CostRow {
    /// All rows in the paper's order.
    pub const ALL: [CostRow; 7] = [
        CostRow::NfRead,
        CostRow::NfWrite,
        CostRow::DiskFailRead,
        CostRow::DiskFailWrite,
        CostRow::ReconRead,
        CostRow::SiteFailRead,
        CostRow::SiteFailWrite,
    ];

    /// Row label as in the paper.
    pub fn label(self) -> &'static str {
        match self {
            CostRow::NfRead => "no failure read",
            CostRow::NfWrite => "no failure write",
            CostRow::DiskFailRead => "disk failure read",
            CostRow::DiskFailWrite => "disk failure write",
            CostRow::ReconRead => "previously reconstructed read",
            CostRow::SiteFailRead => "site failure read",
            CostRow::SiteFailWrite => "site failure write",
        }
    }

    /// Figure 3's formulas, in scheme order
    /// `[RADD, ROWB, RAID, C-RAID, 2D-RADD, 1/2-RADD]`.
    pub fn paper_formulas(self) -> [&'static str; 6] {
        match self {
            CostRow::NfRead => ["R", "R", "R", "R", "R", "R"],
            CostRow::NfWrite => ["W+RW", "W+RW", "2*W", "RW+3*W", "W+2*RW", "W+RW"],
            CostRow::DiskFailRead => ["G*RR", "RR", "G*R", "G*R", "G*RR", "G*RR/2"],
            CostRow::DiskFailWrite => ["2*RW", "RW", "2*W", "2*W+2*RW", "4*RW", "2*RW"],
            CostRow::ReconRead => ["R+RR", "R", "2*R", "2*R", "R+RR", "R+RR"],
            CostRow::SiteFailRead => ["G*RR", "RR", "-", "G*RR", "G*RR", "G*RR/2"],
            CostRow::SiteFailWrite => ["2*RW", "RW", "-", "2*RW", "4*RW", "2*RW"],
        }
    }

    /// Figure 4's milliseconds, same scheme order (`None` = "-"). Values
    /// reproduced as printed, including the memo's two internally
    /// inconsistent C-RAID cells (see EXPERIMENTS.md).
    pub fn paper_ms(self) -> [Option<f64>; 6] {
        let v = |x: f64| Some(x);
        match self {
            CostRow::NfRead => [v(30.0); 6],
            CostRow::NfWrite => [v(105.0), v(105.0), v(60.0), v(165.0), v(180.0), v(105.0)],
            CostRow::DiskFailRead => [v(600.0), v(75.0), v(240.0), v(240.0), v(600.0), v(300.0)],
            CostRow::DiskFailWrite => [v(150.0), v(75.0), v(60.0), v(165.0), v(300.0), v(150.0)],
            CostRow::ReconRead => [v(105.0), v(30.0), v(60.0), v(60.0), v(105.0), v(105.0)],
            CostRow::SiteFailRead => [v(600.0), v(75.0), None, v(600.0), v(600.0), v(300.0)],
            CostRow::SiteFailWrite => [v(150.0), v(75.0), None, v(105.0), v(300.0), v(150.0)],
        }
    }
}

/// One measured cell.
#[derive(Debug, Clone, Serialize)]
pub struct MeasuredCell {
    /// The operation-count formula actually incurred (Figure 3).
    pub formula: String,
    /// Priced latency in milliseconds (Figure 4).
    pub ms: f64,
}

/// One row across the six schemes (`None` = the scheme cannot serve the
/// condition, the paper's "-").
#[derive(Debug, Clone, Serialize)]
pub struct RowResult {
    /// Which condition.
    pub row: CostRow,
    /// Measured cells in scheme order.
    pub cells: [Option<MeasuredCell>; 6],
}

/// Scheme display names, in the figures' column order.
pub const SCHEME_NAMES: [&str; 6] = ["RADD", "ROWB", "RAID", "C-RAID", "2D-RADD", "1/2-RADD"];

const BLOCK: usize = 4096;

fn radd_config() -> RaddConfig {
    let mut cfg = RaddConfig::paper_g8();
    cfg.block_size = BLOCK;
    cfg
}

fn half_config() -> RaddConfig {
    let mut cfg = radd_config();
    cfg.rows = 60; // divisible across both 10 disks and the 6 sites of G=4
    cfg
}

enum Any {
    Radd(Radd),
    Rowb(Rowb),
    Raid(Raid5),
    CRaid(CRaid),
    TwoD(TwoDRadd),
}

impl Any {
    fn build(which: usize) -> Any {
        match which {
            0 => Any::Radd(Radd::new(radd_config()).unwrap()),
            1 => Any::Rowb(Rowb::new(10, 80, 10, BLOCK, CostParams::paper_defaults()).unwrap()),
            2 => Any::Raid(Raid5::paper_g8(10, BLOCK).unwrap()),
            3 => Any::CRaid(CRaid::new(radd_config()).unwrap()),
            4 => Any::TwoD(TwoDRadd::paper_8x8(10, BLOCK).unwrap()),
            5 => Any::Radd(Radd::half(half_config()).unwrap()),
            _ => unreachable!(),
        }
    }

    fn as_dyn(&mut self) -> &mut dyn ReplicationScheme {
        match self {
            Any::Radd(s) => s,
            Any::Rowb(s) => s,
            Any::Raid(s) => s,
            Any::CRaid(s) => s,
            Any::TwoD(s) => s,
        }
    }

    /// The measurement target `(site, index)`.
    fn target(&self) -> (usize, u64) {
        match self {
            Any::Raid(_) => (0, 0),
            _ => (1, 0),
        }
    }

    /// The disk to fail so the target block is hit.
    fn target_disk(&self) -> usize {
        // For the RADD family, (site 1, index 0) lands on physical row 2,
        // i.e. disk 0 at 6–10 rows per disk; for ROWB, index 0 is on disk
        // 0; for the RAID, flat index 0 lives on internal disk 0; the 2D
        // grid has one disk per site.
        0
    }
}

fn cell(receipt: OpReceipt) -> Option<MeasuredCell> {
    Some(MeasuredCell {
        formula: receipt.counts.formula(),
        ms: receipt.latency.as_millis_f64(),
    })
}

fn measure_one(which: usize, row: CostRow) -> Result<Option<MeasuredCell>, RaddError> {
    let mut any = Any::build(which);
    let (site, index) = any.target();
    let disk = any.target_disk();
    let seed = vec![0x5Au8; BLOCK];
    let fresh = vec![0xA5u8; BLOCK];
    // Seed the block so masks and reconstructions are non-trivial.
    any.as_dyn().write(Actor::Site(site), site, index, &seed)?;

    let result = match row {
        CostRow::NfRead => {
            let (_, r) = any.as_dyn().read(Actor::Site(site), site, index)?;
            cell(r)
        }
        CostRow::NfWrite => {
            let r = any.as_dyn().write(Actor::Site(site), site, index, &fresh)?;
            cell(r)
        }
        CostRow::DiskFailRead | CostRow::DiskFailWrite => {
            any.as_dyn()
                .inject(site, FailureKind::DiskFailure { disk })?;
            // The 2D grid's "disk failure" downs the data site, so its
            // owner cannot act; everyone else measures from the owner's
            // perspective as the paper does.
            let actor = match any {
                Any::TwoD(_) => Actor::Client,
                _ => Actor::Site(site),
            };
            if row == CostRow::DiskFailRead {
                let (_, r) = any.as_dyn().read(actor, site, index)?;
                cell(r)
            } else {
                let r = any.as_dyn().write(actor, site, index, &fresh)?;
                cell(r)
            }
        }
        CostRow::ReconRead => match &mut any {
            Any::Radd(s) => {
                // The paper's R+RR row is the recovering-site case: the
                // stale local block is read (R) and the valid spare
                // supersedes it (RR).
                let c = s.cluster();
                c.fail_site(site);
                c.write(Actor::Client, site, index, &fresh)?;
                c.restore_site(site);
                debug_assert_eq!(c.site_state(site), SiteState::Recovering);
                let (_, r) = c.read(Actor::Site(site), site, index)?;
                cell(r)
            }
            Any::Rowb(_) => {
                // Not applicable to mirroring; the paper prints the normal
                // read.
                let (_, r) = any.as_dyn().read(Actor::Site(site), site, index)?;
                cell(r)
            }
            _ => {
                // Parity schemes: fail, read once (reconstruct + install
                // into the spare), then measure the spare-resident read.
                let kind = match any {
                    Any::TwoD(_) => FailureKind::SiteFailure,
                    _ => FailureKind::DiskFailure { disk },
                };
                any.as_dyn().inject(site, kind)?;
                any.as_dyn().read(Actor::Client, site, index)?;
                let (_, r) = any.as_dyn().read(Actor::Client, site, index)?;
                cell(r)
            }
        },
        CostRow::SiteFailRead | CostRow::SiteFailWrite => {
            any.as_dyn().inject(site, FailureKind::SiteFailure)?;
            let result = if row == CostRow::SiteFailRead {
                any.as_dyn()
                    .read(Actor::Client, site, index)
                    .map(|(_, r)| r)
            } else {
                any.as_dyn().write(Actor::Client, site, index, &fresh)
            };
            match result {
                Ok(r) => cell(r),
                Err(RaddError::Unavailable { .. }) => None, // RAID's "-"
                Err(e) => return Err(e),
            }
        }
    };
    Ok(result)
}

/// Measure the full Figure 3 / Figure 4 grid.
pub fn measure_costs() -> Result<Vec<RowResult>, RaddError> {
    CostRow::ALL
        .iter()
        .map(|&row| {
            let mut cells: [Option<MeasuredCell>; 6] = Default::default();
            for (which, slot) in cells.iter_mut().enumerate() {
                *slot = measure_one(which, row)?;
            }
            Ok(RowResult { row, cells })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_measures_cleanly() {
        let rows = measure_costs().unwrap();
        assert_eq!(rows.len(), 7);
        // RAID's site-failure cells are the only "-" entries.
        for r in &rows {
            for (i, c) in r.cells.iter().enumerate() {
                let expect_dash =
                    i == 2 && matches!(r.row, CostRow::SiteFailRead | CostRow::SiteFailWrite);
                assert_eq!(c.is_none(), expect_dash, "{:?} {}", r.row, SCHEME_NAMES[i]);
            }
        }
    }

    #[test]
    fn headline_cells_match_figure4_exactly() {
        let rows = measure_costs().unwrap();
        let ms = |row: usize, col: usize| rows[row].cells[col].as_ref().unwrap().ms;
        // no-failure read: 30 everywhere.
        for col in 0..6 {
            assert_eq!(ms(0, col), 30.0, "col {col}");
        }
        // no-failure write: RADD 105, RAID 60, C-RAID 165, 2D 180.
        assert_eq!(ms(1, 0), 105.0);
        assert_eq!(ms(1, 2), 60.0);
        assert_eq!(ms(1, 3), 165.0);
        assert_eq!(ms(1, 4), 180.0);
        // disk-failure read: RADD 600, ROWB 75, RAID 240, 1/2-RADD 300.
        assert_eq!(ms(2, 0), 600.0);
        assert_eq!(ms(2, 1), 75.0);
        assert_eq!(ms(2, 2), 240.0);
        assert_eq!(ms(2, 5), 300.0);
        // previously reconstructed: RADD 105.
        assert_eq!(ms(4, 0), 105.0);
        // site-failure write: RADD 150, 2D 300.
        assert_eq!(ms(6, 0), 150.0);
        assert_eq!(ms(6, 4), 300.0);
    }

    #[test]
    fn every_cell_matches_figure4_except_documented_deviations() {
        // The complete grid, cell by cell, against the paper's Figure 4.
        // Three cells deviate for documented reasons (EXPERIMENTS.md):
        //   (ReconRead, RAID)    — 30 vs 60: the controller skips the dead
        //                          disk probe;
        //   (ReconRead, 2D-RADD) — 75 vs 105: spare answers in one read;
        //   (SiteFailWrite, C-RAID) — 210 vs "105": the memo's printed cell
        //                          contradicts its own Figure 3 formula.
        let deviations: &[(CostRow, usize, f64)] = &[
            (CostRow::ReconRead, 2, 30.0),
            (CostRow::ReconRead, 4, 75.0),
            (CostRow::SiteFailWrite, 3, 210.0),
        ];
        let rows = measure_costs().unwrap();
        for r in &rows {
            let paper = r.row.paper_ms();
            for (col, cell) in r.cells.iter().enumerate() {
                let measured = cell.as_ref().map(|c| c.ms);
                let expected = deviations
                    .iter()
                    .find(|&&(row, c, _)| row == r.row && c == col)
                    .map_or(paper[col], |&(_, _, v)| Some(v));
                assert_eq!(measured, expected, "{:?} / {}", r.row, SCHEME_NAMES[col]);
            }
        }
    }

    #[test]
    fn formulas_match_figure3_for_radd_column() {
        let rows = measure_costs().unwrap();
        let f = |row: usize| rows[row].cells[0].as_ref().unwrap().formula.clone();
        assert_eq!(f(0), "R");
        assert_eq!(f(1), "W+RW");
        assert_eq!(f(2), "8*RR");
        assert_eq!(f(3), "2*RW");
        assert_eq!(f(4), "R+RR");
        assert_eq!(f(5), "8*RR");
        assert_eq!(f(6), "2*RW");
    }
}
