//! Section 3.4: WAL vs no-overwrite recovery over RADD.
//!
//! The experiment runs the same transactional history against both storage
//! managers, crashes them, and prices recovery three ways:
//!
//! * WAL, recovering locally (the fast path that beats remote recovery for
//!   short outages);
//! * WAL, recovering *remotely through RADD* — every log block costs `G`
//!   remote reads;
//! * no-overwrite — nothing to scan at all, in either context.

use radd_sim::CostParams;
use radd_storage::{NoOverwriteManager, RecoveryContext, StorageError, StorageManager, WalManager};
use serde::Serialize;

/// One recovery measurement.
#[derive(Debug, Clone, Serialize)]
pub struct RecoveryRow {
    /// Manager + context label.
    pub label: String,
    /// Log blocks scanned.
    pub log_blocks: u64,
    /// Pages replayed (redo + undo).
    pub pages_replayed: u64,
    /// Priced recovery time in milliseconds (Table 1 costs).
    pub ms: f64,
}

/// Run `txns` transactions of `writes_per_txn` page writes each against a
/// manager, leaving one transaction uncommitted.
fn drive<M: StorageManager>(
    m: &mut M,
    txns: u64,
    writes_per_txn: u64,
    pages: u64,
) -> Result<(), StorageError> {
    let page_size = m.page_size();
    for t in 0..txns {
        let txn = m.begin()?;
        for w in 0..writes_per_txn {
            let page = (t * writes_per_txn + w) % pages;
            m.write(txn, page, &vec![(t % 251 + 1) as u8; page_size])?;
        }
        if t + 1 < txns {
            m.commit(txn)?;
        } // the last transaction stays open and dies in the crash
    }
    Ok(())
}

/// Run the §3.4 comparison. `g` is the RADD group size for the remote
/// context.
pub fn section34(
    txns: u64,
    writes_per_txn: u64,
    g: usize,
) -> Result<Vec<RecoveryRow>, StorageError> {
    let pages = 64;
    let page_size = 1024;
    let cost = CostParams::paper_defaults();
    let mut rows = Vec::new();

    for ctx in [RecoveryContext::Local, RecoveryContext::RemoteRadd { g }] {
        let mut wal = WalManager::new(pages, page_size);
        drive(&mut wal, txns, writes_per_txn, pages)?;
        wal.crash();
        let stats = wal.recover(ctx)?;
        rows.push(RecoveryRow {
            label: match ctx {
                RecoveryContext::Local => "WAL, local recovery".into(),
                RecoveryContext::RemoteRadd { g } => {
                    format!("WAL, remote recovery through RADD (G = {g})")
                }
            },
            log_blocks: stats.log_blocks_read,
            pages_replayed: stats.pages_redone + stats.pages_undone,
            ms: stats.cost.priced(&cost).as_millis_f64(),
        });
    }

    for ctx in [RecoveryContext::Local, RecoveryContext::RemoteRadd { g }] {
        let mut now = NoOverwriteManager::new(pages, page_size);
        drive(&mut now, txns, writes_per_txn, pages)?;
        now.crash();
        let stats = now.recover(ctx)?;
        rows.push(RecoveryRow {
            label: match ctx {
                RecoveryContext::Local => "no-overwrite, local recovery".into(),
                RecoveryContext::RemoteRadd { .. } => {
                    "no-overwrite, remote recovery through RADD".into()
                }
            },
            log_blocks: stats.log_blocks_read,
            pages_replayed: stats.pages_redone + stats.pages_undone,
            ms: stats.cost.priced(&cost).as_millis_f64(),
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remote_wal_recovery_is_g_times_local() {
        let rows = section34(50, 4, 8).unwrap();
        let local = &rows[0];
        let remote = &rows[1];
        assert!(local.log_blocks > 0);
        assert_eq!(local.log_blocks, remote.log_blocks);
        // Log scan: G remote reads at 75 ms vs 1 local read at 30 ms per
        // block → 20× on the scan; page writes temper the total.
        assert!(
            remote.ms > 5.0 * local.ms,
            "remote {} vs local {}",
            remote.ms,
            local.ms
        );
    }

    #[test]
    fn no_overwrite_recovery_is_free_everywhere() {
        let rows = section34(50, 4, 8).unwrap();
        for row in rows.iter().filter(|r| r.label.starts_with("no-overwrite")) {
            assert_eq!(row.log_blocks, 0, "{}", row.label);
            assert_eq!(row.ms, 0.0, "{}", row.label);
        }
    }
}
