//! Section 7.4: network bandwidth.
//!
//! Two claims to reproduce:
//!
//! 1. with change-mask encoding and 4× buffer-pool absorption, "the
//!    aggregate network bandwidth needs to be only 1/20 of the aggregate
//!    disk bandwidth" — measured by the record-update workload, with a
//!    full-block-shipping ablation alongside;
//! 2. during a single site failure, "the aggregate network bandwidth and
//!    disk bandwidth at the up sites must increase by 50 percent" for a
//!    half-reads workload — measured by comparing physical I/O per logical
//!    operation across healthy and degraded runs.

use radd_core::{RaddCluster, RaddConfig, RaddError, SparePolicy};
use radd_schemes::{FailureKind, Radd, ReplicationScheme};
use radd_sim::SimRng;
use radd_workload::{run_mix, run_record_workload, AccessPattern, Mix, RecordWorkload};
use serde::Serialize;

/// Results of the bandwidth-ratio experiment.
#[derive(Debug, Clone, Serialize)]
pub struct BandwidthReport {
    /// Record updates applied.
    pub record_updates: u64,
    /// Disk bytes moved.
    pub disk_bytes: u64,
    /// Network bytes with change-mask encoding.
    pub masked_network_bytes: u64,
    /// Network/disk ratio with masks (paper: ~1/20 = 0.05).
    pub masked_ratio: f64,
    /// Network bytes when whole blocks are shipped (ablation).
    pub full_block_network_bytes: u64,
    /// Network/disk ratio for the ablation.
    pub full_block_ratio: f64,
    /// Network bytes a hot standby ships for the same record stream
    /// (logical log records) — §7.4's comparison baseline.
    pub hot_standby_bytes: u64,
    /// RADD-mask bytes relative to hot-standby bytes (the paper claims
    /// "a RADD should approximate the bandwidth requirements of a hot
    /// standby", i.e. a ratio near 1).
    pub radd_vs_standby: f64,
}

fn cluster_4k() -> Result<RaddCluster, RaddError> {
    let mut cfg = RaddConfig::paper_g8();
    cfg.block_size = 4096;
    cfg.rows = 50;
    cfg.disks_per_site = 5;
    RaddCluster::new(cfg)
}

/// Run the §7.4 record workload with and without mask encoding.
pub fn bandwidth_ratio(flushes: u64, seed: u64) -> Result<BandwidthReport, RaddError> {
    let mut rng = SimRng::seed_from_u64(seed);
    let mut c = cluster_4k()?;
    let masked = run_record_workload(&mut c, 0, RecordWorkload::paper(flushes), &mut rng)?;

    let mut rng = SimRng::seed_from_u64(seed);
    let mut c = cluster_4k()?;
    let mut wl = RecordWorkload::paper(flushes);
    wl.full_block_shipping = true;
    let full = run_record_workload(&mut c, 0, wl, &mut rng)?;

    // The same record stream through a hot standby: one logical log record
    // per update, shipped at commit (one commit per page flush).
    let mut rng = SimRng::seed_from_u64(seed);
    let mut hs = radd_storage::HotStandby::new(64, 4096 / 100, 100);
    for _ in 0..flushes {
        let page = rng.below(64);
        for _ in 0..4 {
            let slot = rng.index(4096 / 100) as u32;
            let payload = rng.bytes(100);
            hs.update_record(page, slot, &payload)
                .expect("valid record address");
        }
        hs.commit().expect("commit");
    }

    Ok(BandwidthReport {
        record_updates: masked.record_updates,
        disk_bytes: masked.disk_bytes,
        masked_network_bytes: masked.network_bytes,
        masked_ratio: masked.bandwidth_ratio(),
        full_block_network_bytes: full.network_bytes,
        full_block_ratio: full.bandwidth_ratio(),
        hot_standby_bytes: hs.wire_bytes,
        radd_vs_standby: masked.network_bytes as f64 / hs.wire_bytes as f64,
    })
}

/// Results of the degraded-load experiment.
#[derive(Debug, Clone, Serialize)]
pub struct DegradedLoadReport {
    /// Physical ops per logical op, healthy.
    pub healthy_ops_per_op: f64,
    /// Physical ops per logical op, one site down.
    pub degraded_ops_per_op: f64,
    /// The increase in total physical load.
    pub increase_factor: f64,
    /// Physical reads per logical read during the failure. The paper's
    /// §7.4 derivation: `(G-1)/G` of reads cost one read, `1/G` cost `G`
    /// reads, "hence, on average, each read requires two physical read
    /// operations during failures". (With the exact `1/(G+2)` site fraction
    /// this is 1.7 at G = 8.)
    pub read_amplification: f64,
    /// The paper's aggregate-load arithmetic applied to the measured
    /// amplification: reads are half the load and amplify, writes do not —
    /// `(1 + amplification) / 2`. The paper's round numbers give 1.5
    /// ("must increase by 50 percent").
    pub paper_style_increase: f64,
}

/// Measure physical I/O amplification with one site down under a 50 %-read
/// mix (no spares, so every degraded read reconstructs — the steady state
/// the paper's arithmetic describes).
pub fn degraded_load(ops: u64, seed: u64) -> Result<DegradedLoadReport, RaddError> {
    let mut cfg = RaddConfig::paper_g8();
    cfg.block_size = 512;
    cfg.spare_policy = SparePolicy::None;
    let mix = Mix { read_fraction: 0.5 };

    let mut scheme = Radd::new(cfg.clone())?;
    let mut rng = SimRng::seed_from_u64(seed);
    let healthy = run_mix(&mut scheme, &mut rng, ops, mix, AccessPattern::Uniform)?;
    let healthy_ratio = healthy.counts.total() as f64 / (healthy.reads + healthy.writes) as f64;

    let mut scheme = Radd::new(cfg.clone())?;
    scheme.inject(3, FailureKind::SiteFailure)?;
    let mut rng = SimRng::seed_from_u64(seed);
    let degraded = run_mix(&mut scheme, &mut rng, ops, mix, AccessPattern::Uniform)?;
    // Without spares, down-site writes are refused; count served ops only.
    let degraded_ratio = degraded.counts.total() as f64 / (degraded.reads + degraded.writes) as f64;

    // Read amplification in isolation (a read-only run on a degraded
    // cluster), which is the quantity the paper's 50 % figure is built on.
    let mut scheme = Radd::new(cfg)?;
    scheme.inject(3, FailureKind::SiteFailure)?;
    let mut rng = SimRng::seed_from_u64(seed + 1);
    let reads = run_mix(
        &mut scheme,
        &mut rng,
        ops,
        Mix::read_only(),
        AccessPattern::Uniform,
    )?;
    let read_amplification =
        (reads.counts.local_reads + reads.counts.remote_reads) as f64 / reads.reads as f64;

    Ok(DegradedLoadReport {
        healthy_ops_per_op: healthy_ratio,
        degraded_ops_per_op: degraded_ratio,
        increase_factor: degraded_ratio / healthy_ratio,
        read_amplification,
        paper_style_increase: (1.0 + read_amplification) / 2.0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masked_ratio_is_near_one_twentieth() {
        let r = bandwidth_ratio(60, 1).unwrap();
        assert!(
            (0.02..0.12).contains(&r.masked_ratio),
            "masked ratio {}",
            r.masked_ratio
        );
        assert!(
            r.full_block_ratio > 4.0 * r.masked_ratio,
            "ablation {} vs masked {}",
            r.full_block_ratio,
            r.masked_ratio
        );
    }

    #[test]
    fn radd_approximates_hot_standby_bandwidth() {
        // §7.4: "a RADD should approximate the bandwidth requirements of a
        // hot standby" — same order of magnitude, within a few ×.
        let r = bandwidth_ratio(80, 2).unwrap();
        assert!(
            (0.4..4.0).contains(&r.radd_vs_standby),
            "RADD masks {} B vs hot standby {} B (ratio {})",
            r.masked_network_bytes,
            r.hot_standby_bytes,
            r.radd_vs_standby
        );
    }

    #[test]
    fn failure_raises_load_roughly_fifty_percent() {
        let r = degraded_load(4000, 2).unwrap();
        assert!(
            (1.15..1.8).contains(&r.increase_factor),
            "increase {}",
            r.increase_factor
        );
        // Paper: "each read requires two physical read operations during
        // failures" — exact accounting at G = 8 over 10 sites gives 1.7.
        assert!(
            (1.5..2.0).contains(&r.read_amplification),
            "amplification {}",
            r.read_amplification
        );
        // And its aggregate arithmetic lands near +50 %.
        assert!(
            (1.25..1.5).contains(&r.paper_style_increase),
            "paper-style {}",
            r.paper_style_increase
        );
    }
}
