//! Figure 7: the closing comparison — space overhead, average I/O cost
//! under a 2-reads-per-write mix, MTTU, and MTTF in the cautious
//! conventional environment.
//!
//! The I/O-cost column is **measured**: each scheme runs the 2:1 mix and
//! reports its mean per-operation latency. (The paper derives the same
//! column from Figure 4; its RADD-family entry, 58.3 ms, does not follow
//! from its own figures — (2·30 + 105)/3 = 55 ms — so expect 55 here.)

use crate::experiments::costs::SCHEME_NAMES;
use radd_core::{RaddConfig, RaddError};
use radd_reliability::{mttf_hours, mttu_hours, Environment, Scheme, HOURS_PER_YEAR};
use radd_schemes::{CRaid, Radd, Raid5, ReplicationScheme, Rowb, TwoDRadd};
use radd_sim::{CostParams, SimRng};
use radd_workload::{run_mix, AccessPattern, Mix};
use serde::Serialize;

const G: usize = 8;
const BLOCK: usize = 1024;

/// One Figure 7 row.
#[derive(Debug, Clone, Serialize)]
pub struct SummaryRow {
    /// Scheme name.
    pub scheme: &'static str,
    /// Space overhead, percent.
    pub space_percent: f64,
    /// Measured mean I/O cost (ms) under the 2:1 mix, no failures.
    pub io_cost_ms: f64,
    /// The paper's printed I/O cost.
    pub paper_io_cost_ms: f64,
    /// MTTU in years (closed form).
    pub mttu_years: f64,
    /// Paper's MTTU in years.
    pub paper_mttu_years: f64,
    /// MTTF in years, cautious conventional (analytic model).
    pub mttf_years: f64,
    /// Paper's MTTF (500 stands for ">500").
    pub paper_mttf_years: f64,
}

fn build(which: usize) -> Box<dyn ReplicationScheme> {
    let mut cfg = RaddConfig::paper_g8();
    cfg.block_size = BLOCK;
    match which {
        0 => Box::new(Radd::new(cfg).unwrap()),
        1 => Box::new(Rowb::new(10, 80, 10, BLOCK, CostParams::paper_defaults()).unwrap()),
        2 => Box::new(Raid5::paper_g8(10, BLOCK).unwrap()),
        3 => Box::new(CRaid::new(cfg).unwrap()),
        4 => Box::new(TwoDRadd::paper_8x8(10, BLOCK).unwrap()),
        5 => {
            cfg.rows = 60;
            Box::new(Radd::half(cfg).unwrap())
        }
        _ => unreachable!(),
    }
}

/// Figure 7's paper column for I/O cost (ms) and the scheme order mapping
/// onto [`Scheme::ALL`].
const PAPER_IO: [f64; 6] = [58.3, 58.3, 40.0, 75.0, 80.0, 58.3];
const SCHEME_ORDER: [Scheme; 6] = [
    Scheme::Radd,
    Scheme::Rowb,
    Scheme::Raid,
    Scheme::CRaid,
    Scheme::TwoDRadd,
    Scheme::HalfRadd,
];
const PAPER_MTTU_YEARS: [f64; 6] = [0.57, 2.57, 0.017, 0.57, 9.51, 1.14];
const PAPER_MTTF_YEARS: [f64; 6] = [28.5, 28.5, 1.71, 500.0, 500.0, 100.0];
const SPACE_PERCENT: [f64; 6] = [25.0, 100.0, 25.0, 56.25, 50.0, 50.0];

/// Compute Figure 7 with `ops` workload operations per scheme.
pub fn figure7(ops: u64, seed: u64) -> Result<Vec<SummaryRow>, RaddError> {
    let env = Environment::CautiousConventional.constants();
    (0..6)
        .map(|i| {
            let mut scheme = build(i);
            let mut rng = SimRng::seed_from_u64(seed + i as u64);
            let report = run_mix(
                scheme.as_mut(),
                &mut rng,
                ops,
                Mix::paper_2to1(),
                AccessPattern::Uniform,
            )?;
            let s = SCHEME_ORDER[i];
            Ok(SummaryRow {
                scheme: SCHEME_NAMES[i],
                space_percent: SPACE_PERCENT[i],
                io_cost_ms: report.mean_latency_ms(),
                paper_io_cost_ms: PAPER_IO[i],
                mttu_years: mttu_hours(s, G, &env) / HOURS_PER_YEAR,
                paper_mttu_years: PAPER_MTTU_YEARS[i],
                mttf_years: mttf_hours(s, G, &env) / HOURS_PER_YEAR,
                paper_mttf_years: PAPER_MTTF_YEARS[i],
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_cost_column_matches_expected_formula_values() {
        let rows = figure7(3000, 3).unwrap();
        // RADD / ROWB / 1/2-RADD: (2·30 + 105)/3 = 55 ms.
        for i in [0usize, 1, 5] {
            let v = rows[i].io_cost_ms;
            assert!((52.0..58.0).contains(&v), "{}: {v}", rows[i].scheme);
        }
        // RAID: (2·30 + 60)/3 = 40 ms.
        assert!((38.0..42.0).contains(&rows[2].io_cost_ms));
        // C-RAID: (2·30 + 165)/3 = 75 ms.
        assert!((71.0..79.0).contains(&rows[3].io_cost_ms));
        // 2D-RADD: (2·30 + 180)/3 = 80 ms.
        assert!((76.0..84.0).contains(&rows[4].io_cost_ms));
    }

    #[test]
    fn dominance_claims_hold() {
        // "RADD clearly dominates RAID" on reliability at equal space, and
        // "RADD, 1/2-RADD and 2D-RADD appear to be the dominant
        // alternatives".
        let rows = figure7(1500, 4).unwrap();
        let radd = &rows[0];
        let raid = &rows[2];
        assert_eq!(radd.space_percent, raid.space_percent);
        assert!(radd.mttf_years > 4.0 * raid.mttf_years);
        assert!(radd.mttu_years > 10.0 * raid.mttu_years);
    }
}
