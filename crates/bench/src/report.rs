//! Table rendering and JSON result dumps.

use serde::Serialize;
use std::fmt::Write as _;
use std::path::Path;

/// A fixed-width text table with a title, printed like the paper's figures.
#[derive(Debug, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Table {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (cells are displayed verbatim).
    pub fn row(&mut self, cells: &[String]) -> &mut Table {
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "\n== {} ==", self.title);
        let line = |out: &mut String, cells: &[String]| {
            let mut s = String::from("| ");
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(s, "{:<w$} | ", c, w = widths[i]);
            }
            let _ = writeln!(out, "{}", s.trim_end());
        };
        line(&mut out, &self.header);
        let total: usize = widths.iter().map(|w| w + 3).sum::<usize>() + 1;
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format a float with sensible precision for the tables.
pub fn fmt_f(v: f64) -> String {
    if !v.is_finite() {
        return ">500".into();
    }
    if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

/// Write a serialisable result set as pretty JSON under
/// `results/<name>.json` (creating the directory), and return the path.
pub fn dump_json<T: Serialize>(name: &str, value: &T) -> std::io::Result<String> {
    let dir = Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.json"));
    std::fs::write(&path, serde_json::to_string_pretty(value)?)?;
    Ok(path.display().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("Demo", &["a", "long header", "c"]);
        t.row(&["1".into(), "2".into(), "3".into()]);
        t.row(&["wide cell".into(), "x".into(), "y".into()]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("long header"));
        let lines: Vec<&str> = s.lines().filter(|l| l.starts_with('|')).collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[1].len(), lines[2].len(), "rows equally wide");
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["only one".into()]);
    }

    #[test]
    fn float_formats() {
        assert_eq!(fmt_f(1234.6), "1235");
        assert_eq!(fmt_f(58.33), "58.3");
        assert_eq!(fmt_f(1.714), "1.71");
        assert_eq!(fmt_f(f64::INFINITY), ">500");
    }
}
