//! Regenerate Figure 5: mean time to unavailability.

use radd_bench::experiments::reliability::figure5;
use radd_bench::report::{fmt_f, Table};

fn main() {
    let trials = 2000;
    let rows = figure5(trials, 42);
    let mut t = Table::new(
        format!("Figure 5 — MTTU (hours); Monte Carlo: {trials} trials"),
        &[
            "system",
            "paper",
            "closed form",
            "exact Markov",
            "Monte Carlo",
            "± stderr",
        ],
    );
    for r in &rows {
        t.row(&[
            r.scheme.to_string(),
            fmt_f(r.paper_hours),
            fmt_f(r.formula_hours),
            r.markov_hours.map_or_else(|| "—".into(), fmt_f),
            r.monte_carlo_hours.map_or_else(|| "—".into(), fmt_f),
            r.monte_carlo_stderr.map_or_else(|| "—".into(), fmt_f),
        ]);
    }
    t.print();
    println!(
        "\nThe closed forms count one failure ordering (\"a second site fails\n\
         while the first is down\"); the exact absorbing-chain solution and\n\
         the simulation count both orderings and agree with each other —\n\
         about half the formula for RADD. See crates/reliability docs."
    );
    if let Ok(path) = radd_bench::report::dump_json("fig5_mttu", &rows) {
        println!("results written to {path}");
    }
}
