//! §2's striping claim: dedicated vs rotating parity under concurrent
//! writers.

use radd_bench::experiments::striping::section2;
use radd_bench::report::{fmt_f, Table};

fn main() {
    let rows = section2(2_000, 42);
    let mut t = Table::new(
        "§2 — write throughput vs concurrency (G = 8, 9 drives, W = 30 ms)",
        &[
            "writers",
            "Level 4",
            "Level 5 (random)",
            "Level 5 (scheduled)",
        ],
    );
    for r in &rows {
        t.row(&[
            r.writers.to_string(),
            fmt_f(r.level4_speedup),
            fmt_f(r.level5_speedup),
            fmt_f(r.level5_scheduled_speedup),
        ]);
    }
    t.print();
    println!(
        "\nThe paper: a dedicated parity disk allows \"only a single write\",\n\
         while striping allows \"up to G/2 writes in parallel\" (= 4 here,\n\
         reached with coordinated placement; random placement pays a\n\
         collision tax on the way)."
    );
    let _ = radd_bench::report::dump_json("sec2_striping", &rows);
}
