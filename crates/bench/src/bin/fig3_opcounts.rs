//! Regenerate Figure 3: operation-count formulas per scheme and condition.
//!
//! Every cell is measured by driving a live scheme instance into the row's
//! condition and recording what one operation actually cost.

use radd_bench::experiments::costs::{measure_costs, SCHEME_NAMES};
use radd_bench::report::Table;

fn main() {
    println!("Table 1 — cost parameters: R = local read, W = local write,");
    println!("RR = remote read, RW = remote write (G = 8 throughout)\n");
    let rows = measure_costs().expect("measurement failed");
    let mut header = vec!["condition"];
    header.extend_from_slice(&SCHEME_NAMES);
    let mut measured = Table::new("Figure 3 — measured operation counts", &header);
    let mut paper = Table::new("Figure 3 — paper formulas (for comparison)", &header);
    for r in &rows {
        let mut m = vec![r.row.label().to_string()];
        for c in &r.cells {
            m.push(c.as_ref().map_or_else(|| "-".into(), |c| c.formula.clone()));
        }
        measured.row(&m);
        let mut p = vec![r.row.label().to_string()];
        p.extend(r.row.paper_formulas().iter().map(|s| s.to_string()));
        paper.row(&p);
    }
    measured.print();
    paper.print();
    if let Ok(path) = radd_bench::report::dump_json("fig3_opcounts", &rows) {
        println!("\nresults written to {path}");
    }
}
