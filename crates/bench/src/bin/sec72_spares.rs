//! §7.2's "future exercise": availability with partial spare allocation.

use radd_bench::experiments::spares::spare_sweep;
use radd_bench::report::{fmt_f, Table};

fn main() {
    let rows = spare_sweep(20_000, 42).expect("sweep failed");
    let mut t = Table::new(
        "§7.2 — spare allocation vs availability (one site down, 50% reads, G = 8)",
        &[
            "spare policy",
            "space %",
            "availability",
            "degraded op ms",
            "degraded read ms",
        ],
    );
    for r in &rows {
        t.row(&[
            r.policy.clone(),
            fmt_f(r.space_percent),
            format!("{:.1} %", r.availability * 100.0),
            fmt_f(r.degraded_ms),
            fmt_f(r.degraded_read_ms),
        ]);
    }
    t.print();
    println!(
        "\nThe trade the paper deferred: each step of spare capacity buys back\n\
         write availability for the down site and cheapens repeated degraded\n\
         reads (spares absorb reconstructions); the last step to full spares\n\
         closes the availability gap entirely at 25 % total overhead."
    );
    let _ = radd_bench::report::dump_json("sec72_spares", &rows);
}
