//! Regenerate Figure 2: space overhead per scheme.

use radd_bench::experiments::space::figure2;
use radd_bench::report::{fmt_f, Table};

fn main() {
    let rows = figure2();
    let mut t = Table::new(
        "Figure 2 — A Space Comparison",
        &[
            "System",
            "overhead % (ours)",
            "overhead % (paper)",
            "layout census %",
        ],
    );
    for r in &rows {
        t.row(&[
            r.scheme.to_string(),
            fmt_f(r.overhead * 100.0),
            fmt_f(r.paper_percent),
            r.census_percent.map_or_else(|| "—".into(), fmt_f),
        ]);
    }
    t.print();
    if let Ok(path) = radd_bench::report::dump_json("fig2_space", &rows) {
        println!("\nresults written to {path}");
    }
}
