//! Regenerate the §3.4 recovery comparison: WAL vs no-overwrite, local vs
//! remote-through-RADD.

use radd_bench::experiments::recovery::section34;
use radd_bench::report::{fmt_f, Table};

fn main() {
    let rows = section34(200, 4, 8).expect("storage failure");
    let mut t = Table::new(
        "§3.4 — crash-recovery cost by storage manager and context",
        &[
            "manager / context",
            "log blocks",
            "pages replayed",
            "recovery ms",
        ],
    );
    for r in &rows {
        t.row(&[
            r.label.clone(),
            r.log_blocks.to_string(),
            r.pages_replayed.to_string(),
            fmt_f(r.ms),
        ]);
    }
    t.print();
    println!(
        "\nThe paper's conclusion: remote WAL recovery (G reads per log block)\n\
         is unlikely to beat local restart for short outages, so WAL+RADD only\n\
         helps with disasters and disk failures; a no-overwrite manager makes\n\
         RADD useful for temporary site failures too."
    );
    let _ = radd_bench::report::dump_json("sec34_recovery", &rows);
}
