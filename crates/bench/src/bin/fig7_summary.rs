//! Regenerate Figure 7: the closing comparison table.

use radd_bench::experiments::summary::figure7;
use radd_bench::report::{fmt_f, Table};

fn main() {
    let rows = figure7(6000, 42).expect("workload failed");
    let mut t = Table::new(
        "Figure 7 — summary (cautious conventional environment; I/O cost measured over a 2:1 read/write mix)",
        &[
            "system",
            "space %",
            "I/O ms (measured)",
            "I/O ms (paper)",
            "MTTU yr",
            "MTTU yr (paper)",
            "MTTF yr",
            "MTTF yr (paper)",
        ],
    );
    for r in &rows {
        let paper_mttf = if r.paper_mttf_years >= 100.0 {
            format!(">{}", r.paper_mttf_years as u64)
        } else {
            fmt_f(r.paper_mttf_years)
        };
        t.row(&[
            r.scheme.to_string(),
            fmt_f(r.space_percent),
            fmt_f(r.io_cost_ms),
            fmt_f(r.paper_io_cost_ms),
            fmt_f(r.mttu_years),
            fmt_f(r.paper_mttu_years),
            fmt_f(r.mttf_years),
            paper_mttf,
        ]);
    }
    t.print();
    println!(
        "\n(The paper's 58.3 ms RADD entry does not follow from its own Figure 4:\n\
         (2·30 + 105)/3 = 55 ms, which is what the measurement shows.)"
    );
    if let Ok(path) = radd_bench::report::dump_json("fig7_summary", &rows) {
        println!("results written to {path}");
    }
}
