//! Rebuild time vs. pool size: rotation vs. declustered placement.
//!
//! The physics being measured: with one transmission [`radd_net::Wire`] per pool
//! site (`set_pool_wires`), every reconstruction read serialises on the
//! survivor that serves it, so a rebuild's wall clock is the *maximum
//! per-site read load* times the wire latency. The §4 greedy carves a
//! uniform wide pool into disjoint `G + 2`-site clusters, so however many
//! sites the pool has, a failed site's co-resident groups all read from
//! the same `G + 1` survivors. The declustered placement spreads those
//! groups' stripes across the whole pool: the same number of reads lands
//! on `P - 1` wires instead of `G + 1`, and the parallel rebuild engine
//! (`rebuild_pool_site_parallel`, one thread per affected group, wave
//! pipelining inside each) turns that spread into wall-clock speedup.
//!
//! Output lines are `bench rebuild_scaling/...` in the house format;
//! `scripts/bench_check.sh` gates the declustered-vs-rotation ratio at the
//! largest pool (≥ 2× at ≥ 12 sites; the recorded run in
//! `results/BENCH_pr8.json` shows ~3–4×). Knobs:
//!
//! * `RB_POOLS` — comma-separated pool sizes, multiples of `G + 2`
//!   (default `4,8,12`)
//! * `RB_SLOTS` — member slots per pool site (default 6: enough
//!   co-resident groups that the rotation clusters visibly serialise)
//! * `RB_ROWS` — rows per member slot (default 64)
//! * `RB_LATENCY_US` — per-read wire latency in µs (default 600: high
//!   enough that wire time, not thread scheduling, dominates)
//! * `RB_WAVE` — rows per rebuild wave (default 8)

use radd_layout::{Geometry, Placement, ShardMap};
use radd_node::ShardedNodeCluster;
use radd_protocol::CoalescePolicy;
use std::time::{Duration, Instant};

/// Per-group geometry: G = 2 (4 member slots). Small blocks — the wire
/// *time* per read, not the byte volume, is what the layouts contend for.
const G: usize = 2;
const BLOCK_SIZE: usize = 64;
/// The pool site the bench fails and rebuilds. Site 0 hosts a member slot
/// of `RB_SLOTS` distinct groups under either placement.
const VICTIM: usize = 0;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

struct Sample {
    pool: usize,
    placement: Placement,
    secs: f64,
    groups: usize,
    blocks: u64,
    /// Distinct pool sites that served reconstruction reads.
    spread: usize,
    /// Reads on the busiest survivor — the quantity the wire serialises.
    max_site_reads: u64,
}

struct Knobs {
    slots: usize,
    rows: u64,
    latency: Duration,
    wave: usize,
}

fn run_config(pool: usize, placement: Placement, k: &Knobs) -> Sample {
    let geo = Geometry::new(G, k.rows).expect("valid geometry");
    let map = ShardMap::pool(pool, k.slots, geo, placement).expect("pool carves into groups");
    let groups = map.num_groups();
    let (mut cluster, mut extra) =
        ShardedNodeCluster::start_with_map(map, BLOCK_SIZE, 2, CoalescePolicy::Merge);
    let mut workers: Vec<_> = extra.iter_mut().map(|clients| clients.remove(0)).collect();
    // Seed one block per group so the rebuild moves real content, then
    // attach the wires *after* the writes — setup traffic is free.
    let cap = cluster.map().group_capacity();
    for g in 0..groups as u64 {
        cluster
            .write(radd_layout::GlobalAddr(g * cap), &[0x5A; BLOCK_SIZE])
            .expect("healthy-path write");
    }
    cluster.quiesce(Duration::from_secs(30)).expect("quiesce");
    let _wires = cluster.set_pool_wires(k.latency);
    cluster.kill_pool_site(VICTIM);
    let t0 = Instant::now();
    let report = cluster
        .rebuild_pool_site_parallel(VICTIM, k.wave, &mut workers)
        .expect("rebuild");
    let secs = t0.elapsed().as_secs_f64();
    // Leave the cluster clean: drain spares back and sweep the invariant.
    cluster.clear_pool_wires();
    cluster.revive_pool_site(VICTIM);
    cluster.recover_pool_site(VICTIM).expect("recover");
    for worker in &mut workers {
        worker.mark_down(VICTIM, false);
    }
    cluster.verify_parity().expect("stripe sweep after rebuild");
    cluster.shutdown();
    Sample {
        pool,
        placement,
        secs,
        groups: report.groups,
        blocks: report.blocks_rebuilt,
        spread: report.pool_peer_reads.iter().filter(|&&n| n > 0).count(),
        max_site_reads: report.pool_peer_reads.iter().copied().max().unwrap_or(0),
    }
}

fn main() {
    let knobs = Knobs {
        slots: env_u64("RB_SLOTS", 6) as usize,
        rows: env_u64("RB_ROWS", 64),
        latency: Duration::from_micros(env_u64("RB_LATENCY_US", 600)),
        wave: env_u64("RB_WAVE", 8) as usize,
    };
    let pools: Vec<usize> = std::env::var("RB_POOLS")
        .unwrap_or_else(|_| "4,8,12".into())
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    let record = std::env::args().any(|a| a == "--record");

    println!(
        "rebuild scaling: G = {G}, {} slots/site, {} rows/slot, {BLOCK_SIZE} B blocks, \
         {} us wire latency, wave {}",
        knobs.slots,
        knobs.rows,
        knobs.latency.as_micros(),
        knobs.wave
    );
    let mut samples: Vec<(Sample, Sample)> = Vec::new();
    for &pool in &pools {
        let rot = run_config(pool, Placement::Rotation, &knobs);
        let dec = run_config(pool, Placement::Declustered, &knobs);
        for s in [&rot, &dec] {
            println!(
                "bench rebuild_scaling/pool={},layout={} secs={:.3} groups={} blocks={} \
                 spread={} max_site_reads={}",
                s.pool, s.placement, s.secs, s.groups, s.blocks, s.spread, s.max_site_reads
            );
        }
        let speedup = rot.secs / dec.secs.max(1e-9);
        println!(
            "bench rebuild_scaling/pool={pool} declustered_speedup={speedup:.2} \
             (rotation read fan-out {} sites, declustered {} sites)",
            rot.spread, dec.spread
        );
        samples.push((rot, dec));
    }
    if record {
        let mut rows = String::new();
        for (rot, dec) in &samples {
            rows.push_str(&format!(
                "    \"pool={}\": {{ \"rotation_secs\": {:.4}, \"declustered_secs\": {:.4}, \
                 \"speedup\": {:.2}, \"rotation_spread\": {}, \"declustered_spread\": {}, \
                 \"groups_affected\": {}, \"blocks_rebuilt\": {} }},\n",
                rot.pool,
                rot.secs,
                dec.secs,
                rot.secs / dec.secs.max(1e-9),
                rot.spread,
                dec.spread,
                dec.groups,
                dec.blocks,
            ));
        }
        let headline = samples
            .iter()
            .filter(|(rot, _)| rot.pool >= 12)
            .map(|(rot, dec)| rot.secs / dec.secs.max(1e-9))
            .fold(0.0f64, f64::max);
        let json = format!(
            "{{\n  \"bench\": \"rebuild_scaling\",\n  \"description\": \"Wall-clock rebuild of one \
             failed pool site, rotation vs declustered placement on ShardedNodeCluster: one wire \
             per pool site ({} us per read), {} member slots per site, G = {G}, {} rows/slot, \
             {BLOCK_SIZE} B blocks, wave {}. The parallel rebuild engine fans one thread per \
             affected group; speedup is rotation_secs / declustered_secs at each pool size. \
             Regenerate with: cargo run -p radd-bench --release --bin rebuild_scaling -- \
             --record\",\n  \"rebuild\": {{\n{}  }},\n  \"headline\": {{ \
             \"declustered_speedup_at_12_sites\": {headline:.2} }}\n}}\n",
            knobs.latency.as_micros(),
            knobs.slots,
            knobs.rows,
            knobs.wave,
            rows.trim_end_matches(",\n").to_string() + "\n",
        );
        std::fs::create_dir_all("results").expect("results dir");
        std::fs::write("results/BENCH_pr8.json", json).expect("write results/BENCH_pr8.json");
        println!("recorded results/BENCH_pr8.json");
    }
}
