//! Regenerate Figure 4: numerical cost comparison (msec), R = W = 30,
//! RR = RW = 75.

use radd_bench::experiments::costs::{measure_costs, SCHEME_NAMES};
use radd_bench::report::{fmt_f, Table};

fn main() {
    let rows = measure_costs().expect("measurement failed");
    let mut header = vec!["condition"];
    header.extend_from_slice(&SCHEME_NAMES);
    let mut measured = Table::new("Figure 4 — measured costs (msec)", &header);
    let mut paper = Table::new("Figure 4 — paper values (msec, as printed)", &header);
    for r in &rows {
        let mut m = vec![r.row.label().to_string()];
        for c in &r.cells {
            m.push(c.as_ref().map_or_else(|| "-".into(), |c| fmt_f(c.ms)));
        }
        measured.row(&m);
        let mut p = vec![r.row.label().to_string()];
        p.extend(
            r.row
                .paper_ms()
                .iter()
                .map(|v| v.map_or_else(|| "-".into(), fmt_f)),
        );
        paper.row(&p);
    }
    measured.print();
    paper.print();
    println!(
        "\nNote: the memo's own Figures 3 and 4 disagree on two C-RAID cells\n\
         (disk-failure write, site-failure write); see EXPERIMENTS.md."
    );
    if let Ok(path) = radd_bench::report::dump_json("fig4_costs", &rows) {
        println!("results written to {path}");
    }
}
