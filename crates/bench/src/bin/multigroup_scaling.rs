//! Cross-group throughput scaling on the threaded runtime.
//!
//! One rotating-parity group is wire-bound: with a link latency `L` every
//! write occupies its group's threads for a few multiples of `L` (the W
//! send, the deferred ack, the parity update and its ack), so a single
//! closed-loop client tops out near `1/(2·L)` writes per second no matter
//! how fast the CPU is. Groups share no protocol traffic, so a sharded
//! cluster's aggregate throughput should grow near-linearly with the group
//! count — the whole point of the §4 multi-group carving. This bench
//! measures exactly that on `ShardedNodeCluster`: one worker client per
//! group, hammering its group's full address range, at 1 → 8 groups.
//!
//! Output lines are `bench multigroup_scaling/...` in the house format;
//! `scripts/bench_check.sh` gates the 8-vs-1 aggregate ratio (≥ 3× with
//! tolerance headroom; the recorded run in `results/BENCH_pr7.json` shows
//! near-linear scaling). Knobs:
//!
//! * `MG_SECS` — measure window per configuration (default 2 s)
//! * `MG_LATENCY_US` — link latency in µs (default 500)
//! * `MG_GROUPS` — comma-separated group counts (default `1,2,4,8`)
//! * `MG_WARMUP_MS` — warm-up before the window opens (default 300 ms)
//!
//! Each worker times its own window: the clock starts immediately before
//! its first counted write and stops at the completion of its last one, so
//! every counted op's full latency lies inside the interval it is divided
//! by. An earlier version counted ops against the *main thread's* sleep
//! window; ops straddling the window edges (in flight when the flags
//! flipped) were charged to nobody, which inflated the many-group
//! configurations — per-group throughput at 8 groups came out *above* the
//! 1-group baseline, a physical impossibility for a wire-bound workload.

use radd_layout::GlobalAddr;
use radd_node::ShardedNodeCluster;
use radd_protocol::CoalescePolicy;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Per-group geometry: G = 2 (4 member slots), 8 rows per slot → 16 data
/// blocks per group. Small blocks: the wire *time*, not the wire volume, is
/// what bounds a group here.
const G: usize = 2;
const ROWS: u64 = 8;
const BLOCK_SIZE: usize = 64;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

struct Sample {
    groups: usize,
    total_ops: u64,
    ops_per_sec: f64,
    per_group: f64,
}

fn run_config(groups: usize, secs: u64, latency: Duration, warmup: Duration) -> Sample {
    let (mut cluster, mut extra) =
        ShardedNodeCluster::start_with(groups, G, ROWS, BLOCK_SIZE, 2, CoalescePolicy::Merge);
    cluster.set_link_latency(latency);
    // Each group's address list, resolved once: (member slot, data index).
    let cap = cluster.map().group_capacity();
    let targets: Vec<Vec<(usize, u64)>> = (0..groups as u64)
        .map(|k| {
            (k * cap..(k + 1) * cap)
                .map(|a| {
                    let t = cluster.map().locate(GlobalAddr(a)).expect("in range");
                    (t.member, t.index)
                })
                .collect()
        })
        .collect();
    let stop = Arc::new(AtomicBool::new(false));
    let go = Arc::new(AtomicBool::new(false));
    let workers: Vec<_> = extra
        .iter_mut()
        .map(|clients| clients.remove(0))
        .zip(targets)
        .map(|(mut client, addrs)| {
            let stop = Arc::clone(&stop);
            let go = Arc::clone(&go);
            std::thread::spawn(move || {
                let mut ops = 0u64;
                let mut fill = 0u8;
                // This worker's own measurement window: opened right before
                // its first counted write, closed at the completion of its
                // last. Ops seen in flight when a flag flips are excluded
                // from count *and* window alike, so the rate is unbiased.
                let mut started: Option<Instant> = None;
                let mut last_done = Instant::now();
                'run: loop {
                    for &(member, index) in &addrs {
                        if stop.load(Ordering::Relaxed) {
                            break 'run;
                        }
                        if started.is_none() && go.load(Ordering::Relaxed) {
                            started = Some(Instant::now());
                        }
                        client
                            .write(member, index, &[fill; BLOCK_SIZE])
                            .expect("healthy-path write");
                        if started.is_some() {
                            ops += 1;
                            last_done = Instant::now();
                        }
                    }
                    fill = fill.wrapping_add(1);
                }
                let window = started
                    .map(|t| last_done.saturating_duration_since(t))
                    .unwrap_or_default();
                (ops, window)
            })
        })
        .collect();
    std::thread::sleep(warmup);
    go.store(true, Ordering::Relaxed);
    std::thread::sleep(Duration::from_secs(secs));
    stop.store(true, Ordering::Relaxed);
    let per_worker: Vec<(u64, Duration)> = workers.into_iter().map(|w| w.join().unwrap()).collect();
    cluster
        .quiesce(Duration::from_secs(30))
        .expect("quiesce after measure window");
    cluster.verify_parity().expect("stripe sweep after the run");
    cluster.shutdown();
    let total_ops: u64 = per_worker.iter().map(|&(ops, _)| ops).sum();
    // Aggregate = sum of per-worker rates, each over its own window.
    let ops_per_sec: f64 = per_worker
        .iter()
        .filter(|&&(ops, w)| ops > 0 && !w.is_zero())
        .map(|&(ops, w)| ops as f64 / w.as_secs_f64())
        .sum();
    Sample {
        groups,
        total_ops,
        ops_per_sec,
        per_group: ops_per_sec / groups as f64,
    }
}

fn main() {
    let secs = env_u64("MG_SECS", 2);
    let latency = Duration::from_micros(env_u64("MG_LATENCY_US", 500));
    let warmup = Duration::from_millis(env_u64("MG_WARMUP_MS", 300));
    let groups: Vec<usize> = std::env::var("MG_GROUPS")
        .unwrap_or_else(|_| "1,2,4,8".into())
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    let record = std::env::args().any(|a| a == "--record");

    println!(
        "cross-group scaling: G = {G}, {ROWS} rows/slot, {BLOCK_SIZE} B blocks, \
         link latency {} us, {secs} s per config",
        latency.as_micros()
    );
    let mut samples = Vec::new();
    for &n in &groups {
        let s = run_config(n, secs, latency, warmup);
        println!(
            "bench multigroup_scaling/groups={} total_ops={} ops_per_sec={:.0} per_group={:.0}",
            s.groups, s.total_ops, s.ops_per_sec, s.per_group
        );
        samples.push(s);
    }
    if let (Some(first), Some(last)) = (samples.first(), samples.last()) {
        if samples.len() >= 2 && first.ops_per_sec > 0.0 {
            let ratio = last.ops_per_sec / first.ops_per_sec;
            println!(
                "bench multigroup_scaling/scaling_{}v{} ratio={:.2}",
                last.groups, first.groups, ratio
            );
            let ideal = last.groups as f64 / first.groups as f64;
            println!(
                "aggregate scaling {}→{} groups: {ratio:.2}x of an ideal {ideal:.0}x \
                 ({:.0}% parallel efficiency)",
                first.groups,
                last.groups,
                100.0 * ratio / ideal
            );
        }
    }
    if record {
        let mut rows = String::new();
        for s in &samples {
            rows.push_str(&format!(
                "    \"groups={}\": {{ \"total_ops\": {}, \"ops_per_sec\": {:.0}, \"per_group\": {:.0} }},\n",
                s.groups, s.total_ops, s.ops_per_sec, s.per_group
            ));
        }
        let ratio = match (samples.first(), samples.last()) {
            (Some(f), Some(l)) if f.ops_per_sec > 0.0 => l.ops_per_sec / f.ops_per_sec,
            _ => 0.0,
        };
        let json = format!(
            "{{\n  \"bench\": \"multigroup_scaling\",\n  \"description\": \"Cross-group throughput on the threaded runtime (ShardedNodeCluster): one closed-loop client per group, G = {G}, {ROWS} rows/slot, {BLOCK_SIZE} B blocks, {} us link latency, {secs} s per configuration. Aggregate writes/s vs group count. Regenerate with: cargo run -p radd-bench --release --bin multigroup_scaling -- --record\",\n  \"throughput\": {{\n{}  }},\n  \"headline\": {{ \"scaling_8v1\": {ratio:.2} }}\n}}\n",
            latency.as_micros(),
            rows.trim_end_matches(",\n").to_string() + "\n",
        );
        std::fs::create_dir_all("results").expect("results dir");
        std::fs::write("results/BENCH_pr7.json", json).expect("write results/BENCH_pr7.json");
        println!("recorded results/BENCH_pr7.json");
    }
}
