//! Regenerate Figure 6: mean time to data loss across the four Table 2
//! environments.

use radd_bench::experiments::reliability::figure6;
use radd_bench::report::{fmt_f, Table};

fn main() {
    let trials = 150;
    let rows = figure6(trials, 42);
    for r in &rows {
        let mut t = Table::new(
            format!("Figure 6 — MTTF in years, {}", r.scheme),
            &["environment", "paper", "our model", "Monte Carlo"],
        );
        for c in &r.cells {
            let paper = if c.paper_years >= 100.0 {
                format!(">{}", c.paper_years as u64)
            } else {
                fmt_f(c.paper_years)
            };
            t.row(&[
                c.environment.to_string(),
                paper,
                fmt_f(c.model_years),
                c.monte_carlo_years.map_or_else(|| "—".into(), fmt_f),
            ]);
        }
        t.print();
    }
    println!(
        "\nModel notes: loss rates are derived per event (the memo's printed\n\
         formula (4) does not reproduce its own Figure 6); a disaster's data\n\
         stays vulnerable only until the spare blocks absorb the lost site.\n\
         The qualitative claims all hold — see EXPERIMENTS.md."
    );
    if let Ok(path) = radd_bench::report::dump_json("fig6_mttf", &rows) {
        println!("results written to {path}");
    }
}
