//! Run every experiment in paper order and dump all JSON results.

use std::process::Command;

const BINARIES: [&str; 12] = [
    "fig1_layout",
    "sec2_striping",
    "fig2_space",
    "fig3_opcounts",
    "fig4_costs",
    "fig5_mttu",
    "fig6_mttf",
    "fig7_summary",
    "sec74_bandwidth",
    "sec34_recovery",
    "sec6_commit",
    "sec72_spares",
];

fn main() {
    // Prefer in-process execution? Each binary is cheap and isolated;
    // spawning keeps their outputs exactly as users see them individually.
    let me = std::env::current_exe().expect("own path");
    let dir = me.parent().expect("bin dir");
    let mut failures = Vec::new();
    for bin in BINARIES {
        println!("\n##### {bin} #####");
        let path = dir.join(bin);
        let status = if path.exists() {
            Command::new(&path).status()
        } else {
            // Fall back to cargo when running via `cargo run` without the
            // siblings built yet.
            Command::new("cargo")
                .args([
                    "run",
                    "--quiet",
                    "--release",
                    "-p",
                    "radd-bench",
                    "--bin",
                    bin,
                ])
                .status()
        };
        match status {
            Ok(s) if s.success() => {}
            other => {
                eprintln!("{bin} failed: {other:?}");
                failures.push(bin);
            }
        }
    }
    if failures.is_empty() {
        println!("\nAll experiments completed; JSON results are under ./results/");
    } else {
        eprintln!("\nFailed experiments: {failures:?}");
        std::process::exit(1);
    }
}
