//! Regenerate the §7.4 network-bandwidth analysis.

use radd_bench::experiments::bandwidth::{bandwidth_ratio, degraded_load};
use radd_bench::report::{fmt_f, Table};

fn main() {
    let bw = bandwidth_ratio(400, 42).expect("workload failed");
    let mut t = Table::new(
        "§7.4 — network vs disk bandwidth (4 KB pages, 100 B records, 4× absorption)",
        &["encoding", "network bytes", "disk bytes", "ratio", "paper"],
    );
    t.row(&[
        "change masks".into(),
        bw.masked_network_bytes.to_string(),
        bw.disk_bytes.to_string(),
        format!("1/{:.0}", 1.0 / bw.masked_ratio),
        "~1/20".into(),
    ]);
    t.row(&[
        "full blocks (ablation)".into(),
        bw.full_block_network_bytes.to_string(),
        bw.disk_bytes.to_string(),
        format!("1/{:.1}", 1.0 / bw.full_block_ratio),
        "—".into(),
    ]);
    t.row(&[
        "hot standby (logical log)".into(),
        bw.hot_standby_bytes.to_string(),
        bw.disk_bytes.to_string(),
        format!(
            "1/{:.0}",
            bw.disk_bytes as f64 / bw.hot_standby_bytes as f64
        ),
        "≈ RADD".into(),
    ]);
    t.print();
    println!(
        "RADD masks vs hot standby: {:.2}× — the paper's \"a RADD should\n\
         approximate the bandwidth requirements of a hot standby\".",
        bw.radd_vs_standby
    );

    let dl = degraded_load(8000, 43).expect("workload failed");
    let mut t = Table::new(
        "§7.4 — load increase during a single site failure (50 % reads)",
        &["condition", "physical ops per logical op"],
    );
    t.row(&["all sites up".into(), fmt_f(dl.healthy_ops_per_op)]);
    t.row(&["one site down".into(), fmt_f(dl.degraded_ops_per_op)]);
    t.row(&[
        "total increase".into(),
        format!("{:.0} %", (dl.increase_factor - 1.0) * 100.0),
    ]);
    t.row(&[
        "read amplification".into(),
        format!("{:.2}× (paper: ~2×)", dl.read_amplification),
    ]);
    t.row(&[
        "paper-style aggregate".into(),
        format!(
            "+{:.0} % (paper: +50 %)",
            (dl.paper_style_increase - 1.0) * 100.0
        ),
    ]);
    t.print();
    println!(
        "\n(The paper approximates the down-site read fraction as 1/G and its\n\
         cost as G reads, giving 2× per read and +50 % aggregate; exact\n\
         accounting over G+2 = 10 sites gives 1.7× and +35 %.)"
    );
    let _ = radd_bench::report::dump_json("sec74_bandwidth", &(bw, dl));
}
