//! Regenerate the §6 commit-protocol comparison.

use radd_bench::experiments::commit::section6;
use radd_bench::report::Table;

fn main() {
    let rows = section6(&[1, 2, 4, 8, 16]);
    let mut t = Table::new(
        "§6 — commit overhead: two-phase commit vs RADD done=prepared",
        &[
            "slaves",
            "2PC msgs",
            "2PC forces",
            "2PC rounds",
            "RADD msgs",
            "RADD forces",
            "RADD rounds",
        ],
    );
    for r in &rows {
        t.row(&[
            r.slaves.to_string(),
            r.two_pc_messages.to_string(),
            r.two_pc_forces.to_string(),
            r.two_pc_rounds.to_string(),
            r.radd_messages.to_string(),
            r.radd_forces.to_string(),
            r.radd_rounds.to_string(),
        ]);
    }
    t.print();
    println!(
        "\nPreconditions (paper §6): reliable parity-update delivery before\n\
         `done`, and single failures only — otherwise fall back to 2PC."
    );
    let _ = radd_bench::report::dump_json("sec6_commit", &rows);
}
