//! Regenerate Figure 1: the logical layout of disk blocks.

fn main() {
    print!("{}", radd_bench::experiments::layout::figure1());
}
