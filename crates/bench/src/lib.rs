//! # radd-bench — the harness that regenerates every table and figure
//!
//! One binary per exhibit (run with `cargo run -p radd-bench --release
//! --bin <name>`), all built on the experiment drivers in [`experiments`]:
//!
//! | binary | paper exhibit |
//! |---|---|
//! | `fig1_layout` | Figure 1 — block layout, G = 4 |
//! | `fig2_space` | Figure 2 — space overheads |
//! | `fig3_opcounts` | Figure 3 — operation-count formulas |
//! | `fig4_costs` | Figure 4 — costs in msec |
//! | `fig5_mttu` | Figure 5 — MTTU (formula + Monte Carlo) |
//! | `fig6_mttf` | Figure 6 — MTTF across Table 2 environments |
//! | `fig7_summary` | Figure 7 — the closing comparison |
//! | `sec74_bandwidth` | §7.4 — network/disk bandwidth ratio |
//! | `sec34_recovery` | §3.4 — WAL vs no-overwrite recovery |
//! | `sec6_commit` | §6 — 2PC vs "done = prepared" |
//! | `all_experiments` | everything above, plus a JSON dump |
//!
//! Criterion microbenches live in `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod report;
