//! The durable storage engine's hot paths: WAL group commit (the cost a
//! site pays per acknowledged batch under the WAL rule), recovery-on-open
//! (the §3.4 restart cost, proportional to the committed log suffix) and
//! the checkpoint that bounds it. Real files under the OS temp dir —
//! these numbers include the fsync, which is the point.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use radd_protocol::Blocks;
use radd_storage::DiskBlocks;
use std::hint::black_box;
use std::path::PathBuf;

const ROWS: u64 = 100;
const BLOCK: usize = 4096;

fn scratch(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("radd-bench-disk-{label}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn bench_disk(c: &mut Criterion) {
    let mut group = c.benchmark_group("disk_commit");

    // One acknowledged single-block write: a data-record append, a meta
    // record, a commit marker and one fdatasync.
    group.throughput(Throughput::Bytes(BLOCK as u64));
    group.bench_function("commit_1x4k", |bencher| {
        let dir = scratch("commit1");
        let mut d = DiskBlocks::open(&dir, ROWS, BLOCK).expect("open");
        let mut fill = 0u8;
        bencher.iter(|| {
            fill = fill.wrapping_add(1);
            d.write_owned(0, bytes::Bytes::from(vec![fill; BLOCK]))
                .expect("write");
            black_box(d.commit(|| vec![fill; 32]).expect("commit"));
        });
        drop(d);
        let _ = std::fs::remove_dir_all(&dir);
    });

    // Group commit: eight rows ride one log append and one fdatasync —
    // the batching the WAL rule makes safe.
    group.throughput(Throughput::Bytes((8 * BLOCK) as u64));
    group.bench_function("commit_8x4k_grouped", |bencher| {
        let dir = scratch("commit8");
        let mut d = DiskBlocks::open(&dir, ROWS, BLOCK).expect("open");
        let mut fill = 0u8;
        bencher.iter(|| {
            fill = fill.wrapping_add(1);
            for row in 0..8u64 {
                d.write_owned(row, bytes::Bytes::from(vec![fill; BLOCK]))
                    .expect("write");
            }
            black_box(d.commit(|| vec![fill; 32]).expect("commit"));
        });
        drop(d);
        let _ = std::fs::remove_dir_all(&dir);
    });

    // Restart cost: reopen a store whose log holds 64 committed
    // single-block batches. Open scans, checksums and replays the whole
    // committed suffix — the §3.4 recovery path a KillRestart exercises.
    group.throughput(Throughput::Bytes((64 * BLOCK) as u64));
    group.bench_function("recover_open_64x4k_log", |bencher| {
        let dir = scratch("recover");
        {
            let mut d = DiskBlocks::open(&dir, ROWS, BLOCK).expect("open");
            for i in 0..64u64 {
                d.write_owned(i % ROWS, bytes::Bytes::from(vec![i as u8; BLOCK]))
                    .expect("write");
                d.commit(|| vec![i as u8; 32]).expect("commit");
            }
        }
        bencher.iter(|| {
            black_box(DiskBlocks::open(&dir, ROWS, BLOCK).expect("reopen"));
        });
        let _ = std::fs::remove_dir_all(&dir);
    });

    // The checkpoint that truncates the log: flush every dirty row to the
    // block file, fsync it, then reset the WAL. Measured over a fresh
    // 16-row dirty set each iteration.
    group.throughput(Throughput::Bytes((16 * BLOCK) as u64));
    group.bench_function("checkpoint_16x4k", |bencher| {
        let dir = scratch("checkpoint");
        let mut d = DiskBlocks::open(&dir, ROWS, BLOCK).expect("open");
        let mut fill = 0u8;
        bencher.iter(|| {
            fill = fill.wrapping_add(1);
            for row in 0..16u64 {
                d.write_owned(row, bytes::Bytes::from(vec![fill; BLOCK]))
                    .expect("write");
            }
            d.commit(|| vec![fill; 32]).expect("commit");
            d.checkpoint().expect("checkpoint");
            black_box(d.wal_bytes());
        });
        drop(d);
        let _ = std::fs::remove_dir_all(&dir);
    });

    group.finish();
}

criterion_group!(benches, bench_disk);
criterion_main!(benches);
