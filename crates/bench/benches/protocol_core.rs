//! Hot paths of the sans-IO protocol machines, with no interpreter around
//! them: the no-failure write (client machine + owner site + parity site)
//! and the parity site's masked read-modify-write. This is the per-block
//! protocol overhead every runtime pays before any disk or network cost.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use radd_obs::{ClusterObs, MachineObs};
use radd_parity::{ChangeMask, Uid};
use radd_protocol::obs::ObsEvent;
use radd_protocol::{
    ClientErr, ClientIo, ClientMachine, Dest, Effect, MemBlocks, Msg, SiteMachine, SparePolicy,
};
use std::collections::VecDeque;
use std::hint::black_box;

const G: usize = 8;
const ROWS: u64 = 100;
const BLOCK: usize = 4096;

/// Minimal synchronous interpreter: machines + in-memory blocks, nothing
/// else. Effects other than sends are discarded unpriced. With `obs` set,
/// every effect is also tapped into the per-machine observability layer —
/// the `_obs` bench rows measure exactly that tap's overhead.
struct Net {
    sites: Vec<(SiteMachine, MemBlocks)>,
    obs: Option<ClusterObs>,
}

impl Net {
    fn new(observed: bool) -> Net {
        Net {
            sites: (0..G + 2)
                .map(|j| {
                    (
                        SiteMachine::new(j, G, ROWS, BLOCK),
                        MemBlocks::new(ROWS, BLOCK),
                    )
                })
                .collect(),
            obs: observed.then(|| ClusterObs::new(G + 2)),
        }
    }

    fn deliver(&mut self, dst: usize, src: usize, msg: Msg) -> Option<Msg> {
        let mut queue = VecDeque::new();
        queue.push_back((dst, src, msg));
        let mut reply = None;
        while let Some((d, s, m)) = queue.pop_front() {
            let (machine, blocks) = &mut self.sites[d];
            let mut out = Vec::new();
            machine.handle(blocks, s, m, &mut out);
            if let Some(obs) = &mut self.obs {
                for eff in &out {
                    obs.site(d).effect(eff);
                }
            }
            for eff in out {
                if let Effect::Send { to, msg: sm, .. } = eff {
                    match to {
                        Dest::Peer(0) => reply = Some(sm),
                        Dest::Peer(p) => queue.push_back((p - 1, d + 1, sm)),
                        Dest::Site(t) => queue.push_back((t, d + 1, sm)),
                    }
                }
            }
        }
        reply
    }
}

impl ClientIo for Net {
    fn exchange(&mut self, site: usize, msg: Msg, _background: bool) -> Result<Msg, ClientErr> {
        if let Some(obs) = &mut self.obs {
            obs.client().event(ObsEvent::Send {
                to: Dest::Site(site),
                kind: msg.kind(),
                tag: msg.tag(),
                wire: msg.wire_size() as u64,
                retransmit: false,
                replay: false,
            });
        }
        self.deliver(site, 0, msg)
            .ok_or(ClientErr::Unavailable { site })
    }
}

fn bench_protocol(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol_core");
    group.throughput(Throughput::Bytes(BLOCK as u64));

    // The full W1–W4 healthy write: client request, owner's local write +
    // change-mask diff, parity update to the parity site, masked apply,
    // acks back. One data block flows per iteration.
    group.bench_function("healthy_write_g8_4k", |bencher| {
        let mut net = Net::new(false);
        let mut client =
            ClientMachine::new(G, ROWS, BLOCK, SparePolicy::OnePerParity, true, u16::MAX);
        let mut fill = 0u8;
        bencher.iter(|| {
            fill = fill.wrapping_add(1);
            client
                .write(&mut net, black_box(3), black_box(0), &[fill; BLOCK])
                .unwrap();
        });
    });

    // The same write with the observability tap live on every machine:
    // dense counters plus a flight-ring record per effect. The gate in
    // scripts/bench_check.sh holds this row within OBS_TOLERANCE (5%) of
    // the plain row above — the tap must stay invisible at block scale.
    group.bench_function("healthy_write_g8_4k_obs", |bencher| {
        let mut net = Net::new(true);
        let mut client =
            ClientMachine::new(G, ROWS, BLOCK, SparePolicy::OnePerParity, true, u16::MAX);
        let mut fill = 0u8;
        bencher.iter(|| {
            fill = fill.wrapping_add(1);
            client
                .write(&mut net, black_box(3), black_box(0), &[fill; BLOCK])
                .unwrap();
        });
    });

    // The parity site's half alone: decode the wire mask, read-modify-write
    // the parity block, bump the UID array, ack. Fresh UIDs each iteration
    // so the idempotence guard never short-circuits the apply.
    group.bench_function("parity_apply_g8_4k", |bencher| {
        let mut machine = SiteMachine::new(1, G, ROWS, BLOCK); // parity site of row 0
        let mut blocks = MemBlocks::new(ROWS, BLOCK);
        let old = vec![0u8; BLOCK];
        let new = vec![0xA5u8; BLOCK];
        let mask_wire = ChangeMask::diff(&old, &new).encode();
        let mut raw = 0u64;
        bencher.iter(|| {
            raw += 1;
            let mut out = Vec::new();
            machine.handle(
                &mut blocks,
                3,
                Msg::ParityUpdate {
                    row: 0,
                    mask_wire: black_box(mask_wire.clone()),
                    uid: Uid::from_raw(raw),
                    from_site: 2,
                    tag: raw,
                },
                &mut out,
            );
            black_box(out);
        });
    });

    // The masked apply with the effect tap live.
    group.bench_function("parity_apply_g8_4k_obs", |bencher| {
        let mut machine = SiteMachine::new(1, G, ROWS, BLOCK);
        let mut blocks = MemBlocks::new(ROWS, BLOCK);
        let mut obs = MachineObs::new();
        let old = vec![0u8; BLOCK];
        let new = vec![0xA5u8; BLOCK];
        let mask_wire = ChangeMask::diff(&old, &new).encode();
        let mut raw = 0u64;
        bencher.iter(|| {
            raw += 1;
            let mut out = Vec::new();
            machine.handle(
                &mut blocks,
                3,
                Msg::ParityUpdate {
                    row: 0,
                    mask_wire: black_box(mask_wire.clone()),
                    uid: Uid::from_raw(raw),
                    from_site: 2,
                    tag: raw,
                },
                &mut out,
            );
            for eff in &out {
                obs.effect(eff);
            }
            black_box(out);
        });
    });

    group.finish();
    export_obs_snapshot();
}

/// Drive a short observed workload and export its obs snapshot — JSON to
/// `target/obs_bench_snapshot.json`, a text summary to stdout — so every
/// bench run leaves a sample of what the observability layer sees (and
/// `scripts/bench_check.sh` can sanity-check the export end to end).
fn export_obs_snapshot() {
    let mut net = Net::new(true);
    let mut client = ClientMachine::new(G, ROWS, BLOCK, SparePolicy::OnePerParity, true, u16::MAX);
    for i in 0..100u8 {
        client
            .write(&mut net, (i as usize % G) + 2, 0, &[i; BLOCK])
            .unwrap();
    }
    let snap = net.obs.expect("observed net").snapshot();
    // Anchor on the manifest dir: cargo runs benches with the package as
    // cwd, but the artifact belongs in the workspace target dir.
    let path = std::path::Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
        .join("target/obs_bench_snapshot.json");
    match std::fs::write(&path, snap.to_json()) {
        Ok(()) => println!(
            "obs snapshot: {} machines -> {}",
            snap.machines.len(),
            path.display()
        ),
        Err(e) => println!("obs snapshot: export failed: {e}"),
    }
    print!("{}", snap.render_text(2));
}

criterion_group!(benches, bench_protocol);
criterion_main!(benches);
