//! Throughput of the XOR primitives behind formulas (1) and (2).
//!
//! `xor_in_place` dispatches at runtime to the widest XOR kernel the CPU
//! offers (AVX2 → SSE2 → scalar on x86-64, NEON on aarch64); the
//! `xor2_scalar/*` rows pin the portable u64 reference so the kernel
//! speedup is visible in one run. `reconstruct_g8_4k` is the whole-stripe
//! fold a degraded read performs — one multi-way `xor_fold` pass instead
//! of `G + 1` two-way passes.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use radd_parity::{kernels, xor_fold, xor_in_place, xor_many};
use std::hint::black_box;

fn bench_xor(c: &mut Criterion) {
    let mut group = c.benchmark_group("parity_xor");
    eprintln!("# active XOR kernel: {}", kernels::active_kernel_name());
    for &size in &[512usize, 4096, 65_536] {
        let a: Vec<u8> = (0..size).map(|i| i as u8).collect();
        let b: Vec<u8> = (0..size).map(|i| (i * 7) as u8).collect();
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(format!("xor_in_place/{size}"), |bencher| {
            let mut dst = a.clone();
            bencher.iter(|| {
                xor_in_place(black_box(&mut dst), black_box(&b));
            });
        });
        group.bench_function(format!("xor2_scalar/{size}"), |bencher| {
            let mut dst = a.clone();
            bencher.iter(|| {
                kernels::xor2_scalar(black_box(&mut dst), black_box(&b));
            });
        });
    }
    // Reconstruction of one 4 KB block from a G = 8 stripe.
    let stripe: Vec<Vec<u8>> = (0..9u8).map(|i| vec![i.wrapping_mul(31); 4096]).collect();
    group.throughput(Throughput::Bytes(9 * 4096));
    group.bench_function("reconstruct_g8_4k", |bencher| {
        bencher.iter(|| xor_many(stripe.iter().map(|b| black_box(b.as_slice()))).unwrap());
    });
    // The same stripe folded serially with the scalar kernel: the baseline
    // `reconstruct_g8_4k` improves over.
    group.bench_function("reconstruct_g8_4k_scalar_serial", |bencher| {
        bencher.iter(|| {
            let mut acc = stripe[0].clone();
            for b in &stripe[1..] {
                kernels::xor2_scalar(black_box(&mut acc), black_box(b));
            }
            acc
        });
    });
    // Multi-way fold in isolation (no accumulator clone).
    group.bench_function("xor_fold_8way_4k", |bencher| {
        let mut acc = stripe[0].clone();
        let views: Vec<&[u8]> = stripe[1..].iter().map(|b| b.as_slice()).collect();
        bencher.iter(|| {
            xor_fold(black_box(&mut acc), black_box(&views));
        });
    });
    group.finish();
}

criterion_group!(benches, bench_xor);
criterion_main!(benches);
