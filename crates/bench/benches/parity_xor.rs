//! Throughput of the XOR primitives behind formulas (1) and (2).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use radd_parity::{xor_in_place, xor_many};
use std::hint::black_box;

fn bench_xor(c: &mut Criterion) {
    let mut group = c.benchmark_group("parity_xor");
    for &size in &[512usize, 4096, 65_536] {
        let a: Vec<u8> = (0..size).map(|i| i as u8).collect();
        let b: Vec<u8> = (0..size).map(|i| (i * 7) as u8).collect();
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(format!("xor_in_place/{size}"), |bencher| {
            let mut dst = a.clone();
            bencher.iter(|| {
                xor_in_place(black_box(&mut dst), black_box(&b));
            });
        });
    }
    // Reconstruction of one 4 KB block from a G = 8 stripe.
    let stripe: Vec<Vec<u8>> = (0..9u8).map(|i| vec![i.wrapping_mul(31); 4096]).collect();
    group.throughput(Throughput::Bytes(9 * 4096));
    group.bench_function("reconstruct_g8_4k", |bencher| {
        bencher.iter(|| xor_many(stripe.iter().map(|b| black_box(b.as_slice()))).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_xor);
criterion_main!(benches);
