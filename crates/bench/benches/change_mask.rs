//! Change-mask diff/encode/apply — the per-write CPU cost of step W3.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use radd_parity::ChangeMask;
use std::hint::black_box;

fn page_pair(edit_bytes: usize) -> (Vec<u8>, Vec<u8>) {
    let old: Vec<u8> = (0..4096).map(|i| (i % 251) as u8).collect();
    let mut new = old.clone();
    for b in &mut new[1000..1000 + edit_bytes] {
        *b ^= 0xA5;
    }
    (old, new)
}

fn bench_mask(c: &mut Criterion) {
    let mut group = c.benchmark_group("change_mask");
    for &edit in &[100usize, 1024, 4096 - 1000] {
        let (old, new) = page_pair(edit);
        group.throughput(Throughput::Bytes(4096));
        group.bench_function(format!("diff/edit{edit}"), |b| {
            b.iter(|| ChangeMask::diff(black_box(&old), black_box(&new)));
        });
        let mask = ChangeMask::diff(&old, &new);
        group.bench_function(format!("encode/edit{edit}"), |b| {
            b.iter(|| black_box(&mask).encode());
        });
        let wire = mask.encode();
        group.bench_function(format!("decode_apply/edit{edit}"), |b| {
            let mut target = old.clone();
            b.iter(|| {
                let m = ChangeMask::decode(black_box(&wire)).unwrap();
                m.apply(&mut target);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mask);
criterion_main!(benches);
