//! Lock-table throughput (§3.3 dynamic locking).

use criterion::{criterion_group, criterion_main, Criterion};
use radd_core::{LockKind, LockManager};
use std::hint::black_box;

fn bench_locks(c: &mut Criterion) {
    c.bench_function("locks/exclusive_lock_unlock", |b| {
        let mut lm = LockManager::new();
        let mut row = 0u64;
        b.iter(|| {
            row = (row + 1) % 1024;
            lm.try_lock(0, black_box(row), LockKind::Exclusive, 1)
                .unwrap();
            lm.unlock(0, row, 1);
        });
    });
    c.bench_function("locks/shared_fanin_8", |b| {
        let mut lm = LockManager::new();
        b.iter(|| {
            for owner in 0..8 {
                lm.try_lock(0, 5, LockKind::Shared, owner).unwrap();
            }
            lm.release_all_benchmark_helper();
        });
    });
    c.bench_function("locks/release_all_100", |b| {
        b.iter(|| {
            let mut lm = LockManager::new();
            for row in 0..100u64 {
                lm.try_lock(0, row, LockKind::Exclusive, 7).unwrap();
            }
            lm.release_all(7);
            black_box(lm.locked_blocks())
        });
    });
}

trait BenchExt {
    fn release_all_benchmark_helper(&mut self);
}

impl BenchExt for LockManager {
    fn release_all_benchmark_helper(&mut self) {
        for owner in 0..8 {
            self.unlock(0, 5, owner);
        }
    }
}

criterion_group!(benches, bench_locks);
criterion_main!(benches);
