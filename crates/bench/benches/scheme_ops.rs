//! End-to-end scheme operation throughput: one RADD write (W1–W4 with
//! synchronous parity) and one degraded read (reconstruction), 4 KB blocks.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use radd_core::{Actor, RaddCluster, RaddConfig};
use std::hint::black_box;

fn cluster() -> RaddCluster {
    let mut cfg = RaddConfig::paper_g8();
    cfg.block_size = 4096;
    RaddCluster::new(cfg).unwrap()
}

fn bench_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("radd_ops");
    group.throughput(Throughput::Bytes(4096));

    group.bench_function("write_w1_w4", |b| {
        let mut cl = cluster();
        let data = vec![0xABu8; 4096];
        let mut i = 0u64;
        let cap = cl.data_capacity(0);
        b.iter(|| {
            i = (i + 1) % cap;
            cl.write(Actor::Site(0), 0, black_box(i), &data).unwrap();
        });
    });

    group.bench_function("healthy_read", |b| {
        let mut cl = cluster();
        let data = vec![0xCDu8; 4096];
        cl.write(Actor::Site(0), 0, 0, &data).unwrap();
        b.iter(|| black_box(cl.read(Actor::Site(0), 0, 0).unwrap().0));
    });

    group.bench_function("degraded_read_reconstruct_g8", |b| {
        let mut cfg = RaddConfig::paper_g8();
        cfg.block_size = 4096;
        cfg.spare_policy = radd_core::SparePolicy::None; // force reconstruction
        let mut cl = RaddCluster::new(cfg).unwrap();
        let data = vec![0xEFu8; 4096];
        cl.write(Actor::Site(1), 1, 0, &data).unwrap();
        cl.fail_site(1);
        b.iter(|| black_box(cl.read(Actor::Client, 1, 0).unwrap().0));
    });

    group.finish();
}

criterion_group!(benches, bench_ops);
criterion_main!(benches);
