//! Layout addressing math — on every I/O's fast path.

use criterion::{criterion_group, criterion_main, Criterion};
use radd_layout::Geometry;
use std::hint::black_box;

fn bench_layout(c: &mut Criterion) {
    let geo = Geometry::paper_g8(1_000_000);
    c.bench_function("layout/data_to_physical", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7) % 100_000;
            black_box(geo.data_to_physical(black_box((i % 10) as usize), black_box(i)))
        });
    });
    c.bench_function("layout/physical_to_data", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 13) % 1_000_000;
            black_box(geo.physical_to_data(black_box((k % 10) as usize), black_box(k)))
        });
    });
    c.bench_function("layout/role", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 1) % 1_000_000;
            black_box(geo.role(black_box(3), black_box(k)))
        });
    });
}

criterion_group!(benches, bench_layout);
criterion_main!(benches);
