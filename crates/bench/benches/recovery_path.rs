//! The client-driven recovery paths of §3.2/§3.3, machine-level: a full
//! validated reconstruction (batched `BlockRead` fan-out + one multi-way
//! XOR fold) and the degraded-write → spare-drain cycle behind a site
//! revival. Same minimal synchronous interpreter as `protocol_core` — no
//! disk, no network, so the numbers isolate protocol + parity cost.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use radd_protocol::{
    ClientErr, ClientIo, ClientMachine, Dest, Effect, Msg, SiteMachine, SparePolicy,
};
use radd_protocol::{MemBlocks, SiteState};
use std::collections::VecDeque;
use std::hint::black_box;

const G: usize = 8;
const ROWS: u64 = 100;
const BLOCK: usize = 4096;

/// Minimal synchronous interpreter: machines + in-memory blocks.
struct Net {
    sites: Vec<(SiteMachine, MemBlocks)>,
}

impl Net {
    fn new() -> Net {
        Net {
            sites: (0..G + 2)
                .map(|j| {
                    (
                        SiteMachine::new(j, G, ROWS, BLOCK),
                        MemBlocks::new(ROWS, BLOCK),
                    )
                })
                .collect(),
        }
    }

    fn deliver(&mut self, dst: usize, src: usize, msg: Msg) -> Option<Msg> {
        let mut queue = VecDeque::new();
        queue.push_back((dst, src, msg));
        let mut reply = None;
        while let Some((d, s, m)) = queue.pop_front() {
            let (machine, blocks) = &mut self.sites[d];
            let mut out = Vec::new();
            machine.handle(blocks, s, m, &mut out);
            for eff in out {
                if let Effect::Send { to, msg: sm, .. } = eff {
                    match to {
                        Dest::Peer(0) => reply = Some(sm),
                        Dest::Peer(p) => queue.push_back((p - 1, d + 1, sm)),
                        Dest::Site(t) => queue.push_back((t, d + 1, sm)),
                    }
                }
            }
        }
        reply
    }
}

impl ClientIo for Net {
    fn exchange(&mut self, site: usize, msg: Msg, _background: bool) -> Result<Msg, ClientErr> {
        self.deliver(site, 0, msg)
            .ok_or(ClientErr::Unavailable { site })
    }
}

fn bench_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("recovery_path");

    // §3.3 validated reconstruction of one block: G + 1 batched block
    // reads, UID validation against the parity array, one G-way XOR fold.
    group.throughput(Throughput::Bytes(((G + 1) * BLOCK) as u64));
    group.bench_function("reconstruct_block_g8_4k", |bencher| {
        let mut net = Net::new();
        let mut client =
            ClientMachine::new(G, ROWS, BLOCK, SparePolicy::OnePerParity, true, u16::MAX);
        for s in 0..G + 2 {
            client.write(&mut net, s, 0, &[s as u8 + 1; BLOCK]).unwrap();
        }
        let owner = 3usize;
        let row = client.geometry().data_to_physical(owner, 0);
        bencher.iter(|| {
            let (data, _) = client
                .reconstruct(&mut net, black_box(owner), black_box(row), true)
                .unwrap();
            black_box(data);
        });
    });

    // One failure cycle over 8 rows: down-site writes absorbed by spares
    // (W1' + W3'), then the revival drain — probe wave, restore wave,
    // release wave — back to fully healthy.
    group.throughput(Throughput::Bytes((8 * BLOCK) as u64));
    group.bench_function("fail_write8_recover_g8_4k", |bencher| {
        let mut net = Net::new();
        let mut client =
            ClientMachine::new(G, ROWS, BLOCK, SparePolicy::OnePerParity, true, u16::MAX);
        for s in 0..G + 2 {
            for idx in 0..8u64 {
                client.write(&mut net, s, idx, &[0xB0; BLOCK]).unwrap();
            }
        }
        let victim = 1usize;
        let mut fill = 0u8;
        bencher.iter(|| {
            fill = fill.wrapping_add(1);
            net.sites[victim].0.set_state(SiteState::Down);
            client.set_down(victim, true);
            for idx in 0..8u64 {
                client.write(&mut net, victim, idx, &[fill; BLOCK]).unwrap();
            }
            net.sites[victim].0.set_state(SiteState::Recovering);
            let drained = client.recover(&mut net, victim).unwrap();
            assert_eq!(drained, 8);
            net.sites[victim].0.set_state(SiteState::Up);
            client.set_down(victim, false);
        });
    });

    group.finish();
}

criterion_group!(benches, bench_recovery);
criterion_main!(benches);
