//! The wire protocol between sites (and the client).
//!
//! Every request carries a `tag` that the reply echoes, so endpoints can
//! match responses without blocking their event loops.

use radd_parity::Uid;

/// Protocol messages. Addresses are endpoint ids (`0` = client, site `j`
/// = `j + 1`).
#[derive(Debug, Clone)]
pub enum Msg {
    // ------------------------------------------------ client → owner site
    /// Read the site's `index`-th data block.
    Read {
        /// Site-local data index.
        index: u64,
        /// Request tag.
        tag: u64,
    },
    /// Write the site's `index`-th data block (W1–W4; the site replies
    /// only after its parity update is acknowledged).
    Write {
        /// Site-local data index.
        index: u64,
        /// New contents.
        data: Vec<u8>,
        /// Request tag.
        tag: u64,
    },

    // ----------------------------------------------------- between sites
    /// Step W3: apply a change mask to the parity block of `row` and
    /// record `uid` in slot `from_site` (step W4). Acked.
    ParityUpdate {
        /// Physical row.
        row: u64,
        /// Encoded [`ChangeMask`](radd_parity::ChangeMask).
        mask_wire: Vec<u8>,
        /// The writer's new UID.
        uid: Uid,
        /// The writing site.
        from_site: usize,
        /// Request tag.
        tag: u64,
    },

    // --------------------------------------- client-driven degraded paths
    /// Probe the spare block of `row`: validity, stand-in owner, contents.
    SpareProbe {
        /// Physical row.
        row: u64,
        /// Request tag.
        tag: u64,
    },
    /// Install reconstructed contents into the spare block of `row` on
    /// behalf of `for_site`.
    SpareInstall {
        /// Physical row.
        row: u64,
        /// Whose block the spare stands in for.
        for_site: usize,
        /// Contents.
        data: Vec<u8>,
        /// UID consistent with the parity array.
        uid: Uid,
        /// Request tag.
        tag: u64,
    },
    /// Read block `row` for reconstruction: returns contents, the stored
    /// UID, and (if this site is the row's parity site) the UID array.
    BlockRead {
        /// Physical row.
        row: u64,
        /// Request tag.
        tag: u64,
    },
    /// Recovery: list the rows whose spare here stands in for `for_site`.
    SpareDrainList {
        /// The recovering site.
        for_site: usize,
        /// Request tag.
        tag: u64,
    },
    /// Recovery: hand the spare contents of `row` to the recovering site
    /// and invalidate the slot.
    SpareTake {
        /// Physical row.
        row: u64,
        /// Request tag.
        tag: u64,
    },
    /// Recovery: write `row` locally with the given contents and UID (the
    /// drained spare landing at the restored site).
    RestoreBlock {
        /// Physical row.
        row: u64,
        /// Contents.
        data: Vec<u8>,
        /// UID to store with the block.
        uid: Uid,
        /// Request tag.
        tag: u64,
    },

    // ------------------------------------------------------------ replies
    /// Successful read.
    ReadOk {
        /// Echoed tag.
        tag: u64,
        /// Block contents.
        data: Vec<u8>,
    },
    /// Successful write (parity ack included).
    WriteOk {
        /// Echoed tag.
        tag: u64,
    },
    /// Generic positive ack.
    Ack {
        /// Echoed tag.
        tag: u64,
    },
    /// Negative reply.
    Nack {
        /// Echoed tag.
        tag: u64,
        /// Why.
        reason: NackReason,
    },
    /// Reply to [`Msg::BlockRead`].
    BlockData {
        /// Echoed tag.
        tag: u64,
        /// Contents.
        data: Vec<u8>,
        /// Stored UID.
        uid: Uid,
        /// UID array, when the row is this site's parity row.
        parity_uids: Option<Vec<Uid>>,
    },
    /// Reply to [`Msg::SpareProbe`] / [`Msg::SpareTake`].
    SpareState {
        /// Echoed tag.
        tag: u64,
        /// `Some((for_site, data, uid))` when valid.
        slot: Option<(usize, Vec<u8>, Uid)>,
    },
    /// Reply to [`Msg::SpareDrainList`].
    SpareRows {
        /// Echoed tag.
        tag: u64,
        /// Rows held for the recovering site.
        rows: Vec<u64>,
    },
}

/// Why a request was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NackReason {
    /// The site is down (temporary failure).
    Down,
    /// Address out of range.
    OutOfRange,
    /// Payload size mismatch.
    BadSize,
}

impl Msg {
    /// The tag of any message (requests and replies all carry one).
    pub fn tag(&self) -> u64 {
        match self {
            Msg::Read { tag, .. }
            | Msg::Write { tag, .. }
            | Msg::ParityUpdate { tag, .. }
            | Msg::SpareProbe { tag, .. }
            | Msg::SpareInstall { tag, .. }
            | Msg::BlockRead { tag, .. }
            | Msg::SpareDrainList { tag, .. }
            | Msg::SpareTake { tag, .. }
            | Msg::RestoreBlock { tag, .. }
            | Msg::ReadOk { tag, .. }
            | Msg::WriteOk { tag }
            | Msg::Ack { tag }
            | Msg::Nack { tag, .. }
            | Msg::BlockData { tag, .. }
            | Msg::SpareState { tag, .. }
            | Msg::SpareRows { tag, .. } => *tag,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radd_parity::Uid;

    #[test]
    fn every_variant_reports_its_tag() {
        let u = Uid::from_raw(5);
        let msgs: Vec<Msg> = vec![
            Msg::Read { index: 0, tag: 1 },
            Msg::Write { index: 0, data: vec![], tag: 2 },
            Msg::ParityUpdate { row: 0, mask_wire: vec![], uid: u, from_site: 0, tag: 3 },
            Msg::SpareProbe { row: 0, tag: 4 },
            Msg::SpareInstall { row: 0, for_site: 0, data: vec![], uid: u, tag: 5 },
            Msg::BlockRead { row: 0, tag: 6 },
            Msg::SpareDrainList { for_site: 0, tag: 7 },
            Msg::SpareTake { row: 0, tag: 8 },
            Msg::RestoreBlock { row: 0, data: vec![], uid: u, tag: 9 },
            Msg::ReadOk { tag: 10, data: vec![] },
            Msg::WriteOk { tag: 11 },
            Msg::Ack { tag: 12 },
            Msg::Nack { tag: 13, reason: NackReason::Down },
            Msg::BlockData { tag: 14, data: vec![], uid: u, parity_uids: None },
            Msg::SpareState { tag: 15, slot: None },
            Msg::SpareRows { tag: 16, rows: vec![] },
        ];
        for (i, m) in msgs.iter().enumerate() {
            assert_eq!(m.tag(), i as u64 + 1, "variant {i}");
        }
    }
}
