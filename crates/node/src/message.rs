//! The wire protocol between sites (and the client).
//!
//! The vocabulary lives in [`radd_protocol::wire`] — one definition shared
//! with the DES cluster — and is re-exported here for backwards
//! compatibility. Addresses are endpoint ids (`0..ep_base` = clients, site
//! `j` = `ep_base + j`).

pub use radd_protocol::wire::{Msg, MsgKind, NackReason, SpareContent, SpareSlotWire};
