//! [`FaultDriver`] implementation for the threaded cluster, so one
//! [`FaultPlan`](radd_workload::faults::FaultPlan) exercises both the DES
//! and the real-concurrency runtime.
//!
//! The threaded runtime models temporary site failures, partitions and
//! message loss faithfully; two DES-only events degrade gracefully here:
//!
//! * **Disk events.** `FailDisk`/`ReplaceDisk` need failure injection
//!   *inside* a site thread, which this runtime does not model; both are
//!   no-ops (the paired `Recover` then drains nothing).
//! * **Disaster** is applied as a temporary site failure: the protocol
//!   exercise (kill, degraded operation, drain on recovery) is identical,
//!   only the disks keep their contents.
//!
//! One genuine protocol gap is *skipped* rather than faked: a write whose
//! row's **parity site** is the currently failed/isolated site. The DES
//! absorbs those with a parity stand-in spare (§3.2 step W3'); the
//! threaded site would retransmit the parity update until the site
//! returned, stalling the plan. Such writes are counted in
//! [`ThreadedDriver::skipped_writes`] and left out of the oracle.
//!
//! A revived or healed site is kept on the client's down-list until the
//! plan's `Recover` event drains the spares back to it — between those
//! events its local blocks may be stale (the spare absorbed writes while
//! it was away), exactly the window §3.2's recovering state covers on the
//! DES.

use crate::{ClientError, NodeCluster};
use radd_workload::faults::{payload, FailureKind, FaultDriver, FaultEvent};
use std::collections::HashMap;
use std::time::Duration;

/// How long a quiesce may poll before the plan is declared stuck.
const QUIESCE_TIMEOUT: Duration = Duration::from_secs(10);

/// Drives a [`NodeCluster`] from a fault plan, tracking an oracle of every
/// acknowledged write for content checks.
pub struct ThreadedDriver {
    cluster: NodeCluster,
    block_size: usize,
    /// Logical content per `(site, index)` — every write the cluster
    /// acknowledged must read back exactly.
    oracle: HashMap<(usize, u64), Vec<u8>>,
    /// The one site currently failed or isolated (plans carry at most one
    /// failure at a time).
    impaired: Option<usize>,
    /// Whether a loss burst is active (suppresses invariant sweeps — they
    /// would pass anyway, but each dropped probe costs a retry timeout).
    lossy: bool,
    skipped_writes: u64,
}

impl ThreadedDriver {
    /// Spawn a fresh threaded cluster sized for a plan shape.
    pub fn start(g: usize, rows: u64, block_size: usize) -> ThreadedDriver {
        ThreadedDriver {
            cluster: NodeCluster::start(g, rows, block_size),
            block_size,
            oracle: HashMap::new(),
            impaired: None,
            lossy: false,
            skipped_writes: 0,
        }
    }

    /// [`start`](ThreadedDriver::start) on durable storage: every site
    /// runs a WAL-backed `radd_storage::DiskBlocks` under
    /// `<dir>/site-<j>`, so plans containing
    /// [`FaultEvent::KillRestart`] actually crash the sites and recover
    /// them from disk (memory-backed clusters treat those events as
    /// no-ops).
    pub fn start_durable(
        g: usize,
        rows: u64,
        block_size: usize,
        dir: std::path::PathBuf,
    ) -> ThreadedDriver {
        let (cluster, _extra) = NodeCluster::start_durable(
            g,
            rows,
            block_size,
            1,
            radd_protocol::CoalescePolicy::Merge,
            &radd_storage::StorageSpec::Disk { dir },
        );
        ThreadedDriver {
            cluster,
            block_size,
            oracle: HashMap::new(),
            impaired: None,
            lossy: false,
            skipped_writes: 0,
        }
    }

    /// The underlying cluster.
    pub fn cluster(&self) -> &NodeCluster {
        &self.cluster
    }

    /// Mutable access to the underlying cluster.
    pub fn cluster_mut(&mut self) -> &mut NodeCluster {
        &mut self.cluster
    }

    /// Writes skipped because the row's parity site was the failed site
    /// (see the module docs).
    pub fn skipped_writes(&self) -> u64 {
        self.skipped_writes
    }

    /// Acknowledged writes tracked by the oracle.
    pub fn oracle_len(&self) -> usize {
        self.oracle.len()
    }

    /// Stop the cluster threads.
    pub fn shutdown(self) {
        self.cluster.shutdown();
    }

    fn parity_site_of(&mut self, site: usize, index: u64) -> usize {
        let geo = self.cluster.client().geometry();
        let row = geo.data_to_physical(site, index);
        geo.parity_site(row)
    }
}

/// Protocol refusals a scenario makes legal (vs. broken guarantees).
fn is_refusal(e: &ClientError) -> bool {
    matches!(e, ClientError::MultipleFailure)
}

impl FaultDriver for ThreadedDriver {
    fn apply(&mut self, event: &FaultEvent) -> Result<(), String> {
        match *event {
            FaultEvent::Write { site, index, fill } => {
                let parity_site = self.parity_site_of(site, index);
                if self.impaired == Some(parity_site) {
                    self.skipped_writes += 1;
                    return Ok(());
                }
                let data = payload(fill, self.block_size);
                match self.cluster.client().write(site, index, &data) {
                    Ok(()) => {
                        self.oracle.insert((site, index), data);
                        Ok(())
                    }
                    Err(e) if is_refusal(&e) => Ok(()),
                    Err(e) => Err(format!("write(site {site}, index {index}): {e}")),
                }
            }
            FaultEvent::Read { site, index } => match self.cluster.client().read(site, index) {
                Ok(data) => match self.oracle.get(&(site, index)) {
                    Some(want) if *want != data => Err(format!(
                        "read(site {site}, index {index}) returned stale or \
                             corrupt data"
                    )),
                    _ => Ok(()),
                },
                Err(e) if is_refusal(&e) => Ok(()),
                Err(e) => Err(format!("read(site {site}, index {index}): {e}")),
            },
            // Disk failures are DES-only (see the module docs); the other
            // §3.1 kinds quiesce before killing — a site dying with an
            // unacked parity update is the §6 in-doubt problem (see the
            // site module docs).
            FaultEvent::Fail {
                kind: FailureKind::DiskFailure { .. },
                ..
            }
            | FaultEvent::ReplaceDisk { .. } => Ok(()),
            FaultEvent::Fail { site, .. } => {
                FaultDriver::quiesce(self)?;
                self.cluster.kill_site(site);
                self.impaired = Some(site);
                Ok(())
            }
            FaultEvent::RestoreSite { site } => {
                self.cluster.revive_site(site);
                // Stale until its spares are drained: keep the degraded
                // paths (which prefer the spare) until `Recover`.
                self.cluster.client().mark_down(site, true);
                Ok(())
            }
            FaultEvent::Recover { site } => match self.cluster.client().recover(site) {
                Ok(_) => {
                    self.cluster.client().mark_down(site, false);
                    self.impaired = None;
                    Ok(())
                }
                Err(e) => Err(format!("recovery of site {site}: {e}")),
            },
            FaultEvent::Isolate { site } => {
                FaultDriver::quiesce(self)?;
                self.cluster.isolate_site(site);
                self.impaired = Some(site);
                Ok(())
            }
            FaultEvent::Heal { site } => {
                self.cluster.heal_site(site);
                self.cluster.client().mark_down(site, true);
                Ok(())
            }
            FaultEvent::LossBurst { permille, seed } => {
                self.cluster.set_loss(permille, seed);
                self.lossy = true;
                Ok(())
            }
            FaultEvent::LossEnd => {
                self.cluster.set_loss(0, 0);
                self.lossy = false;
                Ok(())
            }
            FaultEvent::FlushParity => FaultDriver::quiesce(self),
            // §3.4 crash/restart: quiesce (same in-doubt rule as `Fail`),
            // then crash the site and let it recover from its WAL + block
            // file. Memory-backed clusters report `false` and change
            // nothing — a legitimate no-op, so crash plans run against
            // any cluster.
            FaultEvent::KillRestart { site } => {
                FaultDriver::quiesce(self)?;
                self.cluster.kill_restart_site(site);
                Ok(())
            }
            // Checker-granularity events address the model checker's
            // explicit in-flight message vector; the threaded runtime's
            // real channels are not event-addressable.
            FaultEvent::StepClient { .. }
            | FaultEvent::Deliver { .. }
            | FaultEvent::DropMsg { .. }
            | FaultEvent::DupMsg { .. }
            | FaultEvent::FireTimer { .. }
            | FaultEvent::EvictReplies { .. } => Ok(()),
        }
    }

    fn verify(&mut self) -> Result<bool, String> {
        // Mid-failure the stripe invariant cannot be swept (a site won't
        // answer); under loss it could be, but every dropped probe costs a
        // retry timeout, so sweeps wait for the burst to end.
        if self.impaired.is_some() || self.lossy {
            return Ok(false);
        }
        FaultDriver::quiesce(self)?;
        if !self.cluster.all_acked() {
            return Err("quiesced but a retransmission channel still holds unacked \
                 parity updates"
                .to_string());
        }
        self.cluster.client().verify_parity()?;
        let entries: Vec<((usize, u64), Vec<u8>)> =
            self.oracle.iter().map(|(&k, v)| (k, v.clone())).collect();
        for ((site, index), want) in entries {
            match self.cluster.client().read(site, index) {
                Ok(got) if got == want => {}
                Ok(_) => return Err(format!("oracle mismatch at site {site} index {index}")),
                Err(e) => {
                    return Err(format!(
                        "oracle read-back at site {site} index {index}: {e}"
                    ))
                }
            }
        }
        Ok(true)
    }

    fn quiesce(&mut self) -> Result<(), String> {
        self.cluster.quiesce(QUIESCE_TIMEOUT)
    }

    fn obs_snapshot(&mut self) -> Option<radd_obs::ObsSnapshot> {
        Some(self.cluster.obs_snapshot())
    }
}
