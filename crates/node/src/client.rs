//! The client library: a [`ClientMachine`] bound to a real endpoint.
//!
//! All §3.2/§3.3 client logic — degraded reads via spare or validated
//! reconstruction, W1' redirected writes, the recovery drain — lives in
//! [`radd_protocol::ClientMachine`]. This module supplies its
//! [`ClientIo`]: requests are retried with a growing per-attempt timeout
//! before the client gives up, so lost messages (see
//! [`radd_net::ThreadedNet::set_loss`]) delay operations instead of
//! failing them. Every request the client can resend is idempotent on the
//! receiving site: reads and probes trivially, `SpareInstall` and
//! `RestoreBlock` by overwriting with identical contents, `ParityUpdate`
//! by the parity site's UID comparison, duplicates of anything else by the
//! site's reply cache. The one destructive request, `SpareTake`, is only
//! issued *after* the block it covers has been restored, so a lost reply
//! costs nothing.
//!
//! Two degraded-path rules keep retries from compounding:
//!
//! * a send onto a **closed** channel fails the request immediately — a
//!   disconnected endpoint can never answer, so burning the timeout ladder
//!   only adds latency (a *partitioned* link keeps retrying: partitions
//!   heal);
//! * a batch ([`ClientIo::exchange_batch`]) shares **one** attempt budget
//!   per site across all of its entries, and short-circuits the remaining
//!   entries for a site that already exhausted it — a G-way degraded read
//!   with one down site pays one ladder, not one per entry.
//!
//! Every wire attempt, retransmission, stash eviction and failed send is
//! recorded in a per-client [`radd_obs::MachineObs`]; see
//! [`NodeClient::obs_snapshot`].

use crate::message::Msg;
use radd_net::threaded::NetError;
use radd_net::{RetryPolicy, ThreadedEndpoint};
use radd_obs::{MachineObs, MachineSnapshot};
use radd_parity::xor_in_place;
use radd_protocol::obs::ObsEvent;
use radd_protocol::{
    ClientErr, ClientIo, ClientMachine, Dest, RebuildReport, SparePolicy, TraceEntry,
};
use std::collections::{HashMap, HashSet, VecDeque};
use std::time::{Duration, Instant};

/// §3.3 retry budget for inconsistent reconstruction reads.
const RECONSTRUCT_RETRIES: u32 = 20;
/// Replies stashed beyond this count have their oldest entries dropped
/// (stale duplicates, e.g. a second `WriteOk` from a retransmitted write).
const STASH_CAP: usize = 512;
/// Tag-space bit marking requests minted outside the protocol machine
/// (oracle sweeps like [`NodeClient::verify_parity`]).
const ORACLE_TAG_BIT: u64 = 1 << 46;
/// Client UID namespaces count *down* from `u16::MAX` while site machines
/// count *up* from their site id. This cap keeps the two pools provably
/// disjoint and — more importantly — keeps the `u16` conversion exact: a
/// truncated endpoint id would alias another client's namespace and break
/// the §3.2 requirement that UIDs never repeat across writers.
const MAX_CLIENT_NAMESPACES: usize = 4096;

/// The UID namespace for the client on endpoint `ep_id`. Panics when the
/// endpoint id would not map injectively into the client pool.
fn client_uid_namespace(ep_id: usize) -> u16 {
    assert!(
        ep_id < MAX_CLIENT_NAMESPACES,
        "client endpoint id {ep_id} exceeds the {MAX_CLIENT_NAMESPACES}-entry \
         UID namespace pool; truncating it would alias another writer's \
         namespace and break §3.2 UID uniqueness"
    );
    u16::MAX - ep_id as u16
}

/// Client-side errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// Address out of range.
    OutOfRange,
    /// Payload size mismatch.
    BadSize,
    /// A needed peer did not answer (after all retries).
    Timeout {
        /// The unresponsive site.
        site: usize,
    },
    /// Two failures overlap (e.g. the spare already stands in for another
    /// site).
    MultipleFailure,
    /// Reconstruction kept failing §3.3 UID validation.
    Inconsistent,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::OutOfRange => write!(f, "address out of range"),
            ClientError::BadSize => write!(f, "payload size mismatch"),
            ClientError::Timeout { site } => write!(f, "site {site} did not answer"),
            ClientError::MultipleFailure => write!(f, "multiple overlapping failures"),
            ClientError::Inconsistent => {
                write!(f, "reconstruction stayed inconsistent after retries")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ClientErr> for ClientError {
    fn from(e: ClientErr) -> ClientError {
        match e {
            ClientErr::OutOfRange => ClientError::OutOfRange,
            ClientErr::BadSize => ClientError::BadSize,
            ClientErr::Timeout { site } => ClientError::Timeout { site },
            ClientErr::MultipleFailure { .. } | ClientErr::Unavailable { .. } => {
                ClientError::MultipleFailure
            }
            ClientErr::Inconsistent { .. } => ClientError::Inconsistent,
        }
    }
}

/// What became of one send attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SendResult {
    /// On the wire (or silently dropped by loss injection / refused by a
    /// partition — both of which retries are for).
    Sent,
    /// The channel is closed or the destination does not exist; no retry
    /// can ever succeed.
    Closed,
}

/// The machine's transport: request/reply over a threaded endpoint with
/// retry and backoff.
struct NetIo {
    ep: ThreadedEndpoint<Msg>,
    ep_base: usize,
    /// Replies that arrived while we were waiting for a different tag —
    /// fan-out responses come back in arbitrary order.
    stash: HashMap<u64, Msg>,
    stash_order: VecDeque<u64>,
    /// Attempt-ladder tuning — [`RetryPolicy::CLIENT_ATTEMPT`] in
    /// production; tests inject shrunken schedules.
    policy: RetryPolicy,
    stash_cap: usize,
    /// Per-client metrics + flight recorder.
    obs: MachineObs,
}

impl NetIo {
    fn new(ep: ThreadedEndpoint<Msg>, ep_base: usize) -> NetIo {
        NetIo {
            ep,
            ep_base,
            stash: HashMap::new(),
            stash_order: VecDeque::new(),
            policy: RetryPolicy::CLIENT_ATTEMPT,
            stash_cap: STASH_CAP,
            obs: MachineObs::new(),
        }
    }

    /// The wait window for a site's `k`-th attempt (0-based): the policy's
    /// geometric schedule.
    fn attempt_window(&self, k: u32) -> Duration {
        self.policy.delay(k)
    }

    /// A stashed reply for `tag`, if one already arrived out of band.
    fn take_stashed(&mut self, tag: u64) -> Option<Msg> {
        self.stash.remove(&tag)
    }

    /// One wire attempt: record it, send it, classify the outcome.
    fn send_attempt(&mut self, site: usize, msg: &Msg, retransmit: bool) -> SendResult {
        self.obs.event(ObsEvent::Send {
            to: Dest::Site(site),
            kind: msg.kind(),
            tag: msg.tag(),
            wire: msg.wire_size() as u64,
            retransmit,
            replay: false,
        });
        match self.ep.send(self.ep_base + site, msg.clone()) {
            Ok(()) => SendResult::Sent,
            Err(NetError::Disconnected) | Err(NetError::NoSuchSite(_)) => {
                self.obs.metrics().send_failure();
                SendResult::Closed
            }
            // A partitioned link refuses the send but may heal before the
            // ladder is spent — keep retrying, exactly like silent loss.
            Err(NetError::Partitioned) | Err(NetError::Timeout) => {
                self.obs.metrics().send_failure();
                SendResult::Sent
            }
        }
    }

    /// Wait for the reply carrying `tag`. Replies to *other* outstanding
    /// requests are stashed for their own `wait` calls; only a reply whose
    /// tag was never issued is truly stale.
    fn wait(&mut self, tag: u64, timeout: Duration) -> Option<Msg> {
        if let Some(m) = self.stash.remove(&tag) {
            return Some(m);
        }
        let deadline = Instant::now() + timeout;
        loop {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return None;
            }
            match self.ep.recv_timeout(left) {
                Ok(inbound) if inbound.payload.tag() == tag => return Some(inbound.payload),
                Ok(other) => {
                    let t = other.payload.tag();
                    if self.stash.insert(t, other.payload).is_none() {
                        self.stash_order.push_back(t);
                        if self.stash_order.len() > self.stash_cap {
                            if let Some(old) = self.stash_order.pop_front() {
                                self.stash.remove(&old);
                                self.obs.metrics().stash_eviction();
                            }
                        }
                    }
                }
                Err(_) => return None,
            }
        }
    }

    /// Send `msg` to `site`, retrying with exponential backoff until a
    /// reply arrives or the attempt budget is spent. All retried requests
    /// are idempotent at the receiver (see the module docs). A closed
    /// channel fails immediately — no answer can ever arrive on it.
    fn request(&mut self, site: usize, msg: &Msg) -> Option<Msg> {
        let tag = msg.tag();
        for k in 0..self.policy.attempts {
            if self.send_attempt(site, msg, k > 0) == SendResult::Closed {
                return self.take_stashed(tag);
            }
            if let Some(reply) = self.wait(tag, self.attempt_window(k)) {
                return Some(reply);
            }
        }
        None
    }
}

impl ClientIo for NetIo {
    fn exchange(&mut self, site: usize, msg: Msg, _background: bool) -> Result<Msg, ClientErr> {
        self.request(site, &msg).ok_or(ClientErr::Timeout { site })
    }

    /// Pipelined batch: every request goes on the wire before any reply is
    /// awaited, so the target sites serve them concurrently. Replies are
    /// then collected in request order; out-of-order arrivals land in the
    /// tag-keyed stash exactly as fan-out replies always have.
    ///
    /// Retries share **one** attempt budget per site across the whole
    /// batch: when several entries target a site that is down, the first
    /// entry's ladder spends the budget and every later entry for that
    /// site short-circuits to `Timeout` (after checking the stash — its
    /// reply may have arrived while an earlier entry waited). Without
    /// this, a G-way degraded read against one dead site would serialise G
    /// full retry ladders. The budget counts *expired windows only*, and a
    /// reply refills it: a healthy site must be able to answer a batch of
    /// any width, not just `attempts` entries (a wide recovery drain once
    /// burned the whole budget on its first twelve successful probes and
    /// synthesised timeouts for the rest of the wave).
    fn exchange_batch(
        &mut self,
        reqs: Vec<(usize, Msg)>,
        _background: bool,
    ) -> Vec<Result<Msg, ClientErr>> {
        let mut used: HashMap<usize, u32> = HashMap::new();
        let mut dead: HashSet<usize> = HashSet::new();
        for (site, msg) in &reqs {
            if dead.contains(site) {
                continue;
            }
            if self.send_attempt(*site, msg, false) == SendResult::Closed {
                dead.insert(*site);
            }
        }
        reqs.into_iter()
            .map(|(site, msg)| {
                let tag = msg.tag();
                // Served while an earlier entry was waiting?
                if let Some(reply) = self.take_stashed(tag) {
                    return Ok(reply);
                }
                if dead.contains(&site) {
                    return Err(ClientErr::Timeout { site });
                }
                loop {
                    let k = *used.entry(site).or_insert(0);
                    if k >= self.policy.attempts {
                        dead.insert(site);
                        return Err(ClientErr::Timeout { site });
                    }
                    // The first window (`k == 0`) rides on the pipelined
                    // send above; a window only opens with a resend after
                    // an earlier one expired (idempotent at the receiver).
                    if k > 0 && self.send_attempt(site, &msg, true) == SendResult::Closed {
                        dead.insert(site);
                        return self.take_stashed(tag).ok_or(ClientErr::Timeout { site });
                    }
                    if let Some(reply) = self.wait(tag, self.attempt_window(k)) {
                        // The site is alive: refill its budget so the rest
                        // of the batch gets full ladders too.
                        used.insert(site, 0);
                        return Ok(reply);
                    }
                    *used.get_mut(&site).expect("inserted above") += 1;
                }
            })
            .collect()
    }
    // old_value stays `None`: this runtime has no buffer-pool oracle, so
    // degraded writes fetch the old value through the protocol.
}

/// The cluster client.
pub struct NodeClient {
    machine: ClientMachine,
    io: NetIo,
    block_size: usize,
    /// Tag counter for oracle sweeps issued outside the machine.
    next_oracle_tag: u64,
}

impl NodeClient {
    pub(crate) fn new(
        ep: ThreadedEndpoint<Msg>,
        ep_base: usize,
        g: usize,
        rows: u64,
        block_size: usize,
    ) -> NodeClient {
        // Every client mints UIDs from its own namespace keyed by its
        // endpoint id, so concurrent clients never collide. Any "local
        // system" may mint UIDs, per §3.2 — uniqueness is all that matters.
        let uid_namespace = client_uid_namespace(ep.id());
        NodeClient {
            machine: ClientMachine::new(
                g,
                rows,
                block_size,
                SparePolicy::OnePerParity,
                true,
                uid_namespace,
            ),
            io: NetIo::new(ep, ep_base),
            block_size,
            next_oracle_tag: 0,
        }
    }

    /// Tell the machine `site` is believed down (or back up). In a real
    /// deployment this input comes from a failure detector; tests and the
    /// fault driver set it explicitly.
    pub fn mark_down(&mut self, site: usize, down: bool) {
        self.machine.set_down(site, down);
    }

    /// Whether this client currently believes `site` is down.
    pub fn is_marked_down(&self, site: usize) -> bool {
        self.machine.is_down(site)
    }

    /// The cluster geometry.
    pub fn geometry(&self) -> &radd_layout::Geometry {
        self.machine.geometry()
    }

    /// Start recording this client's normalised request trace.
    pub fn record_trace(&mut self) {
        self.machine.record_trace();
    }

    /// Take the recorded trace, leaving recording enabled.
    pub fn take_trace(&mut self) -> Vec<TraceEntry> {
        self.machine.take_trace()
    }

    /// Freeze this client's metrics and flight recorder. Latency
    /// histograms hold wall-clock nanoseconds per completed operation.
    pub fn obs_snapshot(&self) -> MachineSnapshot {
        self.io.obs.snapshot("client")
    }

    /// Read the `index`-th data block of `site`.
    pub fn read(&mut self, site: usize, index: u64) -> Result<Vec<u8>, ClientError> {
        let started = Instant::now();
        // §3.3: an inconsistent reconstruction means a parity update is in
        // flight; back off and retry the whole degraded read.
        for _ in 0..RECONSTRUCT_RETRIES {
            match self.machine.read(&mut self.io, site, index) {
                Err(ClientErr::Inconsistent { .. }) => std::thread::sleep(Duration::from_millis(5)),
                Ok(b) => {
                    self.io
                        .obs
                        .metrics()
                        .record_read_latency(started.elapsed().as_nanos() as u64);
                    return Ok(b.to_vec());
                }
                Err(e) => return Err(ClientError::from(e)),
            }
        }
        Err(ClientError::Inconsistent)
    }

    /// Write the `index`-th data block of `site`.
    pub fn write(&mut self, site: usize, index: u64, data: &[u8]) -> Result<(), ClientError> {
        let started = Instant::now();
        for _ in 0..RECONSTRUCT_RETRIES {
            match self.machine.write(&mut self.io, site, index, data) {
                Err(ClientErr::Inconsistent { .. }) => std::thread::sleep(Duration::from_millis(5)),
                Ok(()) => {
                    self.io
                        .obs
                        .metrics()
                        .record_write_latency(started.elapsed().as_nanos() as u64);
                    return Ok(());
                }
                Err(e) => return Err(ClientError::from(e)),
            }
        }
        Err(ClientError::Inconsistent)
    }

    /// Recovery drain for a revived site (§3.2's background process, driven
    /// from here): for every spare standing in for it, restore the block at
    /// the revived site first, *then* invalidate the spare — so a lost
    /// reply at any step leaves the data reachable and every step safe to
    /// retry. Returns the number of blocks drained.
    pub fn recover(&mut self, site: usize) -> Result<u64, ClientError> {
        let drained = self
            .machine
            .recover(&mut self.io, site)
            .map_err(ClientError::from)?;
        let m = self.io.obs.metrics();
        m.recovery_run();
        m.set_recovery_progress(drained, 0);
        Ok(drained)
    }

    /// Bulk-rebuild every data block a believed-down `site` owns into the
    /// row spares (§3.3 reconstruction fanned wave-by-wave across all
    /// survivors). Idempotent: rows already absorbed are skipped, so an
    /// `Inconsistent` fold (a parity update racing the rebuild) retries the
    /// whole pass cheaply.
    pub fn rebuild(&mut self, site: usize, wave_rows: usize) -> Result<RebuildReport, ClientError> {
        for _ in 0..RECONSTRUCT_RETRIES {
            match self.machine.rebuild_member(&mut self.io, site, wave_rows) {
                Err(ClientErr::Inconsistent { .. }) => std::thread::sleep(Duration::from_millis(5)),
                Ok(report) => {
                    let m = self.io.obs.metrics();
                    m.rebuild_run();
                    m.add_rebuild(report.blocks_rebuilt, report.bytes_xored);
                    m.set_rebuild_fanout(
                        report.peer_reads.iter().filter(|&&n| n > 0).count() as u64
                    );
                    return Ok(report);
                }
                Err(e) => return Err(ClientError::from(e)),
            }
        }
        Err(ClientError::Inconsistent)
    }

    fn oracle_tag(&mut self) -> u64 {
        self.next_oracle_tag += 1;
        ORACLE_TAG_BIT | self.next_oracle_tag
    }

    /// Verify the stripe invariant over every row by reading all blocks
    /// (requires every site up). Returns the first violated row.
    pub fn verify_parity(&mut self) -> Result<(), String> {
        let geo = *self.machine.geometry();
        for row in 0..geo.rows() {
            let parity_site = geo.parity_site(row);
            let spare_site = geo.spare_site(row);
            let mut acc = vec![0u8; self.block_size];
            let mut parity = vec![0u8; self.block_size];
            for s in 0..geo.num_sites() {
                if s == spare_site {
                    continue;
                }
                let tag = self.oracle_tag();
                match self.io.request(s, &Msg::BlockRead { row, tag }) {
                    Some(Msg::BlockData { data, .. }) => {
                        if s == parity_site {
                            parity = data.to_vec();
                        } else {
                            xor_in_place(&mut acc, &data);
                        }
                    }
                    _ => return Err(format!("site {s} did not answer for row {row}")),
                }
            }
            if acc != parity {
                return Err(format!("parity mismatch in row {row}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radd_net::ThreadedNet;

    #[test]
    fn client_uid_namespaces_are_distinct_and_disjoint_from_sites() {
        let mut seen = HashSet::new();
        for ep_id in 0..64 {
            let ns = client_uid_namespace(ep_id);
            assert!(seen.insert(ns), "namespace collision at endpoint {ep_id}");
            // Site machines mint from namespace = site id, counting up.
            assert!(
                (ns as usize) >= MAX_CLIENT_NAMESPACES,
                "client namespace {ns} would collide with a site namespace"
            );
        }
    }

    #[test]
    #[should_panic(expected = "UID namespace")]
    fn truncating_endpoint_ids_is_refused() {
        // 65536 would silently truncate to namespace u16::MAX - 0 — the
        // primary client's namespace. The checked allocator must refuse.
        let _ = client_uid_namespace(65536);
    }

    #[test]
    #[should_panic(expected = "UID namespace")]
    fn endpoint_ids_beyond_the_pool_are_refused() {
        let _ = client_uid_namespace(MAX_CLIENT_NAMESPACES);
    }

    /// A deaf cluster: endpoints exist (sends succeed) but nothing ever
    /// replies — the worst case for retry ladders.
    fn deaf_io(sites: usize) -> NetIo {
        let (net, mut eps) = ThreadedNet::<Msg>::new(1 + sites);
        // Keep the net handle alive inside the endpoint's lifetime by
        // leaking it: dropping it would close channels and turn timeouts
        // into instant Disconnected errors, which is not the case under
        // test here.
        std::mem::forget(net);
        std::mem::forget(eps.split_off(1));
        NetIo::new(eps.remove(0), 1)
    }

    #[test]
    fn batch_against_a_dead_site_shares_one_attempt_budget() {
        let mut io = deaf_io(2);
        io.policy = RetryPolicy {
            base_ms: 20,
            numer: 3,
            denom: 2,
            cap_ms: 30,
            attempts: 3,
        };
        // 6 batch entries all target dead site 0. The shared budget means
        // one ladder (20 + 30 + 30 ms), not six.
        let reqs: Vec<(usize, Msg)> = (0..6)
            .map(|i| (0usize, Msg::BlockRead { row: i, tag: i }))
            .collect();
        let started = Instant::now();
        let replies = io.exchange_batch(reqs, false);
        let elapsed = started.elapsed();
        assert!(replies
            .iter()
            .all(|r| matches!(r, Err(ClientErr::Timeout { site: 0 }))));
        // One full ladder is 80 ms; six serial ladders would be 480 ms.
        // Allow generous slack for a loaded machine while still proving
        // the budget is shared.
        assert!(
            elapsed < Duration::from_millis(300),
            "batch against a dead site took {elapsed:?}; the attempt budget \
             is being spent per entry instead of per site"
        );
        let snap = io.obs.snapshot("client");
        assert_eq!(
            snap.metrics.retransmits, 2,
            "3-attempt budget = 1 batched send + 2 retransmissions, shared \
             across the whole batch"
        );
    }

    /// A fake site that collects `batch` requests, acknowledges them in
    /// *reverse* order (forcing the client to stash the later tags), then
    /// echoes an ack for anything else that arrives (retransmissions).
    fn reversing_site(ep: ThreadedEndpoint<Msg>, batch: usize) {
        std::thread::spawn(move || {
            let mut first: Vec<(usize, u64)> = Vec::new();
            while first.len() < batch {
                match ep.recv_timeout(Duration::from_secs(5)) {
                    Ok(m) => first.push((m.src, m.payload.tag())),
                    Err(_) => return,
                }
            }
            for &(src, tag) in first.iter().rev() {
                let _ = ep.send(src, Msg::Ack { tag });
            }
            while let Ok(m) = ep.recv_timeout(Duration::from_secs(2)) {
                let _ = ep.send(
                    m.src,
                    Msg::Ack {
                        tag: m.payload.tag(),
                    },
                );
            }
        });
    }

    /// A batch far wider than the attempt budget, all to one *healthy*
    /// site, must succeed entry for entry with zero retransmissions. The
    /// per-site budget once counted successful waits: entry thirteen of a
    /// wide recovery-drain wave got an instant synthesised `Timeout` even
    /// though the site answered everything (and entries two onward were
    /// spuriously resent as retransmissions).
    #[test]
    fn wide_batch_to_a_healthy_site_outlives_the_attempt_budget() {
        let (net, mut eps) = ThreadedNet::<Msg>::new(2);
        let client_ep = eps.remove(0);
        reversing_site(eps.remove(0), 0); // pure echo: acks as requests arrive
        let mut io = NetIo::new(client_ep, 1);
        let width = io.policy.attempts as u64 * 3;
        let reqs: Vec<(usize, Msg)> = (0..width)
            .map(|i| {
                (
                    0usize,
                    Msg::BlockRead {
                        row: i,
                        tag: 200 + i,
                    },
                )
            })
            .collect();
        let replies = io.exchange_batch(reqs, false);
        for (i, r) in replies.iter().enumerate() {
            match r {
                Ok(m) => assert_eq!(m.tag(), 200 + i as u64),
                Err(e) => panic!("entry {i} of a healthy wide batch failed: {e:?}"),
            }
        }
        let snap = io.obs.snapshot("client");
        assert_eq!(
            snap.metrics.retransmits, 0,
            "a healthy site answered every pipelined request; nothing to resend"
        );
        drop(net);
    }

    #[test]
    fn stash_eviction_of_a_batch_reply_converges_by_retransmission() {
        let (net, mut eps) = ThreadedNet::<Msg>::new(2);
        let client_ep = eps.remove(0);
        reversing_site(eps.remove(0), 3);
        let mut io = NetIo::new(client_ep, 1);
        // One stash slot: when the replies for tags 101 and 102 both land
        // while entry 100 is being awaited, 102's reply is evicted even
        // though its batch entry is still outstanding.
        io.stash_cap = 1;
        io.policy.base_ms = 50;
        let reqs: Vec<(usize, Msg)> = (0..3)
            .map(|i| {
                (
                    0usize,
                    Msg::BlockRead {
                        row: i,
                        tag: 100 + i,
                    },
                )
            })
            .collect();
        let replies = io.exchange_batch(reqs, false);
        for (i, r) in replies.iter().enumerate() {
            match r {
                Ok(m) => assert_eq!(m.tag(), 100 + i as u64),
                Err(e) => panic!("entry {i} failed: {e:?}"),
            }
        }
        let snap = io.obs.snapshot("client");
        assert_eq!(
            snap.metrics.stash_evictions, 1,
            "the reply for tag 102 must have been evicted from the 1-slot stash"
        );
        assert_eq!(
            snap.metrics.retransmits, 1,
            "recovering the evicted reply takes exactly one retransmission"
        );
        drop(net);
    }

    #[test]
    fn request_fails_fast_when_the_channel_is_closed() {
        let (net, mut eps) = ThreadedNet::<Msg>::new(2);
        let io_ep = eps.remove(0);
        drop(eps); // site endpoint gone: its inbox channel closes
        drop(net);
        let mut io = NetIo::new(io_ep, 1);
        io.policy.base_ms = 200;
        let started = Instant::now();
        let reply = io.request(0, &Msg::BlockRead { row: 0, tag: 1 });
        let elapsed = started.elapsed();
        assert!(reply.is_none());
        assert!(
            elapsed < Duration::from_millis(100),
            "closed channel burned the timeout ladder: {elapsed:?}"
        );
        assert_eq!(io.obs.snapshot("client").metrics.send_failures, 1);
    }
}
