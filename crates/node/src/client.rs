//! The client library: a [`ClientMachine`] bound to a real endpoint.
//!
//! All §3.2/§3.3 client logic — degraded reads via spare or validated
//! reconstruction, W1' redirected writes, the recovery drain — lives in
//! [`radd_protocol::ClientMachine`]. This module supplies its
//! [`ClientIo`]: requests are retried with a growing per-attempt timeout
//! before the client gives up, so lost messages (see
//! [`radd_net::ThreadedNet::set_loss`]) delay operations instead of
//! failing them. Every request the client can resend is idempotent on the
//! receiving site: reads and probes trivially, `SpareInstall` and
//! `RestoreBlock` by overwriting with identical contents, `ParityUpdate`
//! by the parity site's UID comparison, duplicates of anything else by the
//! site's reply cache. The one destructive request, `SpareTake`, is only
//! issued *after* the block it covers has been restored, so a lost reply
//! costs nothing.

use crate::message::Msg;
use radd_net::ThreadedEndpoint;
use radd_parity::xor_in_place;
use radd_protocol::{ClientErr, ClientIo, ClientMachine, SparePolicy, TraceEntry};
use std::collections::{HashMap, VecDeque};
use std::time::Duration;

/// First per-attempt reply timeout; grows 1.5× per retry.
const ATTEMPT_TIMEOUT: Duration = Duration::from_millis(150);
/// Per-attempt timeout ceiling.
const ATTEMPT_CAP: Duration = Duration::from_millis(900);
/// How many times a request is (re)sent before the peer is declared dead.
/// Sized so that even a 30% loss burst (the generator's ceiling) has a
/// negligible chance of exhausting the budget on a live peer.
const REQUEST_ATTEMPTS: u32 = 12;
/// §3.3 retry budget for inconsistent reconstruction reads.
const RECONSTRUCT_RETRIES: u32 = 20;
/// Replies stashed beyond this count have their oldest entries dropped
/// (stale duplicates, e.g. a second `WriteOk` from a retransmitted write).
const STASH_CAP: usize = 512;
/// Tag-space bit marking requests minted outside the protocol machine
/// (oracle sweeps like [`NodeClient::verify_parity`]).
const ORACLE_TAG_BIT: u64 = 1 << 46;

/// Client-side errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// Address out of range.
    OutOfRange,
    /// Payload size mismatch.
    BadSize,
    /// A needed peer did not answer (after all retries).
    Timeout {
        /// The unresponsive site.
        site: usize,
    },
    /// Two failures overlap (e.g. the spare already stands in for another
    /// site).
    MultipleFailure,
    /// Reconstruction kept failing §3.3 UID validation.
    Inconsistent,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::OutOfRange => write!(f, "address out of range"),
            ClientError::BadSize => write!(f, "payload size mismatch"),
            ClientError::Timeout { site } => write!(f, "site {site} did not answer"),
            ClientError::MultipleFailure => write!(f, "multiple overlapping failures"),
            ClientError::Inconsistent => {
                write!(f, "reconstruction stayed inconsistent after retries")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ClientErr> for ClientError {
    fn from(e: ClientErr) -> ClientError {
        match e {
            ClientErr::OutOfRange => ClientError::OutOfRange,
            ClientErr::BadSize => ClientError::BadSize,
            ClientErr::Timeout { site } => ClientError::Timeout { site },
            ClientErr::MultipleFailure { .. } | ClientErr::Unavailable { .. } => {
                ClientError::MultipleFailure
            }
            ClientErr::Inconsistent { .. } => ClientError::Inconsistent,
        }
    }
}

/// The machine's transport: request/reply over a threaded endpoint with
/// retry and backoff.
struct NetIo {
    ep: ThreadedEndpoint<Msg>,
    ep_base: usize,
    /// Replies that arrived while we were waiting for a different tag —
    /// fan-out responses come back in arbitrary order.
    stash: HashMap<u64, Msg>,
    stash_order: VecDeque<u64>,
}

impl NetIo {
    /// Wait for the reply carrying `tag`. Replies to *other* outstanding
    /// requests are stashed for their own `wait` calls; only a reply whose
    /// tag was never issued is truly stale.
    fn wait(&mut self, tag: u64, timeout: Duration) -> Option<Msg> {
        if let Some(m) = self.stash.remove(&tag) {
            return Some(m);
        }
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let left = deadline.saturating_duration_since(std::time::Instant::now());
            if left.is_zero() {
                return None;
            }
            match self.ep.recv_timeout(left) {
                Ok(inbound) if inbound.payload.tag() == tag => return Some(inbound.payload),
                Ok(other) => {
                    let t = other.payload.tag();
                    if self.stash.insert(t, other.payload).is_none() {
                        self.stash_order.push_back(t);
                        if self.stash_order.len() > STASH_CAP {
                            if let Some(old) = self.stash_order.pop_front() {
                                self.stash.remove(&old);
                            }
                        }
                    }
                }
                Err(_) => return None,
            }
        }
    }

    /// Send `msg` to `site`, retrying with exponential backoff until a
    /// reply arrives or the attempt budget is spent. All retried requests
    /// are idempotent at the receiver (see the module docs).
    fn request(&mut self, site: usize, msg: Msg) -> Option<Msg> {
        let tag = msg.tag();
        let dst = self.ep_base + site;
        let mut timeout = ATTEMPT_TIMEOUT;
        for _ in 0..REQUEST_ATTEMPTS {
            let _ = self.ep.send(dst, msg.clone());
            if let Some(reply) = self.wait(tag, timeout) {
                return Some(reply);
            }
            timeout = (timeout * 3 / 2).min(ATTEMPT_CAP);
        }
        None
    }
}

impl ClientIo for NetIo {
    fn exchange(&mut self, site: usize, msg: Msg, _background: bool) -> Result<Msg, ClientErr> {
        self.request(site, msg).ok_or(ClientErr::Timeout { site })
    }

    /// Pipelined batch: every request goes on the wire before any reply is
    /// awaited, so the target sites serve them concurrently. Replies are
    /// then collected in request order; out-of-order arrivals land in the
    /// tag-keyed stash exactly as fan-out replies always have. A request
    /// whose reply misses the batch window falls back to the serial retry
    /// path (all batched requests are idempotent at the receiver).
    fn exchange_batch(
        &mut self,
        reqs: Vec<(usize, Msg)>,
        _background: bool,
    ) -> Vec<Result<Msg, ClientErr>> {
        for (site, msg) in &reqs {
            let _ = self.ep.send(self.ep_base + site, msg.clone());
        }
        reqs.into_iter()
            .map(|(site, msg)| {
                let tag = msg.tag();
                if let Some(reply) = self.wait(tag, ATTEMPT_TIMEOUT) {
                    return Ok(reply);
                }
                self.request(site, msg).ok_or(ClientErr::Timeout { site })
            })
            .collect()
    }
    // old_value stays `None`: this runtime has no buffer-pool oracle, so
    // degraded writes fetch the old value through the protocol.
}

/// The cluster client.
pub struct NodeClient {
    machine: ClientMachine,
    io: NetIo,
    block_size: usize,
    /// Tag counter for oracle sweeps issued outside the machine.
    next_oracle_tag: u64,
}

impl NodeClient {
    pub(crate) fn new(
        ep: ThreadedEndpoint<Msg>,
        ep_base: usize,
        g: usize,
        rows: u64,
        block_size: usize,
    ) -> NodeClient {
        // Every client mints UIDs from its own namespace keyed by its
        // endpoint id, so concurrent clients never collide. Any "local
        // system" may mint UIDs, per §3.2 — uniqueness is all that matters.
        let uid_namespace = u16::MAX - ep.id() as u16;
        NodeClient {
            machine: ClientMachine::new(
                g,
                rows,
                block_size,
                SparePolicy::OnePerParity,
                true,
                uid_namespace,
            ),
            io: NetIo {
                ep,
                ep_base,
                stash: HashMap::new(),
                stash_order: VecDeque::new(),
            },
            block_size,
            next_oracle_tag: 0,
        }
    }

    /// Tell the machine `site` is believed down (or back up). In a real
    /// deployment this input comes from a failure detector; tests and the
    /// fault driver set it explicitly.
    pub fn mark_down(&mut self, site: usize, down: bool) {
        self.machine.set_down(site, down);
    }

    /// Whether this client currently believes `site` is down.
    pub fn is_marked_down(&self, site: usize) -> bool {
        self.machine.is_down(site)
    }

    /// The cluster geometry.
    pub fn geometry(&self) -> &radd_layout::Geometry {
        self.machine.geometry()
    }

    /// Start recording this client's normalised request trace.
    pub fn record_trace(&mut self) {
        self.machine.record_trace();
    }

    /// Take the recorded trace, leaving recording enabled.
    pub fn take_trace(&mut self) -> Vec<TraceEntry> {
        self.machine.take_trace()
    }

    /// Read the `index`-th data block of `site`.
    pub fn read(&mut self, site: usize, index: u64) -> Result<Vec<u8>, ClientError> {
        // §3.3: an inconsistent reconstruction means a parity update is in
        // flight; back off and retry the whole degraded read.
        for _ in 0..RECONSTRUCT_RETRIES {
            match self.machine.read(&mut self.io, site, index) {
                Err(ClientErr::Inconsistent { .. }) => std::thread::sleep(Duration::from_millis(5)),
                other => return other.map(|b| b.to_vec()).map_err(ClientError::from),
            }
        }
        Err(ClientError::Inconsistent)
    }

    /// Write the `index`-th data block of `site`.
    pub fn write(&mut self, site: usize, index: u64, data: &[u8]) -> Result<(), ClientError> {
        for _ in 0..RECONSTRUCT_RETRIES {
            match self.machine.write(&mut self.io, site, index, data) {
                Err(ClientErr::Inconsistent { .. }) => std::thread::sleep(Duration::from_millis(5)),
                other => return other.map_err(ClientError::from),
            }
        }
        Err(ClientError::Inconsistent)
    }

    /// Recovery drain for a revived site (§3.2's background process, driven
    /// from here): for every spare standing in for it, restore the block at
    /// the revived site first, *then* invalidate the spare — so a lost
    /// reply at any step leaves the data reachable and every step safe to
    /// retry. Returns the number of blocks drained.
    pub fn recover(&mut self, site: usize) -> Result<u64, ClientError> {
        self.machine
            .recover(&mut self.io, site)
            .map_err(ClientError::from)
    }

    fn oracle_tag(&mut self) -> u64 {
        self.next_oracle_tag += 1;
        ORACLE_TAG_BIT | self.next_oracle_tag
    }

    /// Verify the stripe invariant over every row by reading all blocks
    /// (requires every site up). Returns the first violated row.
    pub fn verify_parity(&mut self) -> Result<(), String> {
        let geo = *self.machine.geometry();
        for row in 0..geo.rows() {
            let parity_site = geo.parity_site(row);
            let spare_site = geo.spare_site(row);
            let mut acc = vec![0u8; self.block_size];
            let mut parity = vec![0u8; self.block_size];
            for s in 0..geo.num_sites() {
                if s == spare_site {
                    continue;
                }
                let tag = self.oracle_tag();
                match self.io.request(s, Msg::BlockRead { row, tag }) {
                    Some(Msg::BlockData { data, .. }) => {
                        if s == parity_site {
                            parity = data.to_vec();
                        } else {
                            xor_in_place(&mut acc, &data);
                        }
                    }
                    _ => return Err(format!("site {s} did not answer for row {row}")),
                }
            }
            if acc != parity {
                return Err(format!("parity mismatch in row {row}"));
            }
        }
        Ok(())
    }
}
