//! The client library: normal operations against the owning site, and the
//! client-driven degraded paths of §3.2 (spare probe, validated
//! reconstruction, spare install, W1' redirected writes, recovery drain).
//!
//! Requests are retried with a growing per-attempt timeout before the
//! client gives up, so lost messages (see
//! [`radd_net::ThreadedNet::set_loss`]) delay operations instead of
//! failing them. Every request the client can resend is idempotent on the
//! receiving site: reads and probes trivially, `SpareInstall` and
//! `RestoreBlock` by overwriting with identical contents, `ParityUpdate`
//! by the parity site's UID comparison, and a duplicate `Write` re-applies
//! identical bytes (its second change mask is empty). The one destructive
//! request, `SpareTake`, is only issued *after* the block it covers has
//! been restored, so a lost reply costs nothing.

use crate::message::{Msg, NackReason};
use radd_layout::Geometry;
use radd_net::ThreadedEndpoint;
use radd_parity::{xor_in_place, ChangeMask, Uid, UidArray, UidGen};
use std::time::Duration;

/// First per-attempt reply timeout; grows 1.5× per retry.
const ATTEMPT_TIMEOUT: Duration = Duration::from_millis(150);
/// Per-attempt timeout ceiling.
const ATTEMPT_CAP: Duration = Duration::from_millis(900);
/// How many times a request is (re)sent before the peer is declared dead.
/// Sized so that even a 30% loss burst (the generator's ceiling) has a
/// negligible chance of exhausting the budget on a live peer.
const REQUEST_ATTEMPTS: u32 = 12;
/// §3.3 retry budget for inconsistent reconstruction reads.
const RECONSTRUCT_RETRIES: u32 = 20;
/// Stash entries older than this many tags behind the newest are stale
/// duplicates (e.g. a second `WriteOk` from a retransmitted write).
const STASH_HORIZON: u64 = 256;

/// Client-side errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// Address out of range.
    OutOfRange,
    /// Payload size mismatch.
    BadSize,
    /// A needed peer did not answer (after all retries).
    Timeout {
        /// The unresponsive site.
        site: usize,
    },
    /// Two failures overlap (e.g. the spare already stands in for another
    /// site).
    MultipleFailure,
    /// Reconstruction kept failing §3.3 UID validation.
    Inconsistent,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::OutOfRange => write!(f, "address out of range"),
            ClientError::BadSize => write!(f, "payload size mismatch"),
            ClientError::Timeout { site } => write!(f, "site {site} did not answer"),
            ClientError::MultipleFailure => write!(f, "multiple overlapping failures"),
            ClientError::Inconsistent => {
                write!(f, "reconstruction stayed inconsistent after retries")
            }
        }
    }
}

impl std::error::Error for ClientError {}

/// The cluster client.
pub struct NodeClient {
    ep: ThreadedEndpoint<Msg>,
    ep_base: usize,
    geo: Geometry,
    block_size: usize,
    uid_gen: UidGen,
    next_tag: u64,
    down: Vec<bool>,
    /// Replies that arrived while we were waiting for a different tag —
    /// fan-out responses come back in arbitrary order.
    stash: std::collections::HashMap<u64, Msg>,
}

impl NodeClient {
    pub(crate) fn new(
        ep: ThreadedEndpoint<Msg>,
        ep_base: usize,
        g: usize,
        rows: u64,
        block_size: usize,
    ) -> NodeClient {
        // Every client mints UIDs from its own namespace keyed by its
        // endpoint id, so concurrent clients never collide.
        let uid_site = u16::MAX - ep.id() as u16;
        NodeClient {
            ep,
            ep_base,
            geo: Geometry::new(g, rows).expect("valid geometry"),
            block_size,
            // Any "local system" may mint UIDs, per §3.2 — uniqueness is
            // all that matters.
            uid_gen: UidGen::new(uid_site),
            next_tag: 0,
            down: vec![false; g + 2],
            stash: std::collections::HashMap::new(),
        }
    }

    pub(crate) fn mark_down(&mut self, site: usize, down: bool) {
        self.down[site] = down;
    }

    /// Whether this client currently believes `site` is down.
    pub fn is_marked_down(&self, site: usize) -> bool {
        self.down[site]
    }

    /// The cluster geometry.
    pub fn geometry(&self) -> &Geometry {
        &self.geo
    }

    fn tag(&mut self) -> u64 {
        self.next_tag += 1;
        // Duplicate replies from retransmitted requests accumulate in the
        // stash; anything far behind the newest tag can never be waited on
        // again.
        if self.stash.len() > STASH_HORIZON as usize {
            let horizon = self.next_tag.saturating_sub(STASH_HORIZON);
            self.stash.retain(|&t, _| t >= horizon);
        }
        self.next_tag
    }

    /// Wait for the reply carrying `tag`. Replies to *other* outstanding
    /// requests (fan-outs answer in arbitrary order) are stashed for their
    /// own `wait` calls; only a reply whose tag was never issued is truly
    /// stale.
    fn wait(&mut self, tag: u64, timeout: Duration) -> Option<Msg> {
        if let Some(m) = self.stash.remove(&tag) {
            return Some(m);
        }
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let left = deadline.saturating_duration_since(std::time::Instant::now());
            if left.is_zero() {
                return None;
            }
            match self.ep.recv_timeout(left) {
                Ok(inbound) if inbound.payload.tag() == tag => return Some(inbound.payload),
                Ok(other) => {
                    self.stash.insert(other.payload.tag(), other.payload);
                }
                Err(_) => return None,
            }
        }
    }

    /// Send `msg` (which must already carry `tag`) to endpoint `dst`,
    /// retrying with exponential backoff until a reply arrives or the
    /// attempt budget is spent. All retried requests are idempotent at the
    /// receiver (see the module docs).
    fn request(&mut self, dst: usize, tag: u64, msg: Msg) -> Option<Msg> {
        let mut timeout = ATTEMPT_TIMEOUT;
        for _ in 0..REQUEST_ATTEMPTS {
            let _ = self.ep.send(dst, msg.clone());
            if let Some(reply) = self.wait(tag, timeout) {
                return Some(reply);
            }
            timeout = (timeout * 3 / 2).min(ATTEMPT_CAP);
        }
        None
    }

    /// Read the `index`-th data block of `site`.
    pub fn read(&mut self, site: usize, index: u64) -> Result<Vec<u8>, ClientError> {
        if index >= self.geo.data_capacity(site) {
            return Err(ClientError::OutOfRange);
        }
        if self.down[site] {
            return self.degraded_read(site, index);
        }
        let tag = self.tag();
        match self.request(self.ep_base + site, tag, Msg::Read { index, tag }) {
            Some(Msg::ReadOk { data, .. }) => Ok(data),
            Some(Msg::Nack { reason, .. }) => Err(map_nack(reason)),
            _ => Err(ClientError::Timeout { site }),
        }
    }

    /// Write the `index`-th data block of `site`.
    pub fn write(&mut self, site: usize, index: u64, data: &[u8]) -> Result<(), ClientError> {
        if index >= self.geo.data_capacity(site) {
            return Err(ClientError::OutOfRange);
        }
        if data.len() != self.block_size {
            return Err(ClientError::BadSize);
        }
        if self.down[site] {
            return self.degraded_write(site, index, data);
        }
        let tag = self.tag();
        let msg = Msg::Write {
            index,
            data: data.to_vec(),
            tag,
        };
        match self.request(self.ep_base + site, tag, msg) {
            Some(Msg::WriteOk { .. }) => Ok(()),
            Some(Msg::Nack { reason, .. }) => Err(map_nack(reason)),
            _ => Err(ClientError::Timeout { site }),
        }
    }

    /// §3.2 down-site read: spare if valid, else validated reconstruction,
    /// installed into the spare for subsequent reads.
    fn degraded_read(&mut self, site: usize, index: u64) -> Result<Vec<u8>, ClientError> {
        let row = self.geo.data_to_physical(site, index);
        match self.probe_spare(row)? {
            Some((for_site, data, _uid)) if for_site == site => return Ok(data),
            Some(_) => return Err(ClientError::MultipleFailure),
            None => {}
        }
        let (data, uid) = self.reconstruct(site, row)?;
        self.install_spare(row, site, &data, uid)?;
        Ok(data)
    }

    /// W1': ship the new contents to the spare site, then run W2–W4 from
    /// here (the client computes the change mask against the logical old
    /// value).
    fn degraded_write(
        &mut self,
        site: usize,
        index: u64,
        data: &[u8],
    ) -> Result<(), ClientError> {
        let row = self.geo.data_to_physical(site, index);
        let old = match self.probe_spare(row)? {
            Some((for_site, old, _)) if for_site == site => old,
            Some(_) => return Err(ClientError::MultipleFailure),
            None => self.reconstruct(site, row)?.0,
        };
        let uid = self.uid_gen.next_uid();
        self.install_spare(row, site, data, uid)?;
        // W3 to the parity site, tagged with the new UID. Safe to resend:
        // the parity site applies each UID at most once.
        let mask = ChangeMask::diff(&old, data);
        let parity_site = self.geo.parity_site(row);
        let tag = self.tag();
        let msg = Msg::ParityUpdate {
            row,
            mask_wire: mask.encode().to_vec(),
            uid,
            from_site: site,
            tag,
        };
        match self.request(self.ep_base + parity_site, tag, msg) {
            Some(Msg::Ack { .. }) => Ok(()),
            _ => Err(ClientError::Timeout { site: parity_site }),
        }
    }

    fn probe_spare(
        &mut self,
        row: u64,
    ) -> Result<Option<(usize, Vec<u8>, Uid)>, ClientError> {
        let spare_site = self.geo.spare_site(row);
        let tag = self.tag();
        match self.request(self.ep_base + spare_site, tag, Msg::SpareProbe { row, tag }) {
            Some(Msg::SpareState { slot, .. }) => Ok(slot),
            _ => Err(ClientError::Timeout { site: spare_site }),
        }
    }

    fn install_spare(
        &mut self,
        row: u64,
        for_site: usize,
        data: &[u8],
        uid: Uid,
    ) -> Result<(), ClientError> {
        let spare_site = self.geo.spare_site(row);
        let tag = self.tag();
        let msg = Msg::SpareInstall {
            row,
            for_site,
            data: data.to_vec(),
            uid,
            tag,
        };
        match self.request(self.ep_base + spare_site, tag, msg) {
            Some(Msg::Ack { .. }) => Ok(()),
            _ => Err(ClientError::Timeout { site: spare_site }),
        }
    }

    /// Formula (2) with §3.3 validation and retry: `BlockRead` from each of
    /// the `G` surviving sites, compare every data UID against the parity
    /// site's array, XOR on success. Returns the data and the UID the
    /// parity array holds for the failed site (for a consistent spare
    /// install).
    fn reconstruct(&mut self, owner: usize, row: u64) -> Result<(Vec<u8>, Uid), ClientError> {
        let spare_site = self.geo.spare_site(row);
        let parity_site = self.geo.parity_site(row);
        let sources: Vec<usize> = (0..self.geo.num_sites())
            .filter(|&s| s != owner && s != spare_site)
            .collect();
        'attempt: for _ in 0..RECONSTRUCT_RETRIES {
            let mut acc = vec![0u8; self.block_size];
            let mut uids: Vec<(usize, Uid)> = Vec::new();
            let mut parity_array: Option<UidArray> = None;
            for &s in &sources {
                if self.down[s] {
                    return Err(ClientError::MultipleFailure);
                }
                let tag = self.tag();
                match self.request(self.ep_base + s, tag, Msg::BlockRead { row, tag }) {
                    Some(Msg::BlockData {
                        data,
                        uid,
                        parity_uids,
                        ..
                    }) => {
                        xor_in_place(&mut acc, &data);
                        if s == parity_site {
                            let mut arr = UidArray::new(self.geo.num_sites());
                            for (i, u) in parity_uids
                                .expect("parity site returns its array")
                                .into_iter()
                                .enumerate()
                            {
                                arr.set(i, u);
                            }
                            parity_array = Some(arr);
                        } else {
                            uids.push((s, uid));
                        }
                    }
                    _ => return Err(ClientError::Timeout { site: s }),
                }
            }
            let arr = parity_array.expect("parity site was among the sources");
            // §3.3: any mismatch ⇒ a parity update is in flight; retry.
            for (s, uid) in &uids {
                if !arr.matches(*s, *uid) {
                    std::thread::sleep(Duration::from_millis(5));
                    continue 'attempt;
                }
            }
            return Ok((acc, arr.get(owner)));
        }
        Err(ClientError::Inconsistent)
    }

    /// Recovery drain for a revived site (§3.2's background process, driven
    /// from here): for every spare standing in for it, restore the block at
    /// the revived site first, *then* invalidate the spare — so a lost
    /// reply at any step leaves the data reachable and every step safe to
    /// retry. Returns the number of blocks drained.
    pub fn recover(&mut self, site: usize) -> Result<u64, ClientError> {
        let mut drained = 0;
        for s in 0..self.geo.num_sites() {
            if s == site {
                continue;
            }
            let tag = self.tag();
            let rows = match self.request(
                self.ep_base + s,
                tag,
                Msg::SpareDrainList { for_site: site, tag },
            ) {
                Some(Msg::SpareRows { rows, .. }) => rows,
                _ => return Err(ClientError::Timeout { site: s }),
            };
            for row in rows {
                // Non-destructive read of the spare contents.
                let tag = self.tag();
                let (for_site, data, uid) = match self.request(
                    self.ep_base + s,
                    tag,
                    Msg::SpareProbe { row, tag },
                ) {
                    Some(Msg::SpareState { slot: Some(slot), .. }) => slot,
                    Some(Msg::SpareState { slot: None, .. }) => continue, // raced away
                    _ => return Err(ClientError::Timeout { site: s }),
                };
                debug_assert_eq!(for_site, site);
                // Land the block at the restored site.
                let tag = self.tag();
                let msg = Msg::RestoreBlock { row, data, uid, tag };
                match self.request(self.ep_base + site, tag, msg) {
                    Some(Msg::Ack { .. }) => {}
                    _ => return Err(ClientError::Timeout { site }),
                }
                // Only now invalidate the spare; if the reply is lost a
                // resend simply observes the empty slot.
                let tag = self.tag();
                match self.request(self.ep_base + s, tag, Msg::SpareTake { row, tag }) {
                    Some(Msg::SpareState { .. }) => drained += 1,
                    _ => return Err(ClientError::Timeout { site: s }),
                }
            }
        }
        Ok(drained)
    }

    /// Verify the stripe invariant over every row by reading all blocks
    /// (requires every site up). Returns the first violated row.
    pub fn verify_parity(&mut self) -> Result<(), String> {
        for row in 0..self.geo.rows() {
            let parity_site = self.geo.parity_site(row);
            let spare_site = self.geo.spare_site(row);
            let mut acc = vec![0u8; self.block_size];
            let mut parity = vec![0u8; self.block_size];
            for s in 0..self.geo.num_sites() {
                if s == spare_site {
                    continue;
                }
                let tag = self.tag();
                match self.request(self.ep_base + s, tag, Msg::BlockRead { row, tag }) {
                    Some(Msg::BlockData { data, .. }) => {
                        if s == parity_site {
                            parity = data;
                        } else {
                            xor_in_place(&mut acc, &data);
                        }
                    }
                    _ => return Err(format!("site {s} did not answer for row {row}")),
                }
            }
            if acc != parity {
                return Err(format!("parity mismatch in row {row}"));
            }
        }
        Ok(())
    }
}

fn map_nack(reason: NackReason) -> ClientError {
    match reason {
        NackReason::OutOfRange => ClientError::OutOfRange,
        NackReason::BadSize => ClientError::BadSize,
        NackReason::Down => ClientError::MultipleFailure,
    }
}
