//! The per-site server thread: a [`SiteMachine`] driven by a real event
//! loop.
//!
//! All protocol logic — W1–W4 deferred acks, the parity UID idempotence
//! guard, stop-and-wait per-row retransmission, spare slots, the
//! at-most-once reply cache — lives in [`radd_protocol::SiteMachine`]. This
//! module owns only what the sans-IO machine cannot: the endpoint, the
//! wall clock, and the control channel. Each loop iteration
//!
//! 1. drains harness control commands,
//! 2. fires due retransmit timers into [`SiteMachine::on_timer`],
//! 3. feeds one inbound message into [`SiteMachine::handle`],
//!
//! and interprets the resulting effects: `Send` → endpoint send, `SetTimer`
//! → an exponential-backoff deadline in the local timer wheel, `ClearTimer`
//! → disarm. Block I/O receipts need no interpretation here (the machine
//! already performed the I/O against its in-memory [`MemBlocks`]).
//!
//! Fault harnesses must quiesce a site (wait for its pending table to
//! drain, via [`Control::QueryPending`]) before killing it: a temporary
//! failure with an in-doubt parity update would otherwise leave data and
//! parity divergent, which is the §6 in-doubt-transaction problem the
//! paper resolves with coordinator logs that this in-memory runtime does
//! not model.

use crate::message::Msg;
use radd_net::ThreadedEndpoint;
use radd_obs::{MachineObs, MachineSnapshot};
use radd_protocol::{trace, CoalescePolicy, Dest, Effect, MemBlocks, SiteMachine, TraceEntry};
use std::collections::BTreeMap;
use std::sync::mpsc::Receiver;
use std::time::{Duration, Instant};

/// First retransmission delay for an unacked parity update.
const RETRANSMIT_BASE_MS: u64 = 40;
/// Retransmission backoff ceiling.
const RETRANSMIT_CAP_MS: u64 = 640;

fn backoff(step: u32) -> Duration {
    Duration::from_millis((RETRANSMIT_BASE_MS << step.min(10)).min(RETRANSMIT_CAP_MS))
}

/// Control-plane commands (out of band, from the test harness).
#[derive(Debug)]
pub enum Control {
    /// Mark the site down (refuse protocol messages) or back up. The ack
    /// channel makes the transition synchronous: the harness knows the
    /// site has crossed the boundary before it issues further traffic
    /// (otherwise a revive could be observed *before* the kill, leaving
    /// the site transiently deaf).
    SetDown(bool, std::sync::mpsc::Sender<()>),
    /// Report how many writes are still waiting for a parity ack. The
    /// harness polls this to quiesce the cluster before failure injection
    /// or invariant checks.
    QueryPending(std::sync::mpsc::Sender<usize>),
    /// Report whether no request of this site is awaiting an ack
    /// ([`SiteMachine::all_acked`]).
    QueryAllAcked(std::sync::mpsc::Sender<bool>),
    /// Start (`true`) or stop recording the site's normalised effect trace
    /// (for differential tests against the DES interpreter).
    RecordTrace(bool, std::sync::mpsc::Sender<()>),
    /// Hand over the recorded trace, clearing the buffer.
    TakeTrace(std::sync::mpsc::Sender<Vec<TraceEntry>>),
    /// Freeze and hand over the site's metrics + flight-recorder snapshot.
    /// Served from the control drain, so it works even while the site is
    /// marked down — exactly when the flight recorder is most interesting.
    QueryObs(std::sync::mpsc::Sender<MachineSnapshot>),
    /// Stop the thread.
    Shutdown,
}

/// Static site parameters.
#[derive(Debug, Clone, Copy)]
pub struct SiteConfig {
    /// This site's id (0-based).
    pub site: usize,
    /// Group size `G`.
    pub group_size: usize,
    /// Block rows.
    pub rows: u64,
    /// Block size in bytes.
    pub block_size: usize,
    /// Endpoint id of site 0 (clients occupy the endpoints below it).
    pub ep_base: usize,
    /// Parity-update coalescing policy. The threaded runtime defaults to
    /// [`CoalescePolicy::Merge`] (queued masks for a row XOR-merge while an
    /// update is in flight); differential harnesses pass
    /// [`CoalescePolicy::Off`] to stay message-for-message identical to the
    /// DES interpreter.
    pub coalesce: CoalescePolicy,
}

struct SiteDriver {
    cfg: SiteConfig,
    machine: SiteMachine,
    blocks: MemBlocks,
    down: bool,
    /// Retransmit deadlines by outstanding tag.
    timers: BTreeMap<u64, Instant>,
    trace: Option<Vec<TraceEntry>>,
    /// Always-on metrics + flight recorder, tapped off the effect stream.
    /// Recording is fixed-cost (dense counters, a ring overwrite), so it
    /// stays enabled even when nobody will ever snapshot it.
    obs: MachineObs,
}

impl SiteDriver {
    fn interpret(&mut self, ep: &ThreadedEndpoint<Msg>, out: Vec<Effect>) {
        let now = Instant::now();
        for eff in out {
            if let Some(buf) = &mut self.trace {
                if let Some(e) = trace(&eff) {
                    buf.push(e);
                }
            }
            self.obs.effect(&eff);
            match eff {
                Effect::Send { to, msg, .. } => {
                    let dst = match to {
                        Dest::Site(s) => self.cfg.ep_base + s,
                        Dest::Peer(p) => p,
                    };
                    let _ = ep.send(dst, msg);
                }
                Effect::SetTimer { tag, step } => {
                    self.timers.insert(tag, now + backoff(step));
                }
                Effect::ClearTimer { tag } => {
                    self.timers.remove(&tag);
                }
                // The machine already performed the I/O on `blocks`; the
                // receipts matter only to cost-accounting drivers.
                Effect::Read { .. } | Effect::Write { .. } | Effect::DeferAck { .. } => {}
                // Disk-fault escalations cannot happen here: MemBlocks
                // never faults and this runtime injects no disk failures.
                Effect::NeedParityRebuild { .. } | Effect::ParityUnservable { .. } => {
                    debug_assert!(false, "disk-fault escalation in a faultless runtime");
                }
            }
        }
    }

    /// Fire every retransmit timer whose deadline has passed. The resend
    /// may itself be dropped by loss injection or refused during a
    /// partition; either way the timer re-arms with a doubled delay, so
    /// convergence only needs the loss probability to be below certainty
    /// and partitions to eventually heal.
    fn fire_due_timers(&mut self, ep: &ThreadedEndpoint<Msg>) {
        let now = Instant::now();
        let due: Vec<u64> = self
            .timers
            .iter()
            .filter(|&(_, &at)| at <= now)
            .map(|(&tag, _)| tag)
            .collect();
        for tag in due {
            self.timers.remove(&tag);
            let mut out = Vec::new();
            self.machine.on_timer(tag, &mut out);
            self.interpret(ep, out);
        }
    }
}

/// Run the site event loop until shutdown.
pub fn run_site(cfg: SiteConfig, ep: &ThreadedEndpoint<Msg>, control: &Receiver<Control>) {
    let mut machine = SiteMachine::new(cfg.site, cfg.group_size, cfg.rows, cfg.block_size);
    machine.set_coalesce(cfg.coalesce);
    let mut st = SiteDriver {
        machine,
        blocks: MemBlocks::new(cfg.rows, cfg.block_size),
        down: false,
        timers: BTreeMap::new(),
        trace: None,
        obs: MachineObs::new(),
        cfg,
    };
    loop {
        // Drain the whole control backlog first (non-blocking), then serve
        // protocol traffic.
        loop {
            match control.try_recv() {
                Ok(Control::SetDown(d, ack)) => {
                    st.down = d;
                    let _ = ack.send(());
                }
                Ok(Control::QueryPending(reply)) => {
                    let _ = reply.send(st.machine.pending_writes());
                }
                Ok(Control::QueryAllAcked(reply)) => {
                    let _ = reply.send(st.machine.all_acked());
                }
                Ok(Control::RecordTrace(on, ack)) => {
                    st.trace = if on { Some(Vec::new()) } else { None };
                    let _ = ack.send(());
                }
                Ok(Control::TakeTrace(reply)) => {
                    let buf = st.trace.replace(Vec::new()).unwrap_or_default();
                    let _ = reply.send(buf);
                }
                Ok(Control::QueryObs(reply)) => {
                    // Coalesced merges are counted inside the machine;
                    // mirror them into the gauge at snapshot time.
                    let merges = st.machine.coalesced_merges();
                    st.obs.metrics().set_coalesced_merges(merges);
                    let name = format!("site {}", st.cfg.site);
                    let _ = reply.send(st.obs.snapshot(&name));
                }
                Ok(Control::Shutdown) => return,
                Err(std::sync::mpsc::TryRecvError::Disconnected) => return,
                Err(std::sync::mpsc::TryRecvError::Empty) => break,
            }
        }
        if !st.down {
            st.fire_due_timers(ep);
        }
        let Ok(inbound) = ep.recv_timeout(Duration::from_millis(20)) else {
            continue;
        };
        // A down site answers nothing, and its own pending acks never
        // arrive either — exactly a crashed process from the network's
        // point of view. (We swallow the message rather than queueing.)
        if st.down {
            continue;
        }
        let mut out = Vec::new();
        st.machine
            .handle(&mut st.blocks, inbound.src, inbound.payload, &mut out);
        st.interpret(ep, out);
    }
}
