//! The per-site server thread.
//!
//! One event loop per site, owning all site state. The only subtlety is
//! the write path: W1 happens locally, the W3 parity message goes out, and
//! the client's `WriteOk` is **deferred** until the parity site's ack
//! arrives (a pending table keyed by the parity message's tag) — so no
//! site ever blocks waiting on another site, and cyclic waits cannot form.

use crate::message::{Msg, NackReason};
use radd_blockdev::{BlockDevice, MemDisk};
use radd_layout::Geometry;
use radd_net::ThreadedEndpoint;
use radd_parity::{ChangeMask, Uid, UidArray, UidGen};
use std::collections::HashMap;
use std::sync::mpsc::Receiver;
use std::time::Duration;

/// Control-plane commands (out of band, from the test harness).
#[derive(Debug)]
pub enum Control {
    /// Mark the site down (refuse protocol messages) or back up. The ack
    /// channel makes the transition synchronous: the harness knows the
    /// site has crossed the boundary before it issues further traffic
    /// (otherwise a revive could be observed *before* the kill, leaving
    /// the site transiently deaf).
    SetDown(bool, std::sync::mpsc::Sender<()>),
    /// Stop the thread.
    Shutdown,
}

/// Static site parameters.
#[derive(Debug, Clone, Copy)]
pub struct SiteConfig {
    /// This site's id (0-based).
    pub site: usize,
    /// Group size `G`.
    pub group_size: usize,
    /// Block rows.
    pub rows: u64,
    /// Block size in bytes.
    pub block_size: usize,
    /// Endpoint id of site 0 (clients occupy the endpoints below it).
    pub ep_base: usize,
}

struct SpareSlot {
    for_site: usize,
    uid: Uid,
}

/// A write whose client reply is waiting for a parity ack.
struct PendingWrite {
    client: usize,
    client_tag: u64,
}

struct SiteState {
    cfg: SiteConfig,
    geo: Geometry,
    disk: MemDisk,
    block_uids: Vec<Uid>,
    parity_uids: HashMap<u64, UidArray>,
    spares: HashMap<u64, SpareSlot>,
    uid_gen: UidGen,
    down: bool,
    next_tag: u64,
    pending: HashMap<u64, PendingWrite>,
}

impl SiteState {
    fn new(cfg: SiteConfig) -> SiteState {
        SiteState {
            geo: Geometry::new(cfg.group_size, cfg.rows).expect("valid geometry"),
            disk: MemDisk::new(cfg.rows, cfg.block_size),
            block_uids: vec![Uid::INVALID; cfg.rows as usize],
            parity_uids: HashMap::new(),
            spares: HashMap::new(),
            uid_gen: UidGen::new(cfg.site as u16),
            down: false,
            next_tag: 0,
            pending: HashMap::new(),
            cfg,
        }
    }

    fn fresh_tag(&mut self) -> u64 {
        self.next_tag += 1;
        // Site-unique tag space: site id in the high bits.
        ((self.cfg.site as u64 + 1) << 48) | self.next_tag
    }

    fn num_sites(&self) -> usize {
        self.cfg.group_size + 2
    }
}



/// Run the site event loop until shutdown.
pub fn run_site(cfg: SiteConfig, ep: ThreadedEndpoint<Msg>, control: Receiver<Control>) {
    let mut st = SiteState::new(cfg);
    loop {
        // Drain the whole control backlog first (non-blocking), then serve
        // protocol traffic.
        loop {
            match control.try_recv() {
                Ok(Control::SetDown(d, ack)) => {
                    st.down = d;
                    let _ = ack.send(());
                }
                Ok(Control::Shutdown) => return,
                Err(std::sync::mpsc::TryRecvError::Disconnected) => return,
                Err(std::sync::mpsc::TryRecvError::Empty) => break,
            }
        }
        let inbound = match ep.recv_timeout(Duration::from_millis(20)) {
            Ok(m) => m,
            Err(_) => continue,
        };
        let src = inbound.src;
        let msg = inbound.payload;
        // A down site answers nothing except its own pending acks never
        // arrive either — exactly a crashed process from the network's
        // point of view. (We do swallow the message rather than queueing.)
        if st.down {
            continue;
        }
        handle(&mut st, &ep, src, msg);
    }
}

fn nack(ep: &ThreadedEndpoint<Msg>, to: usize, tag: u64, reason: NackReason) {
    let _ = ep.send(to, Msg::Nack { tag, reason });
}

fn handle(st: &mut SiteState, ep: &ThreadedEndpoint<Msg>, src: usize, msg: Msg) {
    match msg {
        Msg::Read { index, tag } => {
            if index >= st.geo.data_capacity(st.cfg.site) {
                return nack(ep, src, tag, NackReason::OutOfRange);
            }
            let row = st.geo.data_to_physical(st.cfg.site, index);
            let data = st.disk.read_block(row).expect("in range").to_vec();
            let _ = ep.send(src, Msg::ReadOk { tag, data });
        }
        Msg::Write { index, data, tag } => {
            if index >= st.geo.data_capacity(st.cfg.site) {
                return nack(ep, src, tag, NackReason::OutOfRange);
            }
            if data.len() != st.cfg.block_size {
                return nack(ep, src, tag, NackReason::BadSize);
            }
            let row = st.geo.data_to_physical(st.cfg.site, index);
            // W1: local write with a fresh UID (old value from the "buffer
            // pool" — our own disk).
            let old = st.disk.read_block(row).expect("in range");
            let uid = st.uid_gen.next_uid();
            st.disk.write_block(row, &data).expect("in range");
            st.block_uids[row as usize] = uid;
            // W2–W3: mask to the parity site; defer the client reply until
            // the ack (the §6 "done = prepared" discipline).
            let mask = ChangeMask::diff(&old, &data);
            let parity_site = st.geo.parity_site(row);
            let ptag = st.fresh_tag();
            st.pending.insert(
                ptag,
                PendingWrite {
                    client: src,
                    client_tag: tag,
                },
            );
            let _ = ep.send(
                st.cfg.ep_base + parity_site,
                Msg::ParityUpdate {
                    row,
                    mask_wire: mask.encode().to_vec(),
                    uid,
                    from_site: st.cfg.site,
                    tag: ptag,
                },
            );
        }
        Msg::ParityUpdate {
            row,
            mask_wire,
            uid,
            from_site,
            tag,
        } => {
            debug_assert_eq!(st.geo.parity_site(row), st.cfg.site);
            let mask = ChangeMask::decode(&mask_wire).expect("well-formed mask");
            let mut parity = st.disk.read_block(row).expect("in range").to_vec();
            mask.apply(&mut parity); // formula (1)
            st.disk.write_block(row, &parity).expect("in range");
            let n = st.num_sites();
            st.parity_uids
                .entry(row)
                .or_insert_with(|| UidArray::new(n))
                .set(from_site, uid); // W4
            let _ = ep.send(src, Msg::Ack { tag });
        }
        Msg::Ack { tag } => {
            // A parity ack completing one of our writes.
            if let Some(p) = st.pending.remove(&tag) {
                let _ = ep.send(p.client, Msg::WriteOk { tag: p.client_tag });
            }
        }
        Msg::SpareProbe { row, tag } => {
            debug_assert_eq!(st.geo.spare_site(row), st.cfg.site);
            let slot = st.spares.get(&row).map(|s| {
                let data = st.disk.read_block(row).expect("in range").to_vec();
                (s.for_site, data, s.uid)
            });
            let _ = ep.send(src, Msg::SpareState { tag, slot });
        }
        Msg::SpareInstall {
            row,
            for_site,
            data,
            uid,
            tag,
        } => {
            st.disk.write_block(row, &data).expect("in range");
            st.spares.insert(row, SpareSlot { for_site, uid });
            let _ = ep.send(src, Msg::Ack { tag });
        }
        Msg::BlockRead { row, tag } => {
            let data = st.disk.read_block(row).expect("in range").to_vec();
            let parity_uids = if st.geo.parity_site(row) == st.cfg.site {
                let n = st.num_sites();
                Some(
                    st.parity_uids
                        .get(&row)
                        .cloned()
                        .unwrap_or_else(|| UidArray::new(n))
                        .slots()
                        .to_vec(),
                )
            } else {
                None
            };
            let _ = ep.send(
                src,
                Msg::BlockData {
                    tag,
                    data,
                    uid: st.block_uids[row as usize],
                    parity_uids,
                },
            );
        }
        Msg::SpareDrainList { for_site, tag } => {
            let rows: Vec<u64> = st
                .spares
                .iter()
                .filter(|(_, s)| s.for_site == for_site)
                .map(|(&r, _)| r)
                .collect();
            let _ = ep.send(src, Msg::SpareRows { tag, rows });
        }
        Msg::SpareTake { row, tag } => {
            let slot = st.spares.remove(&row).map(|s| {
                let data = st.disk.read_block(row).expect("in range").to_vec();
                (s.for_site, data, s.uid)
            });
            let _ = ep.send(src, Msg::SpareState { tag, slot });
        }
        Msg::RestoreBlock { row, data, uid, tag } => {
            st.disk.write_block(row, &data).expect("in range");
            st.block_uids[row as usize] = uid;
            let _ = ep.send(src, Msg::Ack { tag });
        }
        // Replies that reach a site outside the pending table are stale
        // (e.g. an ack for a write whose site restarted): drop them.
        Msg::ReadOk { .. }
        | Msg::WriteOk { .. }
        | Msg::Nack { .. }
        | Msg::BlockData { .. }
        | Msg::SpareState { .. }
        | Msg::SpareRows { .. } => {}
    }
}
