//! The per-site server thread.
//!
//! One event loop per site, owning all site state. Two subtleties:
//!
//! * **Deferred write acks.** W1 happens locally, the W3 parity message
//!   goes out, and the client's `WriteOk` is deferred until the parity
//!   site's ack arrives (a pending table keyed by the parity message's
//!   tag) — so no site ever blocks waiting on another site, and cyclic
//!   waits cannot form.
//! * **Retransmission with backoff.** The network may drop messages (see
//!   [`radd_net::ThreadedNet::set_loss`]); a pending parity update is
//!   resent on an exponential-backoff timer until its ack arrives. The
//!   parity site applies updates *idempotently* — a retransmission whose
//!   mask was already applied (same UID already recorded in the row's UID
//!   array slot) is acknowledged without touching the parity block, so a
//!   lost ack never double-applies a change mask. Because the UID guard
//!   only remembers the *latest* UID per slot, updates for one row are
//!   sent **stop-and-wait**: a second write to a block queues its mask
//!   until the first's ack arrives, otherwise a retransmitted first mask
//!   could land after the second and XOR itself in twice.
//!
//! Fault harnesses must quiesce a site (wait for its pending table to
//! drain, via [`Control::QueryPending`]) before killing it: a temporary
//! failure with an in-doubt parity update would otherwise leave data and
//! parity divergent, which is the §6 in-doubt-transaction problem the
//! paper resolves with coordinator logs that this in-memory runtime does
//! not model.

use crate::message::{Msg, NackReason};
use radd_blockdev::{BlockDevice, MemDisk};
use radd_layout::Geometry;
use radd_net::threaded::ReliableChannel;
use radd_net::ThreadedEndpoint;
use radd_parity::{ChangeMask, Uid, UidArray, UidGen};
use std::collections::{HashMap, VecDeque};
use std::sync::mpsc::Receiver;
use std::time::{Duration, Instant};

/// First retransmission delay for an unacked parity update.
const RETRANSMIT_BASE: Duration = Duration::from_millis(40);
/// Retransmission backoff ceiling.
const RETRANSMIT_CAP: Duration = Duration::from_millis(640);

/// Control-plane commands (out of band, from the test harness).
#[derive(Debug)]
pub enum Control {
    /// Mark the site down (refuse protocol messages) or back up. The ack
    /// channel makes the transition synchronous: the harness knows the
    /// site has crossed the boundary before it issues further traffic
    /// (otherwise a revive could be observed *before* the kill, leaving
    /// the site transiently deaf).
    SetDown(bool, std::sync::mpsc::Sender<()>),
    /// Report how many writes are still waiting for a parity ack. The
    /// harness polls this to quiesce the cluster before failure injection
    /// or invariant checks.
    QueryPending(std::sync::mpsc::Sender<usize>),
    /// Report whether the site's retransmission channel has no unacked
    /// parity updates in flight ([`ReliableChannel::all_acked`]).
    QueryAllAcked(std::sync::mpsc::Sender<bool>),
    /// Stop the thread.
    Shutdown,
}

/// Static site parameters.
#[derive(Debug, Clone, Copy)]
pub struct SiteConfig {
    /// This site's id (0-based).
    pub site: usize,
    /// Group size `G`.
    pub group_size: usize,
    /// Block rows.
    pub rows: u64,
    /// Block size in bytes.
    pub block_size: usize,
    /// Endpoint id of site 0 (clients occupy the endpoints below it).
    pub ep_base: usize,
}

struct SpareSlot {
    for_site: usize,
    uid: Uid,
}

/// A write whose client reply is waiting for a parity ack (the outbound
/// parity message itself lives in the site's [`ReliableChannel`] or, if
/// an earlier update for the same row is still unacked, in the row's
/// stop-and-wait queue).
struct PendingWrite {
    client: usize,
    client_tag: u64,
    row: u64,
}

struct SiteState {
    cfg: SiteConfig,
    geo: Geometry,
    disk: MemDisk,
    block_uids: Vec<Uid>,
    parity_uids: HashMap<u64, UidArray>,
    spares: HashMap<u64, SpareSlot>,
    uid_gen: UidGen,
    down: bool,
    next_tag: u64,
    pending: HashMap<u64, PendingWrite>,
    /// Retransmission tracker for the *in-flight* parity updates, keyed by
    /// the same tags as `pending`. Because each non-empty row queue keeps
    /// its head tracked here, `rel.all_acked()` ⇔ `pending.is_empty()`.
    rel: ReliableChannel<Msg>,
    /// Stop-and-wait per row: the front entry is in flight, the rest wait
    /// for its ack. At most one UID per (row, site) is ever outstanding,
    /// so a retransmission can never race a *later* update for the same
    /// slot — without this, a dropped ack followed by a second write to
    /// the block lets the retransmitted first mask re-apply on top of the
    /// second (the parity site's UID guard only remembers the latest UID).
    parity_queue: HashMap<u64, VecDeque<(u64, Msg)>>,
}

impl SiteState {
    fn new(cfg: SiteConfig) -> SiteState {
        SiteState {
            geo: Geometry::new(cfg.group_size, cfg.rows).expect("valid geometry"),
            disk: MemDisk::new(cfg.rows, cfg.block_size),
            block_uids: vec![Uid::INVALID; cfg.rows as usize],
            parity_uids: HashMap::new(),
            spares: HashMap::new(),
            uid_gen: UidGen::new(cfg.site as u16),
            down: false,
            next_tag: 0,
            pending: HashMap::new(),
            rel: ReliableChannel::new(RETRANSMIT_BASE, RETRANSMIT_CAP),
            parity_queue: HashMap::new(),
            cfg,
        }
    }

    fn fresh_tag(&mut self) -> u64 {
        self.next_tag += 1;
        // Site-unique tag space: site id in the high bits.
        ((self.cfg.site as u64 + 1) << 48) | self.next_tag
    }

    fn num_sites(&self) -> usize {
        self.cfg.group_size + 2
    }
}



/// Run the site event loop until shutdown.
pub fn run_site(cfg: SiteConfig, ep: ThreadedEndpoint<Msg>, control: Receiver<Control>) {
    let mut st = SiteState::new(cfg);
    loop {
        // Drain the whole control backlog first (non-blocking), then serve
        // protocol traffic.
        loop {
            match control.try_recv() {
                Ok(Control::SetDown(d, ack)) => {
                    st.down = d;
                    let _ = ack.send(());
                }
                Ok(Control::QueryPending(reply)) => {
                    let _ = reply.send(st.pending.len());
                }
                Ok(Control::QueryAllAcked(reply)) => {
                    let _ = reply.send(st.rel.all_acked());
                }
                Ok(Control::Shutdown) => return,
                Err(std::sync::mpsc::TryRecvError::Disconnected) => return,
                Err(std::sync::mpsc::TryRecvError::Empty) => break,
            }
        }
        if !st.down {
            retransmit_due(&mut st, &ep);
        }
        let inbound = match ep.recv_timeout(Duration::from_millis(20)) {
            Ok(m) => m,
            Err(_) => continue,
        };
        let src = inbound.src;
        let msg = inbound.payload;
        // A down site answers nothing except its own pending acks never
        // arrive either — exactly a crashed process from the network's
        // point of view. (We do swallow the message rather than queueing.)
        if st.down {
            continue;
        }
        handle(&mut st, &ep, src, msg);
    }
}

/// Resend every pending parity update whose backoff timer has expired.
/// The send may itself be dropped by loss injection or refused during a
/// partition; either way the timer doubles and the update stays queued, so
/// convergence only needs the loss probability to be below certainty and
/// partitions to eventually heal.
fn retransmit_due(st: &mut SiteState, ep: &ThreadedEndpoint<Msg>) {
    for (dst, msg) in st.rel.due(Instant::now()) {
        let _ = ep.send(dst, msg);
    }
}

fn nack(ep: &ThreadedEndpoint<Msg>, to: usize, tag: u64, reason: NackReason) {
    let _ = ep.send(to, Msg::Nack { tag, reason });
}

fn handle(st: &mut SiteState, ep: &ThreadedEndpoint<Msg>, src: usize, msg: Msg) {
    match msg {
        Msg::Read { index, tag } => {
            if index >= st.geo.data_capacity(st.cfg.site) {
                return nack(ep, src, tag, NackReason::OutOfRange);
            }
            let row = st.geo.data_to_physical(st.cfg.site, index);
            let data = st.disk.read_block(row).expect("in range").to_vec();
            let _ = ep.send(src, Msg::ReadOk { tag, data });
        }
        Msg::Write { index, data, tag } => {
            if index >= st.geo.data_capacity(st.cfg.site) {
                return nack(ep, src, tag, NackReason::OutOfRange);
            }
            if data.len() != st.cfg.block_size {
                return nack(ep, src, tag, NackReason::BadSize);
            }
            let row = st.geo.data_to_physical(st.cfg.site, index);
            // W1: local write with a fresh UID (old value from the "buffer
            // pool" — our own disk).
            let old = st.disk.read_block(row).expect("in range");
            let uid = st.uid_gen.next_uid();
            st.disk.write_block(row, &data).expect("in range");
            st.block_uids[row as usize] = uid;
            // W2–W3: mask to the parity site; defer the client reply until
            // the ack (the §6 "done = prepared" discipline).
            let mask = ChangeMask::diff(&old, &data);
            let parity_site = st.geo.parity_site(row);
            let ptag = st.fresh_tag();
            let parity_ep = st.cfg.ep_base + parity_site;
            let update = Msg::ParityUpdate {
                row,
                mask_wire: mask.encode().to_vec(),
                uid,
                from_site: st.cfg.site,
                tag: ptag,
            };
            st.pending.insert(
                ptag,
                PendingWrite {
                    client: src,
                    client_tag: tag,
                    row,
                },
            );
            // Stop-and-wait per row: send immediately only if no earlier
            // update for this row is still awaiting its ack.
            let queue = st.parity_queue.entry(row).or_default();
            queue.push_back((ptag, update.clone()));
            if queue.len() == 1 {
                let _ = ep.send(parity_ep, update.clone());
                st.rel.track(ptag, parity_ep, update);
            }
        }
        Msg::ParityUpdate {
            row,
            mask_wire,
            uid,
            from_site,
            tag,
        } => {
            debug_assert_eq!(st.geo.parity_site(row), st.cfg.site);
            let n = st.num_sites();
            let uids = st
                .parity_uids
                .entry(row)
                .or_insert_with(|| UidArray::new(n));
            // Idempotence: a retransmission whose ack was lost arrives with
            // a UID this slot already records — re-applying its XOR mask
            // would corrupt the parity block, so just ack again.
            if uids.get(from_site) != uid {
                let mask = ChangeMask::decode(&mask_wire).expect("well-formed mask");
                let mut parity = st.disk.read_block(row).expect("in range").to_vec();
                mask.apply(&mut parity); // formula (1)
                st.disk.write_block(row, &parity).expect("in range");
                st.parity_uids
                    .entry(row)
                    .or_insert_with(|| UidArray::new(n))
                    .set(from_site, uid); // W4
            }
            let _ = ep.send(src, Msg::Ack { tag });
        }
        Msg::Ack { tag } => {
            // A parity ack completing one of our writes; duplicate acks
            // (from retransmissions whose originals also got through) fall
            // out of the pending table as no-ops.
            st.rel.ack(tag);
            if let Some(p) = st.pending.remove(&tag) {
                let _ = ep.send(p.client, Msg::WriteOk { tag: p.client_tag });
                // Advance the row's stop-and-wait queue: launch the next
                // queued update now that its predecessor is applied.
                if let Some(queue) = st.parity_queue.get_mut(&p.row) {
                    if queue.front().map(|&(t, _)| t) == Some(tag) {
                        queue.pop_front();
                    }
                    if let Some((next_tag, next)) = queue.front().cloned() {
                        let parity_ep = st.cfg.ep_base + st.geo.parity_site(p.row);
                        let _ = ep.send(parity_ep, next.clone());
                        st.rel.track(next_tag, parity_ep, next);
                    } else {
                        st.parity_queue.remove(&p.row);
                    }
                }
            }
        }
        Msg::SpareProbe { row, tag } => {
            debug_assert_eq!(st.geo.spare_site(row), st.cfg.site);
            let slot = st.spares.get(&row).map(|s| {
                let data = st.disk.read_block(row).expect("in range").to_vec();
                (s.for_site, data, s.uid)
            });
            let _ = ep.send(src, Msg::SpareState { tag, slot });
        }
        Msg::SpareInstall {
            row,
            for_site,
            data,
            uid,
            tag,
        } => {
            st.disk.write_block(row, &data).expect("in range");
            st.spares.insert(row, SpareSlot { for_site, uid });
            let _ = ep.send(src, Msg::Ack { tag });
        }
        Msg::BlockRead { row, tag } => {
            let data = st.disk.read_block(row).expect("in range").to_vec();
            let parity_uids = if st.geo.parity_site(row) == st.cfg.site {
                let n = st.num_sites();
                Some(
                    st.parity_uids
                        .get(&row)
                        .cloned()
                        .unwrap_or_else(|| UidArray::new(n))
                        .slots()
                        .to_vec(),
                )
            } else {
                None
            };
            let _ = ep.send(
                src,
                Msg::BlockData {
                    tag,
                    data,
                    uid: st.block_uids[row as usize],
                    parity_uids,
                },
            );
        }
        Msg::SpareDrainList { for_site, tag } => {
            let rows: Vec<u64> = st
                .spares
                .iter()
                .filter(|(_, s)| s.for_site == for_site)
                .map(|(&r, _)| r)
                .collect();
            let _ = ep.send(src, Msg::SpareRows { tag, rows });
        }
        Msg::SpareTake { row, tag } => {
            let slot = st.spares.remove(&row).map(|s| {
                let data = st.disk.read_block(row).expect("in range").to_vec();
                (s.for_site, data, s.uid)
            });
            let _ = ep.send(src, Msg::SpareState { tag, slot });
        }
        Msg::RestoreBlock { row, data, uid, tag } => {
            st.disk.write_block(row, &data).expect("in range");
            st.block_uids[row as usize] = uid;
            let _ = ep.send(src, Msg::Ack { tag });
        }
        // Replies that reach a site outside the pending table are stale
        // (e.g. an ack for a write whose site restarted): drop them.
        Msg::ReadOk { .. }
        | Msg::WriteOk { .. }
        | Msg::Nack { .. }
        | Msg::BlockData { .. }
        | Msg::SpareState { .. }
        | Msg::SpareRows { .. } => {}
    }
}
