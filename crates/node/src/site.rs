//! The per-site server thread: a [`SiteMachine`] driven by a real event
//! loop.
//!
//! All protocol logic — W1–W4 deferred acks, the parity UID idempotence
//! guard, stop-and-wait per-row retransmission, spare slots, the
//! at-most-once reply cache — lives in [`radd_protocol::SiteMachine`]. This
//! module owns only what the sans-IO machine cannot: the endpoint, the
//! wall clock, and the control channel. Each loop iteration
//!
//! 1. drains harness control commands,
//! 2. fires due retransmit timers into [`SiteMachine::on_timer`],
//! 3. feeds one inbound message into [`SiteMachine::handle`],
//!
//! and interprets the resulting effects: `Send` → endpoint send, `SetTimer`
//! → an exponential-backoff deadline in the local timer wheel, `ClearTimer`
//! → disarm. Block I/O receipts need no interpretation here (the machine
//! already performed the I/O against its [`radd_storage::SiteStore`] —
//! in-memory by default, or a durable WAL-backed store when the harness
//! asks for crash/restart coverage).
//!
//! Fault harnesses must quiesce a site (wait for its pending table to
//! drain, via [`Control::QueryPending`]) before killing it: a temporary
//! failure with an in-doubt parity update would otherwise leave data and
//! parity divergent, which is the §6 in-doubt-transaction problem the
//! paper resolves with coordinator logs that this in-memory runtime does
//! not model.

use crate::message::Msg;
use radd_net::{RetryPolicy, ThreadedEndpoint};
use radd_obs::{MachineObs, MachineSnapshot};
use radd_protocol::{
    trace, CoalescePolicy, Dest, DurableSiteState, Effect, IoPurpose, SiteMachine, TraceEntry,
};
use radd_storage::{SiteStore, StorageSpec};
use std::collections::BTreeMap;
use std::sync::mpsc::Receiver;
use std::time::{Duration, Instant};

/// Retransmission schedule for unacked parity updates — the shared policy,
/// so the threaded and socket runtimes stay tuned together.
const RETRANSMIT: RetryPolicy = RetryPolicy::SITE_RETRANSMIT;

/// Control-plane commands (out of band, from the test harness).
#[derive(Debug)]
pub enum Control {
    /// Mark the site down (refuse protocol messages) or back up. The ack
    /// channel makes the transition synchronous: the harness knows the
    /// site has crossed the boundary before it issues further traffic
    /// (otherwise a revive could be observed *before* the kill, leaving
    /// the site transiently deaf).
    SetDown(bool, std::sync::mpsc::Sender<()>),
    /// Report how many writes are still waiting for a parity ack. The
    /// harness polls this to quiesce the cluster before failure injection
    /// or invariant checks.
    QueryPending(std::sync::mpsc::Sender<usize>),
    /// Report whether no request of this site is awaiting an ack
    /// ([`SiteMachine::all_acked`]).
    QueryAllAcked(std::sync::mpsc::Sender<bool>),
    /// Start (`true`) or stop recording the site's normalised effect trace
    /// (for differential tests against the DES interpreter).
    RecordTrace(bool, std::sync::mpsc::Sender<()>),
    /// Hand over the recorded trace, clearing the buffer.
    TakeTrace(std::sync::mpsc::Sender<Vec<TraceEntry>>),
    /// Freeze and hand over the site's metrics + flight-recorder snapshot.
    /// Served from the control drain, so it works even while the site is
    /// marked down — exactly when the flight recorder is most interesting.
    QueryObs(std::sync::mpsc::Sender<MachineSnapshot>),
    /// Process crash + restart: drop the machine, the store, and every
    /// timer, then re-open from the site's durable storage. Replies `true`
    /// when the site actually restarted from disk; a memory-backed site
    /// replies `false` and keeps its state (there is nothing to restart
    /// *from* — losing everything would be a disaster, not a crash).
    KillRestart(std::sync::mpsc::Sender<bool>),
    /// Stop the thread.
    Shutdown,
}

/// Static site parameters.
#[derive(Debug, Clone)]
pub struct SiteConfig {
    /// This site's id (0-based).
    pub site: usize,
    /// Group size `G`.
    pub group_size: usize,
    /// Block rows.
    pub rows: u64,
    /// Block size in bytes.
    pub block_size: usize,
    /// Endpoint id of site 0 (clients occupy the endpoints below it).
    pub ep_base: usize,
    /// Parity-update coalescing policy. The threaded runtime defaults to
    /// [`CoalescePolicy::Merge`] (queued masks for a row XOR-merge while an
    /// update is in flight); differential harnesses pass
    /// [`CoalescePolicy::Off`] to stay message-for-message identical to the
    /// DES interpreter.
    pub coalesce: CoalescePolicy,
    /// Storage backend: volatile memory (default) or a durable
    /// [`radd_storage::DiskBlocks`] directory that survives
    /// [`Control::KillRestart`].
    pub storage: StorageSpec,
}

struct SiteDriver {
    cfg: SiteConfig,
    machine: SiteMachine,
    store: SiteStore,
    down: bool,
    /// Retransmit deadlines by outstanding tag.
    timers: BTreeMap<u64, Instant>,
    trace: Option<Vec<TraceEntry>>,
    /// Always-on metrics + flight recorder, tapped off the effect stream.
    /// Recording is fixed-cost (dense counters, a ring overwrite), so it
    /// stays enabled even when nobody will ever snapshot it.
    obs: MachineObs,
}

impl SiteDriver {
    fn interpret(&mut self, ep: &ThreadedEndpoint<Msg>, out: Vec<Effect>) {
        let now = Instant::now();
        for eff in out {
            if let Some(buf) = &mut self.trace {
                if let Some(e) = trace(&eff) {
                    buf.push(e);
                }
            }
            self.obs.effect(&eff);
            match eff {
                Effect::Send { to, msg, .. } => {
                    let dst = match to {
                        Dest::Site(s) => self.cfg.ep_base + s,
                        Dest::Peer(p) => p,
                    };
                    let _ = ep.send(dst, msg);
                }
                Effect::SetTimer { tag, step } => {
                    self.timers.insert(tag, now + RETRANSMIT.delay(step));
                }
                Effect::ClearTimer { tag } => {
                    self.timers.remove(&tag);
                }
                // The machine already performed the I/O on the store; the
                // receipts matter only to cost-accounting drivers.
                Effect::Read { .. } | Effect::Write { .. } | Effect::DeferAck { .. } => {}
                // Disk-fault escalations cannot happen here: the store
                // never faults in-range and this runtime injects no disk
                // failures.
                Effect::NeedParityRebuild { .. } | Effect::ParityUnservable { .. } => {
                    debug_assert!(false, "disk-fault escalation in a faultless runtime");
                }
            }
        }
    }

    /// Fire every retransmit timer whose deadline has passed. The resend
    /// may itself be dropped by loss injection or refused during a
    /// partition; either way the timer re-arms with a doubled delay, so
    /// convergence only needs the loss probability to be below certainty
    /// and partitions to eventually heal.
    fn fire_due_timers(&mut self, ep: &ThreadedEndpoint<Msg>) {
        let now = Instant::now();
        let due: Vec<u64> = self
            .timers
            .iter()
            .filter(|&(_, &at)| at <= now)
            .map(|(&tag, _)| tag)
            .collect();
        for tag in due {
            self.timers.remove(&tag);
            let mut out = Vec::new();
            self.machine.on_timer(tag, &mut out);
            self.interpret(ep, out);
        }
    }
}

/// Open (or re-open) the site's storage and rebuild the machine from its
/// durable snapshot, if one exists. Returns the store and the machine; on a
/// fresh (or memory-backed) store the machine starts from geometry.
///
/// Each row the WAL replay re-applied is surfaced to `obs` as a
/// [`IoPurpose::LogReplay`] read receipt, so the flight recorder shows the
/// §3.4 recovery work a restart performed.
fn open_store(cfg: &SiteConfig, obs: &mut MachineObs) -> (SiteStore, SiteMachine) {
    let store = cfg
        .storage
        .for_site(cfg.site)
        .open(cfg.rows, cfg.block_size)
        .unwrap_or_else(|e| panic!("site {}: cannot open durable store: {e}", cfg.site));
    let machine = match store.meta().map(DurableSiteState::decode) {
        Some(Ok(d)) => SiteMachine::restore_durable(&d),
        Some(Err(e)) => panic!("site {}: corrupt durable snapshot: {e}", cfg.site),
        None => SiteMachine::new(cfg.site, cfg.group_size, cfg.rows, cfg.block_size),
    };
    for row in store.replayed_rows() {
        obs.effect(&Effect::Read {
            row: *row,
            purpose: IoPurpose::LogReplay,
        });
    }
    (store, machine)
}

/// Run the site event loop until shutdown.
pub fn run_site(cfg: SiteConfig, ep: &ThreadedEndpoint<Msg>, control: &Receiver<Control>) {
    let mut obs = MachineObs::new();
    let (store, mut machine) = open_store(&cfg, &mut obs);
    machine.set_coalesce(cfg.coalesce);
    let mut st = SiteDriver {
        machine,
        store,
        down: false,
        timers: BTreeMap::new(),
        trace: None,
        obs,
        cfg,
    };
    loop {
        // Drain the whole control backlog first (non-blocking), then serve
        // protocol traffic.
        loop {
            match control.try_recv() {
                Ok(Control::SetDown(d, ack)) => {
                    st.down = d;
                    let _ = ack.send(());
                }
                Ok(Control::QueryPending(reply)) => {
                    let _ = reply.send(st.machine.pending_writes());
                }
                Ok(Control::QueryAllAcked(reply)) => {
                    let _ = reply.send(st.machine.all_acked());
                }
                Ok(Control::RecordTrace(on, ack)) => {
                    st.trace = if on { Some(Vec::new()) } else { None };
                    let _ = ack.send(());
                }
                Ok(Control::TakeTrace(reply)) => {
                    let buf = st.trace.replace(Vec::new()).unwrap_or_default();
                    let _ = reply.send(buf);
                }
                Ok(Control::QueryObs(reply)) => {
                    // Coalesced merges are counted inside the machine;
                    // mirror them into the gauge at snapshot time.
                    let merges = st.machine.coalesced_merges();
                    st.obs.metrics().set_coalesced_merges(merges);
                    let name = format!("site {}", st.cfg.site);
                    let _ = reply.send(st.obs.snapshot(&name));
                }
                Ok(Control::KillRestart(reply)) => {
                    if st.store.is_durable() {
                        // Crash: every volatile structure dies — the
                        // machine, the timer wheel, any staged-but-
                        // uncommitted writes inside the store. Restart:
                        // re-open from disk, which replays the committed
                        // log suffix and rebuilds the machine from the
                        // last durable snapshot (§3.4).
                        st.timers.clear();
                        let (store, mut machine) = open_store(&st.cfg, &mut st.obs);
                        machine.set_coalesce(st.cfg.coalesce);
                        st.store = store;
                        st.machine = machine;
                        st.down = false;
                        let _ = reply.send(true);
                    } else {
                        let _ = reply.send(false);
                    }
                }
                Ok(Control::Shutdown) => return,
                Err(std::sync::mpsc::TryRecvError::Disconnected) => return,
                Err(std::sync::mpsc::TryRecvError::Empty) => break,
            }
        }
        if !st.down {
            st.fire_due_timers(ep);
        }
        let Ok(inbound) = ep.recv_timeout(Duration::from_millis(20)) else {
            continue;
        };
        // A down site answers nothing, and its own pending acks never
        // arrive either — exactly a crashed process from the network's
        // point of view. (We swallow the message rather than queueing.)
        if st.down {
            continue;
        }
        let mut out = Vec::new();
        st.machine
            .handle(&mut st.store, inbound.src, inbound.payload, &mut out);
        // WAL rule: group-commit whatever the message staged (block
        // writes + the durable half of the machine) *before* interpreting
        // the effects — no ack may leave the process ahead of the log
        // record that justifies it. A memory-backed store is a no-op.
        if let Err(e) = st.store.commit(|| st.machine.durable_snapshot().encode()) {
            panic!("site {}: durable commit failed: {e}", st.cfg.site);
        }
        st.interpret(ep, out);
    }
}
