//! The sharded threaded cluster: `A` groups of real site threads.
//!
//! [`ShardedNodeCluster`] is the threaded twin of
//! `radd_core::ShardedCluster`: a [`Router`] owning one [`NodeCluster`]
//! per group — each with its own `G + 2` site threads and client (and so
//! its own `ClientMachine`) — plus the pool-site fault surface that fans a
//! site's failure out to every group hosting a member slot there.
//!
//! Groups are independent at the protocol level (no cross-group traffic),
//! so an `A`-group cluster is `A` disjoint thread pools; the router is the
//! single coordinator in front of them. With
//! [`set_link_latency`](ShardedNodeCluster::set_link_latency) the wire —
//! not the CPU — bounds each group's throughput, which is what the
//! cross-group scaling bench measures.

use crate::client::NodeClient;
use crate::NodeCluster;
use radd_layout::{Geometry, GlobalAddr, GroupId, ShardMap, ShardTarget, SiteId};
use radd_net::Wire;
use radd_protocol::{CoalescePolicy, Router, TraceEntry};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Accumulate one group's [`radd_protocol::RebuildReport`] into the pool
/// aggregate, translating member-indexed peer reads to pool sites.
fn fold_group_report(
    pool: &mut PoolRebuildReport,
    group: &radd_protocol::RebuildReport,
    members: &[radd_layout::LogicalDrive],
) {
    pool.groups += 1;
    pool.blocks_rebuilt += group.blocks_rebuilt;
    pool.blocks_absorbed += group.blocks_absorbed;
    pool.bytes_xored += group.bytes_xored;
    for (member, &reads) in group.peer_reads.iter().enumerate() {
        if reads > 0 {
            pool.pool_peer_reads[members[member].site] += reads;
        }
    }
}

/// Aggregated result of one pool-site rebuild across every affected group.
#[derive(Debug, Clone, Default)]
pub struct PoolRebuildReport {
    /// Groups that hosted a member slot on the failed pool site.
    pub groups: usize,
    /// Blocks reconstructed into spares, summed over groups.
    pub blocks_rebuilt: u64,
    /// Blocks found already absorbed (earlier passes or degraded writes).
    pub blocks_absorbed: u64,
    /// Bytes folded through the XOR kernel.
    pub bytes_xored: u64,
    /// Reconstruction reads served per *pool* site (index = pool site id) —
    /// the uniform-reconstruction-load invariant made measurable.
    pub pool_peer_reads: Vec<u64>,
}

/// `A` threaded groups over a shared site pool.
pub struct ShardedNodeCluster {
    router: Router<NodeCluster>,
    block_size: usize,
}

impl ShardedNodeCluster {
    /// Spawn `num_groups` groups over the minimal uniform pool, one client
    /// per group, coalescing on (the threaded default).
    pub fn start(num_groups: usize, g: usize, rows: u64, block_size: usize) -> ShardedNodeCluster {
        let (cluster, _extra) = ShardedNodeCluster::start_with(
            num_groups,
            g,
            rows,
            block_size,
            1,
            CoalescePolicy::Merge,
        );
        cluster
    }

    /// Spawn with `clients_per_group ≥ 1` client handles per group and an
    /// explicit [`CoalescePolicy`]. One client stays attached to each
    /// group; the extras are returned as `extra[k]` (group `k`'s workers)
    /// for use from other threads.
    pub fn start_with(
        num_groups: usize,
        g: usize,
        rows: u64,
        block_size: usize,
        clients_per_group: usize,
        coalesce: CoalescePolicy,
    ) -> (ShardedNodeCluster, Vec<Vec<NodeClient>>) {
        let geo = Geometry::new(g, rows).expect("valid geometry");
        let map = ShardMap::uniform(num_groups, geo)
            .expect("uniform pools always carve into num_groups groups");
        ShardedNodeCluster::start_with_map(map, block_size, clients_per_group, coalesce)
    }

    /// Spawn one threaded group per entry of an explicit [`ShardMap`] —
    /// the entry point for declustered pools, where the map was built with
    /// [`ShardMap::pool`] over more sites than one group spans.
    pub fn start_with_map(
        map: ShardMap,
        block_size: usize,
        clients_per_group: usize,
        coalesce: CoalescePolicy,
    ) -> (ShardedNodeCluster, Vec<Vec<NodeClient>>) {
        let geo = map.geometry();
        let (g, rows) = (geo.group_size(), geo.rows());
        let mut extra = Vec::with_capacity(map.num_groups());
        let router = Router::new(map, |_| {
            let (cluster, workers) =
                NodeCluster::start_with(g, rows, block_size, clients_per_group, coalesce);
            extra.push(workers);
            cluster
        });
        (ShardedNodeCluster { router, block_size }, extra)
    }

    /// The shard map.
    pub fn map(&self) -> &ShardMap {
        self.router.map()
    }

    /// Block size in bytes.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Number of groups.
    pub fn num_groups(&self) -> usize {
        self.router.num_groups()
    }

    /// Resolve a global address without touching any group.
    pub fn locate(&self, addr: GlobalAddr) -> Option<ShardTarget> {
        self.map().locate(addr)
    }

    /// Direct access to one group's cluster.
    pub fn group_mut(&mut self, group: GroupId) -> &mut NodeCluster {
        self.router.group_mut(group)
    }

    /// Read a global address through the owning group's client.
    pub fn read(&mut self, addr: GlobalAddr) -> Result<Vec<u8>, String> {
        let (t, cluster) = self.router.route_mut(addr).map_err(|e| e.to_string())?;
        cluster
            .client()
            .read(t.member, t.index)
            .map_err(|e| e.to_string())
    }

    /// Write a global address through the owning group's client.
    pub fn write(&mut self, addr: GlobalAddr, data: &[u8]) -> Result<(), String> {
        let (t, cluster) = self.router.route_mut(addr).map_err(|e| e.to_string())?;
        cluster
            .client()
            .write(t.member, t.index, data)
            .map_err(|e| e.to_string())
    }

    /// Kill a pool site: every group with a member slot there kills that
    /// slot's site thread (temporary failure — disks keep their contents)
    /// and marks it down at the group's client. Quiesce first unless you
    /// *want* in-doubt parity updates stranded.
    pub fn kill_pool_site(&mut self, pool_site: SiteId) {
        self.router.for_pool_site(pool_site, |_, member, cluster| {
            cluster.kill_site(member);
        });
    }

    /// Revive a pool site in every affected group. Slots come back
    /// **recovering** and stay on each group client's believed-down list
    /// until [`recover_pool_site`](ShardedNodeCluster::recover_pool_site).
    pub fn revive_pool_site(&mut self, pool_site: SiteId) {
        self.router.for_pool_site(pool_site, |_, member, cluster| {
            cluster.revive_site(member);
            cluster.client().mark_down(member, true);
        });
    }

    /// Drain spares back to a revived pool site in every affected group
    /// and mark it up. Returns the total blocks drained across groups.
    pub fn recover_pool_site(&mut self, pool_site: SiteId) -> Result<u64, String> {
        let mut total = 0;
        let mut first_err: Option<String> = None;
        self.router.for_pool_site(pool_site, |g, member, cluster| {
            match cluster.client().recover(member) {
                Ok(n) => total += n,
                Err(e) => first_err = Some(format!("{g}: {e}")),
            }
            cluster.client().mark_down(member, false);
        });
        match first_err {
            Some(e) => Err(e),
            None => Ok(total),
        }
    }

    /// Model each *pool site* as owning one transmission [`radd_net::Wire`] of the
    /// given latency, shared by every member endpoint it hosts across all
    /// groups: concurrent sends from one physical site serialise, so the
    /// fleet's aggregate rebuild-read bandwidth is `surviving sites ×
    /// 1/latency` — the physics the declustered layout exploits. Returns
    /// the wires (index = pool site) for latency tuning.
    pub fn set_pool_wires(&mut self, latency: Duration) -> Vec<Arc<Wire>> {
        let slots: Vec<Vec<(GroupId, SiteId)>> = (0..self.map().pool_len())
            .map(|p| self.map().pool_site_slots(p))
            .collect();
        let wires: Vec<Arc<Wire>> = slots.iter().map(|_| Wire::new(latency)).collect();
        for (p, site_slots) in slots.iter().enumerate() {
            for &(g, member) in site_slots {
                self.router
                    .group_mut(g)
                    .set_site_wire(member, Some(wires[p].clone()));
            }
        }
        wires
    }

    /// Detach every wire attached by
    /// [`set_pool_wires`](ShardedNodeCluster::set_pool_wires).
    pub fn clear_pool_wires(&mut self) {
        for p in 0..self.map().pool_len() {
            for (g, member) in self.map().pool_site_slots(p) {
                self.router.group_mut(g).set_site_wire(member, None);
            }
        }
    }

    /// Rebuild a killed pool site's data into the row spares, one affected
    /// group after another through the attached clients. The parallel
    /// engine ([`rebuild_pool_site_parallel`][Self::rebuild_pool_site_parallel])
    /// is the perf path; this serial twin is the reference the differential
    /// and model checks pin down.
    pub fn rebuild_pool_site(
        &mut self,
        pool_site: SiteId,
        wave_rows: usize,
    ) -> Result<PoolRebuildReport, String> {
        let members: Vec<Vec<radd_layout::LogicalDrive>> = (0..self.num_groups())
            .map(|g| self.map().group_members(GroupId(g)).to_vec())
            .collect();
        let mut report = PoolRebuildReport {
            pool_peer_reads: vec![0; self.map().pool_len()],
            ..PoolRebuildReport::default()
        };
        let mut first_err: Option<String> = None;
        self.router.for_pool_site(pool_site, |g, member, cluster| {
            match cluster.client().rebuild(member, wave_rows) {
                Ok(r) => fold_group_report(&mut report, &r, &members[g.0]),
                Err(e) => first_err = Some(format!("group {g}: {e}")),
            }
        });
        match first_err {
            Some(e) => Err(e),
            None => Ok(report),
        }
    }

    /// The parallel rebuild engine: fan the affected groups' rebuilds out
    /// onto one thread each, driven by per-group worker clients (the extras
    /// returned at start — `workers[g]` drives group `g`; unaffected
    /// entries are left untouched). Each worker's wave pipelining keeps `G`
    /// reconstruction reads in flight per group, and with per-site wires
    /// attached the aggregate read load lands on however many distinct pool
    /// sites the placement spread the stripes across.
    pub fn rebuild_pool_site_parallel(
        &mut self,
        pool_site: SiteId,
        wave_rows: usize,
        workers: &mut [NodeClient],
    ) -> Result<PoolRebuildReport, String> {
        assert!(
            workers.len() >= self.num_groups(),
            "need one worker client per group"
        );
        let slots: HashMap<usize, SiteId> = self
            .map()
            .pool_site_slots(pool_site)
            .into_iter()
            .map(|(g, member)| (g.0, member))
            .collect();
        let members: Vec<Vec<radd_layout::LogicalDrive>> = (0..self.num_groups())
            .map(|g| self.map().group_members(GroupId(g)).to_vec())
            .collect();
        let mut report = PoolRebuildReport {
            pool_peer_reads: vec![0; self.map().pool_len()],
            ..PoolRebuildReport::default()
        };
        let results: Vec<(usize, Result<radd_protocol::RebuildReport, String>)> =
            std::thread::scope(|scope| {
                let mut joins = Vec::new();
                for (g, worker) in workers.iter_mut().enumerate() {
                    let Some(&member) = slots.get(&g) else {
                        continue;
                    };
                    joins.push(scope.spawn(move || {
                        // kill_pool_site only marks *attached* clients down;
                        // the worker forms its own belief here.
                        worker.mark_down(member, true);
                        (
                            g,
                            worker.rebuild(member, wave_rows).map_err(|e| e.to_string()),
                        )
                    }));
                }
                joins.into_iter().map(|j| j.join().unwrap()).collect()
            });
        for (g, res) in results {
            match res {
                Ok(r) => fold_group_report(&mut report, &r, &members[g]),
                Err(e) => return Err(format!("group {g}: {e}")),
            }
        }
        Ok(report)
    }

    /// Message-loss injection across every group's network.
    pub fn set_loss(&mut self, permille: u16, seed: u64) {
        for (_, cluster) in self.router.groups_mut() {
            cluster.set_loss(permille, seed);
        }
    }

    /// Wire-time injection across every group's network (see
    /// [`NodeCluster::set_link_latency`]).
    pub fn set_link_latency(&mut self, latency: Duration) {
        for (_, cluster) in self.router.groups_mut() {
            cluster.set_link_latency(latency);
        }
    }

    /// Wait until every group's parity updates are acknowledged.
    pub fn quiesce(&mut self, timeout: Duration) -> Result<(), String> {
        for (g, cluster) in self.router.groups_mut() {
            cluster.quiesce(timeout).map_err(|e| format!("{g}: {e}"))?;
        }
        Ok(())
    }

    /// Record (or stop recording) normalised machine traces in every group.
    pub fn record_traces(&mut self, on: bool) {
        for (_, cluster) in self.router.groups_mut() {
            cluster.record_traces(on);
        }
    }

    /// Drain every group's traces: `traces[k]` is group `k`'s per-machine
    /// vector (index 0 = client, `1 + j` = member `j`).
    pub fn take_traces(&mut self) -> Vec<Vec<Vec<TraceEntry>>> {
        self.router
            .groups_mut()
            .map(|(_, cluster)| cluster.take_traces())
            .collect()
    }

    /// Run the stripe-invariant sweep in every group; the error names the
    /// first failing group.
    pub fn verify_parity(&mut self) -> Result<(), String> {
        for (g, cluster) in self.router.groups_mut() {
            cluster
                .client()
                .verify_parity()
                .map_err(|e| format!("{g}: {e}"))?;
        }
        Ok(())
    }

    /// Shut every group down, joining all site threads.
    pub fn shutdown(self) {
        let (_, clusters) = self.router.into_parts();
        for cluster in clusters {
            cluster.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radd_layout::Placement;

    const QUIESCE: Duration = Duration::from_secs(10);

    #[test]
    fn cross_group_writes_survive_a_pool_site_failure() {
        // 3 groups of G = 2 (4 member slots each) on the shared 4-site pool.
        let mut cluster = ShardedNodeCluster::start(3, 2, 8, 32);
        let cap = cluster.map().group_capacity();
        let mut written = Vec::new();
        for k in 0..3u64 {
            for off in [0, cap - 1] {
                let addr = GlobalAddr(k * cap + off);
                let data = vec![0x30 + (addr.0 as u8); 32];
                cluster.write(addr, &data).unwrap();
                written.push((addr, data));
            }
        }
        cluster.quiesce(QUIESCE).unwrap();
        cluster.kill_pool_site(1);
        for (addr, want) in &written {
            assert_eq!(cluster.read(*addr).unwrap(), *want, "degraded at {addr}");
        }
        cluster.revive_pool_site(1);
        cluster.recover_pool_site(1).unwrap();
        cluster.quiesce(QUIESCE).unwrap();
        cluster.verify_parity().unwrap();
        for (addr, want) in &written {
            assert_eq!(cluster.read(*addr).unwrap(), *want, "recovered at {addr}");
        }
        cluster.shutdown();
    }

    #[test]
    fn parallel_rebuild_spreads_reads_and_preserves_data() {
        // Declustered pool: 8 sites, 3 member slots each, G = 2 groups of
        // width 4 — six groups total, stripes spread across the pool.
        let geo = Geometry::new(2, 4).unwrap();
        let map = ShardMap::pool(8, 3, geo, Placement::Declustered).unwrap();
        let (mut cluster, mut extra) =
            ShardedNodeCluster::start_with_map(map, 32, 2, CoalescePolicy::Merge);
        let mut workers: Vec<NodeClient> = extra.iter_mut().map(|w| w.remove(0)).collect();
        let cap = cluster.map().group_capacity();
        let mut written = Vec::new();
        for k in 0..cluster.num_groups() as u64 {
            let addr = GlobalAddr(k * cap);
            let data = vec![0x50 + k as u8; 32];
            cluster.write(addr, &data).unwrap();
            written.push((addr, data));
        }
        cluster.quiesce(QUIESCE).unwrap();

        cluster.kill_pool_site(0);
        let report = cluster
            .rebuild_pool_site_parallel(0, 2, &mut workers)
            .unwrap();
        assert_eq!(report.groups, 3, "site 0 hosts three member slots");
        assert!(report.blocks_rebuilt > 0);
        assert_eq!(report.pool_peer_reads[0], 0, "failed site serves no reads");
        let spread = report.pool_peer_reads.iter().filter(|&&n| n > 0).count();
        assert!(
            spread > 3,
            "declustered rebuild must out-fan a single group's 3 peers, got {spread}"
        );

        // A second pass sees every row absorbed: the engine is idempotent.
        let again = cluster
            .rebuild_pool_site_parallel(0, 2, &mut workers)
            .unwrap();
        assert_eq!(again.blocks_rebuilt, 0);
        assert_eq!(
            again.blocks_absorbed,
            report.blocks_rebuilt + report.blocks_absorbed
        );

        for (addr, want) in &written {
            assert_eq!(cluster.read(*addr).unwrap(), *want, "degraded at {addr}");
        }
        cluster.revive_pool_site(0);
        cluster.recover_pool_site(0).unwrap();
        cluster.quiesce(QUIESCE).unwrap();
        cluster.verify_parity().unwrap();
        for (addr, want) in &written {
            assert_eq!(cluster.read(*addr).unwrap(), *want, "recovered at {addr}");
        }
        cluster.shutdown();
    }

    #[test]
    fn out_of_range_address_is_an_error() {
        let mut cluster = ShardedNodeCluster::start(2, 1, 6, 16);
        let end = cluster.map().total_data_blocks();
        assert!(cluster.read(GlobalAddr(end)).is_err());
        cluster.shutdown();
    }
}
