//! # radd-node — the threaded RADD cluster
//!
//! The discrete-event cluster in `radd-core` measures the paper's numbers
//! deterministically; this crate runs the *same protocol* as an actual
//! local cluster: **one OS thread per site**, all coordination over real
//! message passing (crossbeam channels via [`radd_net::ThreadedNet`]), no
//! shared state between sites.
//!
//! * Each [`site`] thread owns its disk array, UID generator, parity UID
//!   arrays and spare slots, and serves the Section 3 message protocol:
//!   reads/writes, parity updates (W4), spare probes/installs, block reads
//!   for reconstruction, and recovery drain.
//! * Write path: the owning site performs W1 locally, ships the W3 change
//!   mask to the parity site, and acknowledges the client only after the
//!   parity site's ack — precisely the "done = prepared" discipline of §6.
//!   Site event loops never block on each other (acks are matched through
//!   a pending table), so the protocol is deadlock-free by construction.
//! * Degraded operation is client-driven, as in the paper: on a down
//!   site, [`client::NodeClient`] probes the spare site, reconstructs from
//!   the `G` survivors with §3.3 UID validation, installs the result into
//!   the spare, and redirects writes (W1').
//! * The cluster keeps its [`ThreadedNet`] control handle, so fault
//!   harnesses can inject silent message loss ([`NodeCluster::set_loss`])
//!   and network partitions ([`NodeCluster::isolate_site`]); sites absorb
//!   both by retransmitting unacked parity updates with backoff, and
//!   [`NodeCluster::quiesce`] waits until every pending table is empty.
//!
//! Temporary site failures and recovery are fully supported; disk
//! failures and disasters are covered by the deterministic runtime (they
//! need failure injection *inside* a site, which the DES models more
//! precisely).
//!
//! ```
//! use radd_node::NodeCluster;
//!
//! let mut cluster = NodeCluster::start(4, 12, 64); // G = 4, 12 rows, 64-B blocks
//! let block = vec![7u8; 64];
//! cluster.client().write(1, 0, &block).unwrap();
//!
//! cluster.kill_site(1); // the process stops answering
//! let got = cluster.client().read(1, 0).unwrap(); // reconstructed
//! assert_eq!(got, block);
//!
//! cluster.revive_site(1);
//! cluster.client().recover(1).unwrap();
//! assert_eq!(cluster.client().read(1, 0).unwrap(), block);
//! cluster.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod driver;
pub mod message;
pub mod sharded;
pub mod site;

pub use client::{ClientError, NodeClient};
pub use driver::ThreadedDriver;
pub use message::Msg;
pub use sharded::{PoolRebuildReport, ShardedNodeCluster};

use radd_net::ThreadedNet;
use radd_protocol::CoalescePolicy;
use radd_storage::StorageSpec;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A running threaded cluster: `G + 2` site threads plus a client handle.
pub struct NodeCluster {
    net: ThreadedNet<Msg>,
    client: NodeClient,
    control: Vec<std::sync::mpsc::Sender<site::Control>>,
    handles: Vec<JoinHandle<()>>,
    num_sites: usize,
    ep_base: usize,
}

impl NodeCluster {
    /// Spawn a cluster with group size `g`, `rows` block rows per site and
    /// `block_size`-byte blocks. Endpoint 0 is the client; sites are
    /// endpoints `1..=G+2` (site `j` lives at endpoint `j + 1`).
    pub fn start(g: usize, rows: u64, block_size: usize) -> NodeCluster {
        let (cluster, _extra) = NodeCluster::start_multi(g, rows, block_size, 1);
        cluster
    }

    /// Like [`start`](NodeCluster::start) but with `clients ≥ 1` client
    /// handles: one stays attached to the cluster, the rest are returned
    /// for use from other threads (each owns its own endpoint and UID
    /// namespace).
    ///
    /// Sites run with parity-update coalescing on
    /// ([`radd_protocol::CoalescePolicy::Merge`]): while a row's update is
    /// unacknowledged, further queued masks XOR-merge into one pending
    /// update. Use [`start_with`](NodeCluster::start_with) to pick the
    /// policy explicitly (differential harnesses turn it off to stay
    /// message-for-message identical to the DES interpreter).
    pub fn start_multi(
        g: usize,
        rows: u64,
        block_size: usize,
        clients: usize,
    ) -> (NodeCluster, Vec<NodeClient>) {
        NodeCluster::start_with(g, rows, block_size, clients, CoalescePolicy::Merge)
    }

    /// [`start_multi`](NodeCluster::start_multi) with an explicit
    /// parity-update [`CoalescePolicy`].
    pub fn start_with(
        g: usize,
        rows: u64,
        block_size: usize,
        clients: usize,
        coalesce: CoalescePolicy,
    ) -> (NodeCluster, Vec<NodeClient>) {
        NodeCluster::start_durable(g, rows, block_size, clients, coalesce, &StorageSpec::Mem)
    }

    /// [`start_with`](NodeCluster::start_with) plus a [`StorageSpec`]: pass
    /// [`StorageSpec::Disk`] with a cluster root directory and every site
    /// runs on a durable WAL-backed store under `<dir>/site-<j>`, which
    /// survives [`kill_restart_site`](NodeCluster::kill_restart_site).
    pub fn start_durable(
        g: usize,
        rows: u64,
        block_size: usize,
        clients: usize,
        coalesce: CoalescePolicy,
        storage: &StorageSpec,
    ) -> (NodeCluster, Vec<NodeClient>) {
        assert!(clients >= 1, "need at least one client");
        let num_sites = g + 2;
        let ep_base = clients;
        let (net, mut endpoints) = ThreadedNet::<Msg>::new(num_sites + clients);
        let site_eps = endpoints.split_off(clients);
        let mut client_eps = endpoints;
        let mut handles = Vec::new();
        let mut control = Vec::new();
        for (j, ep) in site_eps.into_iter().enumerate() {
            let (ctl_tx, ctl_rx) = std::sync::mpsc::channel();
            control.push(ctl_tx);
            let cfg = site::SiteConfig {
                site: j,
                group_size: g,
                rows,
                block_size,
                ep_base,
                coalesce,
                storage: storage.clone(),
            };
            handles.push(std::thread::spawn(move || {
                site::run_site(cfg, &ep, &ctl_rx);
            }));
        }
        let main_client = NodeClient::new(client_eps.remove(0), ep_base, g, rows, block_size);
        let extra: Vec<NodeClient> = client_eps
            .into_iter()
            .map(|ep| NodeClient::new(ep, ep_base, g, rows, block_size))
            .collect();
        (
            NodeCluster {
                net,
                client: main_client,
                control,
                handles,
                num_sites,
                ep_base,
            },
            extra,
        )
    }

    /// The client handle for issuing operations.
    pub fn client(&mut self) -> &mut NodeClient {
        &mut self.client
    }

    /// Number of sites.
    pub fn num_sites(&self) -> usize {
        self.num_sites
    }

    /// Model wire time on every link: each send occupies the sending
    /// thread for `latency` (see [`radd_net::ThreadedNet::set_link_latency`]).
    /// Zero (the default) keeps sends instantaneous.
    pub fn set_link_latency(&self, latency: Duration) {
        self.net.set_link_latency(latency);
    }

    /// Attach (or detach with `None`) a shared transmission [`radd_net::Wire`] to
    /// site `j`'s endpoint. Every send from that site then serialises on
    /// the wire for the wire's latency — the physical model behind the
    /// rebuild benchmarks: one wire per *pool site* shared across all the
    /// groups it hosts makes a site's uplink the contended resource.
    pub fn set_site_wire(&self, site: usize, wire: Option<std::sync::Arc<radd_net::Wire>>) {
        self.net.set_wire(self.ep_base + site, wire);
    }

    fn set_down(&mut self, site: usize, down: bool) {
        let (ack_tx, ack_rx) = std::sync::mpsc::channel();
        let _ = self.control[site].send(site::Control::SetDown(down, ack_tx));
        // Synchronous: the site has crossed the boundary before we return,
        // so subsequent traffic observes a consistent state.
        let _ = ack_rx.recv_timeout(Duration::from_secs(5));
        self.client.mark_down(site, down);
    }

    /// Temporary site failure: the site stops answering protocol messages
    /// (its disks keep their contents). Quiesce first (see
    /// [`NodeCluster::quiesce`]) unless you *want* an in-doubt parity
    /// update stranded at the dead site.
    pub fn kill_site(&mut self, site: usize) {
        self.set_down(site, true);
    }

    /// Bring a killed site back in the **recovering** state; run
    /// [`NodeClient::recover`] to drain its spares and mark it up.
    pub fn revive_site(&mut self, site: usize) {
        self.set_down(site, false);
    }

    /// Process crash + restart of site `site`: its machine, timers and any
    /// uncommitted staged writes are dropped on the floor, then the site
    /// re-opens its durable store — replaying the committed WAL suffix and
    /// rebuilding the machine from the last snapshot (§3.4). Synchronous:
    /// returns once the site is serving again. Returns `false` (and
    /// changes nothing) when the cluster runs on memory-backed storage.
    pub fn kill_restart_site(&mut self, site: usize) -> bool {
        let (tx, rx) = std::sync::mpsc::channel();
        let _ = self.control[site].send(site::Control::KillRestart(tx));
        let restarted = rx.recv_timeout(Duration::from_secs(10)).unwrap_or(false);
        if restarted {
            // The restarted machine is Up; make sure the client agrees
            // (e.g. after a kill_site → kill_restart_site sequence).
            self.client.mark_down(site, false);
        }
        restarted
    }

    /// Start dropping roughly `permille`/1000 of all network sends,
    /// silently (sender still sees success). `0` turns loss off. Sites
    /// converge anyway by retransmitting unacked parity updates.
    pub fn set_loss(&self, permille: u16, seed: u64) {
        self.net.set_loss(permille, seed);
    }

    /// Messages dropped by loss injection so far.
    pub fn dropped_messages(&self) -> u64 {
        self.net.dropped()
    }

    /// §5 partition: cut `site` off from the network (its sends and
    /// receives fail; its thread keeps running). The client treats it like
    /// a down site and takes the degraded paths.
    pub fn isolate_site(&mut self, site: usize) {
        self.net.set_partitioned(self.ep_base + site, true);
        self.client.mark_down(site, true);
    }

    /// Heal a partition created by [`NodeCluster::isolate_site`]. The site
    /// immediately resumes retransmitting whatever parity updates it could
    /// not deliver while cut off. Run [`NodeClient::recover`] afterwards to
    /// drain spares populated on its behalf during the partition.
    pub fn heal_site(&mut self, site: usize) {
        self.net.set_partitioned(self.ep_base + site, false);
        self.client.mark_down(site, false);
    }

    /// How many writes at `site` still await their parity ack.
    pub fn pending_writes(&self, site: usize) -> usize {
        let (tx, rx) = std::sync::mpsc::channel();
        let _ = self.control[site].send(site::Control::QueryPending(tx));
        rx.recv_timeout(Duration::from_secs(5)).unwrap_or(0)
    }

    /// Whether every site machine reports
    /// [`all_acked`](radd_protocol::SiteMachine::all_acked) —
    /// i.e. no parity update anywhere is still awaiting its ack.
    pub fn all_acked(&self) -> bool {
        (0..self.num_sites).all(|s| {
            let (tx, rx) = std::sync::mpsc::channel();
            let _ = self.control[s].send(site::Control::QueryAllAcked(tx));
            rx.recv_timeout(Duration::from_secs(5)).unwrap_or(false)
        })
    }

    /// Start (or stop) recording normalised effect traces on every site
    /// machine and the attached client, for differential comparison with
    /// the DES interpreter.
    pub fn record_traces(&mut self, on: bool) {
        for s in 0..self.num_sites {
            let (tx, rx) = std::sync::mpsc::channel();
            let _ = self.control[s].send(site::Control::RecordTrace(on, tx));
            let _ = rx.recv_timeout(Duration::from_secs(5));
        }
        if on {
            self.client.record_trace();
        }
    }

    /// Collect the recorded traces: index 0 is the attached client, index
    /// `1 + j` is site `j` — the same peer numbering the DES interpreter
    /// uses.
    pub fn take_traces(&mut self) -> Vec<Vec<radd_protocol::TraceEntry>> {
        let mut all = vec![self.client.take_trace()];
        for s in 0..self.num_sites {
            let (tx, rx) = std::sync::mpsc::channel();
            let _ = self.control[s].send(site::Control::TakeTrace(tx));
            all.push(rx.recv_timeout(Duration::from_secs(5)).unwrap_or_default());
        }
        all
    }

    /// Freeze the whole cluster's observability state: the attached
    /// client's metrics + flight recorder at index 0, then each site's at
    /// index `1 + j` — the same machine numbering the traces use. Latency
    /// histograms hold wall-clock nanoseconds (the DES records logical
    /// ledger microseconds instead; see `radd-obs`'s crate docs).
    ///
    /// Snapshots are served from the sites' control drains, so a site
    /// marked down still answers — its flight recorder is usually the one
    /// worth reading.
    pub fn obs_snapshot(&mut self) -> radd_obs::ObsSnapshot {
        let mut machines = vec![self.client.obs_snapshot()];
        for s in 0..self.num_sites {
            let (tx, rx) = std::sync::mpsc::channel();
            let _ = self.control[s].send(site::Control::QueryObs(tx));
            machines
                .push(rx.recv_timeout(Duration::from_secs(5)).unwrap_or_else(|_| {
                    radd_obs::MachineObs::new().snapshot(&format!("site {s}"))
                }));
        }
        radd_obs::ObsSnapshot { machines }
    }

    /// Wait until no site holds an unacked parity update (i.e. every
    /// acknowledged write is fully reflected in parity), polling for up to
    /// `timeout`. Partitioned sites cannot drain — heal them first.
    pub fn quiesce(&self, timeout: Duration) -> Result<(), String> {
        let deadline = Instant::now() + timeout;
        loop {
            let pending: Vec<(usize, usize)> = (0..self.num_sites)
                .map(|s| (s, self.pending_writes(s)))
                .filter(|&(_, n)| n > 0)
                .collect();
            if pending.is_empty() {
                return Ok(());
            }
            if Instant::now() >= deadline {
                return Err(format!(
                    "quiesce timed out; unacked parity updates remain: {pending:?}"
                ));
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// Stop every site thread and join them.
    pub fn shutdown(mut self) {
        for ctl in &self.control {
            let _ = ctl.send(site::Control::Shutdown);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}
