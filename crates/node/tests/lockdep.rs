//! Seeded lock-order inversion: proof that the shim's lockdep layer
//! (DESIGN.md §16) catches an AB/BA ordering with a two-chain witness.
//!
//! The test takes `a` then `b` on one thread, then `b` then `a` on a
//! second thread. No deadlock actually occurs — the acquisitions never
//! contend — but with `RADD_LOCKDEP=1` the second ordering completes a
//! cycle in the global acquisition-order graph and the acquiring thread
//! panics with both chains. With the variable unset the same schedule
//! must run silently, so the instrumented shim can sit in every build.

use std::panic;
use std::sync::Arc;
use std::thread;

use parking_lot::Mutex;

fn lockdep_armed() -> bool {
    std::env::var("RADD_LOCKDEP").is_ok_and(|v| v == "1")
}

#[test]
fn seeded_ab_ba_inversion_is_caught() {
    let a = Arc::new(Mutex::new(0u32));
    let b = Arc::new(Mutex::new(0u32));

    // Phase 1: establish the order a -> b (records the edge when armed).
    {
        let ga = a.lock();
        let gb = b.lock();
        drop(gb);
        drop(ga);
    }

    // Phase 2: the inverted order b -> a on a fresh thread. Silence the
    // panic hook around the join so the expected witness panic does not
    // spray the test log; the payload still travels through `join()`.
    let prev_hook = panic::take_hook();
    panic::set_hook(Box::new(|_| {}));
    let result = {
        let (a, b) = (Arc::clone(&a), Arc::clone(&b));
        thread::spawn(move || {
            let gb = b.lock();
            let ga = a.lock();
            drop(ga);
            drop(gb);
        })
        .join()
    };
    panic::set_hook(prev_hook);

    if lockdep_armed() {
        let payload = result.expect_err("lockdep must panic on the inverted order");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .expect("lockdep panics carry a textual witness");
        assert!(
            msg.contains("lock-order inversion"),
            "witness should name the violation, got:\n{msg}"
        );
        assert!(
            msg.contains("acquiring"),
            "witness should show this thread's chain, got:\n{msg}"
        );
        assert!(
            msg.contains("prior chain"),
            "witness should show the recorded conflicting chain, got:\n{msg}"
        );
    } else {
        result.expect("with lockdep off the inverted order must run silently");
    }
}

#[test]
fn consistent_order_is_silent_even_when_armed() {
    let a = Arc::new(Mutex::new(0u32));
    let b = Arc::new(Mutex::new(0u32));
    for _ in 0..2 {
        let (a, b) = (Arc::clone(&a), Arc::clone(&b));
        thread::spawn(move || {
            let ga = a.lock();
            let gb = b.lock();
            drop(gb);
            drop(ga);
        })
        .join()
        .expect("one order everywhere never trips lockdep");
    }
}
