//! Integration tests for the threaded cluster: the Section 3 protocol
//! under real concurrency.

use radd_node::{ClientError, NodeCluster};

const BLOCK: usize = 64;

fn block(tag: u8) -> Vec<u8> {
    vec![tag; BLOCK]
}

#[test]
fn write_read_roundtrip_across_all_sites() {
    let mut cluster = NodeCluster::start(4, 12, BLOCK);
    for site in 0..cluster.num_sites() {
        let cap = cluster.client().geometry().data_capacity(site);
        for idx in 0..cap.min(4) {
            let data = vec![(site * 16 + idx as usize + 1) as u8; BLOCK];
            cluster.client().write(site, idx, &data).unwrap();
            assert_eq!(cluster.client().read(site, idx).unwrap(), data);
        }
    }
    cluster.client().verify_parity().unwrap();
    cluster.shutdown();
}

#[test]
fn degraded_read_reconstructs_from_survivors() {
    let mut cluster = NodeCluster::start(4, 12, BLOCK);
    let data = block(9);
    cluster.client().write(2, 0, &data).unwrap();
    cluster.kill_site(2);
    assert_eq!(cluster.client().read(2, 0).unwrap(), data, "reconstructed");
    // Second read comes from the installed spare.
    assert_eq!(cluster.client().read(2, 0).unwrap(), data, "spare-served");
    cluster.shutdown();
}

#[test]
fn write_while_down_survives_recovery() {
    let mut cluster = NodeCluster::start(4, 12, BLOCK);
    let v1 = block(1);
    let v2 = block(2);
    cluster.client().write(3, 1, &v1).unwrap();
    cluster.kill_site(3);
    cluster.client().write(3, 1, &v2).unwrap(); // W1' via the spare
    assert_eq!(cluster.client().read(3, 1).unwrap(), v2);
    cluster.revive_site(3);
    let drained = cluster.client().recover(3).unwrap();
    assert_eq!(drained, 1);
    assert_eq!(
        cluster.client().read(3, 1).unwrap(),
        v2,
        "served locally again"
    );
    cluster.client().verify_parity().unwrap();
    cluster.shutdown();
}

#[test]
fn untouched_blocks_survive_temporary_failure() {
    let mut cluster = NodeCluster::start(4, 12, BLOCK);
    let data = block(5);
    cluster.client().write(0, 2, &data).unwrap();
    cluster.kill_site(0);
    cluster.revive_site(0);
    cluster.client().recover(0).unwrap();
    assert_eq!(cluster.client().read(0, 2).unwrap(), data);
    cluster.shutdown();
}

#[test]
fn out_of_range_and_bad_size_rejected() {
    let mut cluster = NodeCluster::start(4, 12, BLOCK);
    let cap = cluster.client().geometry().data_capacity(0);
    assert_eq!(
        cluster.client().read(0, cap).unwrap_err(),
        ClientError::OutOfRange
    );
    assert_eq!(
        cluster.client().write(0, 0, &[1, 2, 3]).unwrap_err(),
        ClientError::BadSize
    );
    cluster.shutdown();
}

#[test]
fn paper_g8_shape_works_threaded() {
    let mut cluster = NodeCluster::start(8, 20, BLOCK);
    assert_eq!(cluster.num_sites(), 10);
    let data = block(7);
    cluster.client().write(5, 0, &data).unwrap();
    cluster.kill_site(5);
    assert_eq!(cluster.client().read(5, 0).unwrap(), data);
    cluster.revive_site(5);
    cluster.client().recover(5).unwrap();
    cluster.client().verify_parity().unwrap();
    cluster.shutdown();
}

#[test]
fn many_writes_keep_parity_consistent_under_concurrency() {
    // Writes to different sites proceed concurrently at the site threads
    // (each write is acked only after its parity ack), and the final state
    // must satisfy the stripe invariant.
    let mut cluster = NodeCluster::start(4, 12, BLOCK);
    for round in 0..5u8 {
        for site in 0..cluster.num_sites() {
            let data = vec![round * 40 + site as u8 + 1; BLOCK];
            cluster
                .client()
                .write(site, (round % 4) as u64, &data)
                .unwrap();
        }
    }
    cluster.client().verify_parity().unwrap();
    cluster.shutdown();
}

#[test]
fn concurrent_clients_on_distinct_blocks_stay_consistent() {
    // Two real client threads hammer different blocks concurrently; the
    // sites serialise their own disks and the parity stream stays
    // consistent because each data site computes its masks serially.
    let (mut cluster, mut extra) = NodeCluster::start_multi(4, 12, BLOCK, 2);
    let mut other = extra.remove(0);
    let writer = std::thread::spawn(move || {
        for round in 0..20u8 {
            for site in 0..3 {
                other
                    .write(site, 0, &[round.wrapping_mul(3) + 1; BLOCK])
                    .unwrap();
            }
        }
        other
    });
    for round in 0..20u8 {
        for site in 3..6 {
            cluster
                .client()
                .write(site, 1, &[round.wrapping_mul(5) + 2; BLOCK])
                .unwrap();
        }
    }
    writer.join().unwrap();
    cluster.client().verify_parity().unwrap();
    // Final contents are the last writes.
    for site in 0..3 {
        assert_eq!(
            cluster.client().read(site, 0).unwrap(),
            vec![19u8 * 3 + 1; BLOCK]
        );
    }
    for site in 3..6 {
        assert_eq!(
            cluster.client().read(site, 1).unwrap(),
            vec![19u8 * 5 + 2; BLOCK]
        );
    }
    cluster.shutdown();
}

#[test]
fn concurrent_clients_same_parity_site_interleave_safely() {
    // All writes in one physical row share a parity site; two clients
    // writing different data blocks of the same row exercise interleaved
    // parity updates at that one site. The stripe must stay consistent.
    let (mut cluster, mut extra) = NodeCluster::start_multi(4, 12, BLOCK, 2);
    let mut other = extra.remove(0);
    // Row 0: data sites are 2, 3, 4, 5 (parity 0, spare 1); indices 0 at
    // each of those sites map to row 0.
    let t = std::thread::spawn(move || {
        for round in 0..30u8 {
            other.write(2, 0, &[round + 1; BLOCK]).unwrap();
            other.write(4, 0, &[round + 101; BLOCK]).unwrap();
        }
        other
    });
    for round in 0..30u8 {
        cluster.client().write(3, 0, &[round + 51; BLOCK]).unwrap();
        cluster.client().write(5, 0, &[round + 151; BLOCK]).unwrap();
    }
    t.join().unwrap();
    cluster.client().verify_parity().unwrap();
    cluster.shutdown();
}
