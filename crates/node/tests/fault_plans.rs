//! Fault plans against the threaded cluster: the same engine that drives
//! the DES drives real site threads here, with message loss and a §5
//! partition in the mix. Convergence relies on the sites' retransmission
//! channels; at every quiesce point `ReliableChannel::all_acked()` must
//! hold across the cluster.

use radd_node::ThreadedDriver;
use radd_workload::faults::{
    run_plan, seed_from_name, FaultEvent, FaultPlan, PlanFailure, PlanShape,
};

const BLOCK: usize = 64;

/// Panic with the report, leaving a machine-readable dump (metrics +
/// flight-recorder tails) under `target/fault_dumps/` for CI to upload.
fn dump_and_panic(context: &str, failure: &PlanFailure) -> ! {
    let dumped = failure
        .write_dump(std::path::Path::new("target/fault_dumps"), context)
        .map_or_else(
            |e| format!("<dump failed: {e}>"),
            |p| p.display().to_string(),
        );
    panic!("{context} (dump: {dumped}):\n{failure}")
}

#[test]
fn named_seed_plan_completes_on_the_threaded_runtime() {
    let shape = PlanShape::default();
    let plan = FaultPlan::generate(seed_from_name("0xRADD0001"), &shape);
    let mut driver = ThreadedDriver::start(shape.group_size, shape.rows, BLOCK);
    let report =
        run_plan(&mut driver, &plan).unwrap_or_else(|f| dump_and_panic("threaded-named-seed", &f));
    assert_eq!(report.applied, plan.events.len());
    assert!(
        report.invariant_checks > 0,
        "healthy stretches must be swept"
    );
    assert!(
        driver.cluster().all_acked(),
        "no parity update may still be in flight after the final quiesce"
    );
    driver.shutdown();
}

#[test]
fn loss_burst_and_partition_converge_via_retransmission() {
    use FaultEvent::*;
    // Hand-composed: a heavy loss burst (30% of all messages silently
    // dropped) overlapping a partition. Every write here must still be
    // durably reflected in parity once the cluster quiesces.
    let plan = FaultPlan::from_events(vec![
        Write {
            site: 0,
            index: 0,
            fill: 0x11,
        },
        Write {
            site: 1,
            index: 0,
            fill: 0x22,
        },
        LossBurst {
            permille: 300,
            seed: 0xC0FFEE,
        },
        Write {
            site: 2,
            index: 0,
            fill: 0x33,
        },
        Write {
            site: 3,
            index: 1,
            fill: 0x44,
        },
        Isolate { site: 1 },
        // Degraded write: the spare site absorbs it (W1').
        Write {
            site: 1,
            index: 2,
            fill: 0x55,
        },
        Write {
            site: 4,
            index: 1,
            fill: 0x66,
        },
        // Degraded read straight back from the spare, under loss.
        Read { site: 1, index: 2 },
        Heal { site: 1 },
        Recover { site: 1 },
        LossEnd,
        Write {
            site: 0,
            index: 3,
            fill: 0x77,
        },
        Read { site: 1, index: 2 },
        FlushParity,
    ]);
    let mut driver = ThreadedDriver::start(4, 12, BLOCK);
    let report =
        run_plan(&mut driver, &plan).unwrap_or_else(|f| dump_and_panic("threaded-loss-burst", &f));
    assert!(report.invariant_checks > 0);
    // The satellite assertion: after the plan's final quiesce, every
    // site's ReliableChannel reports all_acked — retry/backoff drained
    // every parity update the loss burst swallowed.
    assert!(driver.cluster().all_acked());
    assert!(driver.oracle_len() > 0);

    // The observability layer watched the whole scenario: every machine
    // (client + G + 2 sites) answers its snapshot query — including via
    // the control drain had any site still been down — and the protocol
    // traffic shows up in the counters and flight rings.
    let snap = driver.cluster_mut().obs_snapshot();
    assert_eq!(snap.machines.len(), 1 + driver.cluster().num_sites());
    assert!(snap.total_flight_events() > 0, "flight rings are warm");
    let client = snap.machine("client").expect("client snapshot");
    assert!(
        client.metrics.sends_named("write") > 0,
        "the plan's writes were counted"
    );
    assert!(
        client.metrics.write_latency.count > 0,
        "wall-clock write latencies were recorded"
    );
    let parity_updates: u64 = snap
        .machines
        .iter()
        .map(|m| m.metrics.sends_named("parity_update"))
        .sum();
    assert!(
        parity_updates > 0,
        "sites shipped parity updates for the plan's writes"
    );
    driver.shutdown();
}

#[test]
fn quiesce_reports_all_acked_even_after_heavy_loss() {
    use FaultEvent::*;
    // Loss only — no failures — so every event is followed by a full
    // invariant sweep once the burst ends.
    let mut events = vec![LossBurst {
        permille: 250,
        seed: 0xFEED,
    }];
    for i in 0..8u64 {
        events.push(Write {
            site: (i % 6) as usize,
            index: i % 4,
            fill: 0x100 + i,
        });
    }
    events.push(LossEnd);
    events.push(FlushParity);
    let plan = FaultPlan::from_events(events);
    let mut driver = ThreadedDriver::start(4, 12, BLOCK);
    run_plan(&mut driver, &plan).unwrap_or_else(|f| dump_and_panic("threaded-heavy-loss", &f));
    assert!(driver.cluster().all_acked());
    driver.shutdown();
}
