//! Fault plans against the threaded cluster: the same engine that drives
//! the DES drives real site threads here, with message loss and a §5
//! partition in the mix. Convergence relies on the sites' retransmission
//! channels; at every quiesce point `ReliableChannel::all_acked()` must
//! hold across the cluster.

use radd_node::ThreadedDriver;
use radd_workload::faults::{run_plan, seed_from_name, FaultEvent, FaultPlan, PlanShape};

const BLOCK: usize = 64;

#[test]
fn named_seed_plan_completes_on_the_threaded_runtime() {
    let shape = PlanShape::default();
    let plan = FaultPlan::generate(seed_from_name("0xRADD0001"), &shape);
    let mut driver = ThreadedDriver::start(shape.group_size, shape.rows, BLOCK);
    let report = run_plan(&mut driver, &plan).unwrap_or_else(|f| panic!("{f}"));
    assert_eq!(report.applied, plan.events.len());
    assert!(
        report.invariant_checks > 0,
        "healthy stretches must be swept"
    );
    assert!(
        driver.cluster().all_acked(),
        "no parity update may still be in flight after the final quiesce"
    );
    driver.shutdown();
}

#[test]
fn loss_burst_and_partition_converge_via_retransmission() {
    use FaultEvent::*;
    // Hand-composed: a heavy loss burst (30% of all messages silently
    // dropped) overlapping a partition. Every write here must still be
    // durably reflected in parity once the cluster quiesces.
    let plan = FaultPlan::from_events(vec![
        Write {
            site: 0,
            index: 0,
            fill: 0x11,
        },
        Write {
            site: 1,
            index: 0,
            fill: 0x22,
        },
        LossBurst {
            permille: 300,
            seed: 0xC0FFEE,
        },
        Write {
            site: 2,
            index: 0,
            fill: 0x33,
        },
        Write {
            site: 3,
            index: 1,
            fill: 0x44,
        },
        Isolate { site: 1 },
        // Degraded write: the spare site absorbs it (W1').
        Write {
            site: 1,
            index: 2,
            fill: 0x55,
        },
        Write {
            site: 4,
            index: 1,
            fill: 0x66,
        },
        // Degraded read straight back from the spare, under loss.
        Read { site: 1, index: 2 },
        Heal { site: 1 },
        Recover { site: 1 },
        LossEnd,
        Write {
            site: 0,
            index: 3,
            fill: 0x77,
        },
        Read { site: 1, index: 2 },
        FlushParity,
    ]);
    let mut driver = ThreadedDriver::start(4, 12, BLOCK);
    let report = run_plan(&mut driver, &plan).unwrap_or_else(|f| panic!("{f}"));
    assert!(report.invariant_checks > 0);
    // The satellite assertion: after the plan's final quiesce, every
    // site's ReliableChannel reports all_acked — retry/backoff drained
    // every parity update the loss burst swallowed.
    assert!(driver.cluster().all_acked());
    assert!(driver.oracle_len() > 0);
    driver.shutdown();
}

#[test]
fn quiesce_reports_all_acked_even_after_heavy_loss() {
    use FaultEvent::*;
    // Loss only — no failures — so every event is followed by a full
    // invariant sweep once the burst ends.
    let mut events = vec![LossBurst {
        permille: 250,
        seed: 0xFEED,
    }];
    for i in 0..8u64 {
        events.push(Write {
            site: (i % 6) as usize,
            index: i % 4,
            fill: 0x100 + i,
        });
    }
    events.push(LossEnd);
    events.push(FlushParity);
    let plan = FaultPlan::from_events(events);
    let mut driver = ThreadedDriver::start(4, 12, BLOCK);
    run_plan(&mut driver, &plan).unwrap_or_else(|f| panic!("{f}"));
    assert!(driver.cluster().all_acked());
    driver.shutdown();
}
