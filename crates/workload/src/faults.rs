//! The deterministic fault-plan engine.
//!
//! A [`FaultPlan`] is a declarative list of [`FaultEvent`]s — load (reads
//! and writes), failures (disk, site, disaster, partition, message-loss
//! bursts) and their repairs — generated from a single `u64` seed by
//! [`FaultPlan::generate`] or composed explicitly. One plan runs against
//! any runtime implementing [`FaultDriver`]: the deterministic DES
//! [`CheckedCluster`] (implemented here) and the threaded `radd-node`
//! cluster (implemented in that crate), so the *same* scenario exercises
//! both the simulated and the real-concurrency protocol code.
//!
//! [`run_plan`] applies events one at a time and validates the cluster
//! invariants after every event. On a violation it stops with a
//! [`PlanFailure`] carrying the seed, the failing event index and the full
//! event log; [`minimize_failure`] then greedily shrinks the event prefix
//! to the smallest subsequence that still reproduces the violation, which
//! is what gets printed for replay:
//!
//! ```text
//! fault plan seed 0x00000000deadbeef failed at event 17: violation: ...
//! replay: FaultPlan::generate(0xdeadbeef, &shape) — or the minimized 4-event prefix below
//! ```
//!
//! Determinism: plan generation uses only [`SimRng`] streams derived from
//! the seed, and payloads are pure functions of per-event `fill` seeds
//! ([`payload`]), so a `(seed, shape)` pair names the same plan — and on
//! the DES the same event log and invariant-check count — forever, on
//! every platform.

use radd_core::{CheckError, CheckedCluster, PartitionMap, RaddError, SiteState};
use radd_obs::ObsSnapshot;
use radd_sim::SimRng;
use std::fmt;

// The §3.1 failure vocabulary, shared with the scheme drivers — defined
// once in `radd-protocol`.
pub use radd_protocol::FailureKind;

/// One step of a fault plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultEvent {
    /// Client write of a deterministic payload (see [`payload`]).
    Write {
        /// Target site.
        site: usize,
        /// Site-local data index.
        index: u64,
        /// Seed for the payload bytes.
        fill: u64,
    },
    /// Client read (content is checked against the oracle where known).
    Read {
        /// Target site.
        site: usize,
        /// Site-local data index.
        index: u64,
    },
    /// Inject one of the §3.1 failures at a site: temporary site failure,
    /// disaster (all disk contents lost), or a single disk failure (the
    /// site moves to recovering).
    Fail {
        /// The affected site.
        site: usize,
        /// Which failure (shared vocabulary from `radd-protocol`).
        kind: FailureKind,
    },
    /// Swap a blank drive in for a failed disk.
    ReplaceDisk {
        /// The affected site.
        site: usize,
        /// The replaced disk.
        disk: usize,
    },
    /// Bring a down site back (recovering state).
    RestoreSite {
        /// The returning site.
        site: usize,
    },
    /// Run the recovery daemon for a recovering site (drain spares,
    /// rebuild lost blocks, mark up).
    Recover {
        /// The recovering site.
        site: usize,
    },
    /// §5 partition: cut one site off from the other `G + 1`.
    Isolate {
        /// The isolated site.
        site: usize,
    },
    /// Heal the partition. The previously isolated site re-enters through
    /// the recovering state (it may have missed writes absorbed by
    /// spares).
    Heal {
        /// The site that was isolated.
        site: usize,
    },
    /// Start dropping roughly `permille`/1000 of messages (threaded
    /// runtime; the DES models a reliable §3 network and ignores it).
    LossBurst {
        /// Drop probability in 1/1000 units.
        permille: u16,
        /// Seed for victim selection.
        seed: u64,
    },
    /// End the message-loss burst.
    LossEnd,
    /// Apply queued parity updates (DES `ParityMode::Queued`; elsewhere a
    /// no-op).
    FlushParity,
    // ---- checker-granularity events ----------------------------------
    // The bounded model checker (`radd-check`) explores one network or
    // scheduling decision at a time; its counterexamples replay through
    // the same `FaultPlan`/`run_plan`/`minimize_failure` machinery as the
    // seeded plans, using these finer-grained events. Runtimes whose
    // network is not event-addressable (the DES's synchronous cascade, the
    // threaded runtime's real channels) treat them as no-ops.
    /// Run the next scripted operation of checker client `client`.
    StepClient {
        /// Model client index.
        client: usize,
    },
    /// Deliver the message at position `index` of the checker's in-flight
    /// message vector.
    Deliver {
        /// Position in the in-flight vector at the moment of delivery.
        index: usize,
    },
    /// Drop (lose) the in-flight message at position `index`.
    DropMsg {
        /// Position in the in-flight vector.
        index: usize,
    },
    /// Duplicate the in-flight message at position `index` (the copy joins
    /// the back of the vector).
    DupMsg {
        /// Position in the in-flight vector.
        index: usize,
    },
    /// Fire the armed stop-and-wait retransmit timer `tag` at `site`.
    FireTimer {
        /// The site whose timer fires.
        site: usize,
        /// The outstanding request tag.
        tag: u64,
    },
    /// Evict `site`'s at-most-once reply cache, as if the LRU cap had
    /// aged every entry out — the checker's stand-in for cache pressure,
    /// exposing the §3.2 idempotence guard that backstops the cache.
    EvictReplies {
        /// The site whose reply cache is evicted.
        site: usize,
    },
    /// Process crash + immediate restart of a site running on durable
    /// storage: volatile state (pending tables, reply cache, timers, any
    /// uncommitted staged writes) is lost; the site re-opens from its WAL +
    /// block file and resumes serving (§3.4). Drivers on memory-backed
    /// storage treat it as a no-op — there is nothing to restart from.
    KillRestart {
        /// The crashed-and-restarted site.
        site: usize,
    },
}

impl fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultEvent::Write { site, index, fill } => {
                write!(f, "write site {site} index {index} (fill {fill:#x})")
            }
            FaultEvent::Read { site, index } => write!(f, "read site {site} index {index}"),
            FaultEvent::Fail { site, kind } => match kind {
                FailureKind::SiteFailure => write!(f, "fail site {site}"),
                FailureKind::Disaster => write!(f, "disaster at site {site}"),
                FailureKind::DiskFailure { disk } => {
                    write!(f, "fail disk {disk} of site {site}")
                }
            },
            FaultEvent::ReplaceDisk { site, disk } => {
                write!(f, "replace disk {disk} of site {site}")
            }
            FaultEvent::RestoreSite { site } => write!(f, "restore site {site}"),
            FaultEvent::Recover { site } => write!(f, "recover site {site}"),
            FaultEvent::Isolate { site } => write!(f, "isolate site {site}"),
            FaultEvent::Heal { site } => write!(f, "heal partition around site {site}"),
            FaultEvent::LossBurst { permille, seed } => {
                write!(f, "message loss {permille}‰ (seed {seed:#x})")
            }
            FaultEvent::LossEnd => write!(f, "message loss off"),
            FaultEvent::FlushParity => write!(f, "flush queued parity updates"),
            FaultEvent::StepClient { client } => write!(f, "step client {client}"),
            FaultEvent::Deliver { index } => write!(f, "deliver message #{index}"),
            FaultEvent::DropMsg { index } => write!(f, "drop message #{index}"),
            FaultEvent::DupMsg { index } => write!(f, "duplicate message #{index}"),
            FaultEvent::FireTimer { site, tag } => {
                write!(f, "fire retransmit timer {tag:#x} at site {site}")
            }
            FaultEvent::EvictReplies { site } => {
                write!(f, "evict the reply cache of site {site}")
            }
            FaultEvent::KillRestart { site } => {
                write!(f, "crash and restart site {site} from durable storage")
            }
        }
    }
}

/// The deterministic payload for a [`FaultEvent::Write`]: a pure function
/// of the event's `fill` seed, identical across runtimes and platforms.
pub fn payload(fill: u64, block_size: usize) -> Vec<u8> {
    SimRng::seed_from_u64(fill).bytes(block_size)
}

/// Derive a plan seed from a human-readable name (FNV-1a). CI uses this so
/// seeds can be spelled as strings like `"0xRADD0001"` in workflow files
/// and test names while staying honest 64-bit seeds.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in name.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Shape parameters for plan generation: the cluster the plan is meant for
/// and how many load/fault steps to draw.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanShape {
    /// Group size `G` (the cluster has `G + 2` sites).
    pub group_size: usize,
    /// Physical rows per site.
    pub rows: u64,
    /// Disks per site (bounds `FailDisk` events).
    pub disks_per_site: usize,
    /// Steps to draw (repairs ride along, so plans run slightly longer).
    pub steps: usize,
}

impl Default for PlanShape {
    /// Matches `RaddConfig::small_g4` and `NodeCluster::start(4, 12, _)`.
    fn default() -> PlanShape {
        PlanShape {
            group_size: 4,
            rows: 12,
            disks_per_site: 1,
            steps: 60,
        }
    }
}

/// A named, replayable sequence of fault events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// The seed the plan was generated from (0 for hand-composed plans).
    pub seed: u64,
    /// The events, in execution order.
    pub events: Vec<FaultEvent>,
}

/// Generator bookkeeping: at most one failure is in effect at a time (the
/// paper's algorithms survive single failures only).
enum Active {
    None,
    Down(usize),
    Disk(usize, usize),
    Isolated(usize),
}

impl FaultPlan {
    /// A hand-composed plan.
    pub fn from_events(events: Vec<FaultEvent>) -> FaultPlan {
        FaultPlan { seed: 0, events }
    }

    /// Generate a plan from a seed: mostly load, with failure/repair
    /// cycles (one failure in effect at a time), loss bursts and parity
    /// flushes mixed in. Every failure is repaired and every burst ended
    /// before the plan finishes, so the final invariant check runs on a
    /// fully healthy cluster.
    pub fn generate(seed: u64, shape: &PlanShape) -> FaultPlan {
        let geo = radd_core::Geometry::new(shape.group_size, shape.rows).expect("valid plan shape");
        let n = shape.group_size + 2;
        let mut rng = SimRng::seed_from_u64(seed);
        let mut events = Vec::with_capacity(shape.steps + 8);
        let mut active = Active::None;
        let mut loss = false;

        let push_repair = |active: &mut Active, events: &mut Vec<FaultEvent>| {
            match *active {
                Active::None => {}
                Active::Down(site) => {
                    events.push(FaultEvent::RestoreSite { site });
                    events.push(FaultEvent::Recover { site });
                }
                Active::Disk(site, disk) => {
                    events.push(FaultEvent::ReplaceDisk { site, disk });
                    events.push(FaultEvent::Recover { site });
                }
                Active::Isolated(site) => {
                    events.push(FaultEvent::Heal { site });
                    events.push(FaultEvent::Recover { site });
                }
            }
            *active = Active::None;
        };

        for _ in 0..shape.steps {
            match rng.below(100) {
                // Load: writes dominate, as failure behaviour is mostly
                // about whether updates survive.
                0..=54 => {
                    let site = rng.index(n);
                    let index = rng.below(geo.data_capacity(site));
                    let fill = rng.next_u64();
                    events.push(FaultEvent::Write { site, index, fill });
                }
                55..=69 => {
                    let site = rng.index(n);
                    let index = rng.below(geo.data_capacity(site));
                    events.push(FaultEvent::Read { site, index });
                }
                // Failure injection — or repair, if one is already active.
                70..=84 => match active {
                    Active::None => {
                        let site = rng.index(n);
                        match rng.below(4) {
                            0 => {
                                events.push(FaultEvent::Fail {
                                    site,
                                    kind: FailureKind::SiteFailure,
                                });
                                active = Active::Down(site);
                            }
                            1 => {
                                events.push(FaultEvent::Fail {
                                    site,
                                    kind: FailureKind::Disaster,
                                });
                                active = Active::Down(site);
                            }
                            2 => {
                                let disk = rng.index(shape.disks_per_site);
                                events.push(FaultEvent::Fail {
                                    site,
                                    kind: FailureKind::DiskFailure { disk },
                                });
                                active = Active::Disk(site, disk);
                            }
                            _ => {
                                events.push(FaultEvent::Isolate { site });
                                active = Active::Isolated(site);
                            }
                        }
                    }
                    _ => push_repair(&mut active, &mut events),
                },
                // Message-loss toggle.
                85..=92 => {
                    if loss {
                        events.push(FaultEvent::LossEnd);
                    } else {
                        events.push(FaultEvent::LossBurst {
                            permille: 100 + rng.below(200) as u16,
                            seed: rng.next_u64(),
                        });
                    }
                    loss = !loss;
                }
                _ => events.push(FaultEvent::FlushParity),
            }
        }
        // Wind down to a fully healthy cluster.
        if loss {
            events.push(FaultEvent::LossEnd);
        }
        push_repair(&mut active, &mut events);
        events.push(FaultEvent::FlushParity);
        FaultPlan { seed, events }
    }

    /// [`generate`](FaultPlan::generate) plus §3.4 crash/restart coverage:
    /// the base plan is generated *unchanged* (same seed → same base
    /// events, so existing seed corpora stay stable), then
    /// [`FaultEvent::KillRestart`] events are woven in at points where the
    /// cluster is healthy — no failure in effect, no loss burst — from a
    /// separate deterministic stream of the same seed. Every plan ends
    /// with at least one crash, so a `(seed, shape)` pair always
    /// exercises the durable-recovery path.
    ///
    /// Drivers on memory-backed storage treat the crashes as no-ops, so
    /// these plans run anywhere; they only *prove* anything on a durable
    /// cluster.
    pub fn generate_with_crashes(seed: u64, shape: &PlanShape) -> FaultPlan {
        let base = FaultPlan::generate(seed, shape);
        let n = shape.group_size + 2;
        // A distinct stream: crash placement must not perturb (or be
        // perturbed by) the base generator's draws.
        let mut rng = SimRng::seed_from_u64(seed ^ 0x000C_8A54_ED05_7A87u64);
        let mut events = Vec::with_capacity(base.events.len() + 8);
        let mut healthy = true;
        let mut loss = false;
        for ev in base.events {
            match ev {
                FaultEvent::Fail { .. } | FaultEvent::Isolate { .. } => healthy = false,
                FaultEvent::Recover { .. } => healthy = true,
                FaultEvent::LossBurst { .. } => loss = true,
                FaultEvent::LossEnd => loss = false,
                _ => {}
            }
            events.push(ev);
            // Crash while a failure is active and the cluster loses a
            // *second* site; crash under loss and quiescing first drags —
            // both are out of the paper's single-failure model.
            if healthy && !loss && rng.below(100) < 12 {
                events.push(FaultEvent::KillRestart { site: rng.index(n) });
            }
        }
        events.push(FaultEvent::KillRestart { site: rng.index(n) });
        events.push(FaultEvent::FlushParity);
        FaultPlan { seed, events }
    }
}

/// A runtime a fault plan can drive. Both the DES [`CheckedCluster`] and
/// the threaded `radd_node::ThreadedDriver` implement this, so one plan
/// exercises both runtimes.
pub trait FaultDriver {
    /// Apply one event. `Err` means an *engine-level* failure (a violated
    /// guarantee), not a legitimate protocol refusal — drivers swallow
    /// refusals that the scenario makes legal (e.g. a write rejected while
    /// blocked by a partition).
    fn apply(&mut self, event: &FaultEvent) -> Result<(), String>;

    /// Validate the runtime's invariants if currently checkable; returns
    /// whether a check was actually performed (`Ok(false)` = legitimately
    /// skipped, e.g. the threaded runtime mid-failure).
    fn verify(&mut self) -> Result<bool, String>;

    /// Wait/settle until no acknowledged work is still in flight.
    fn quiesce(&mut self) -> Result<(), String>;

    /// Freeze the runtime's observability state (per-machine metrics and
    /// flight-recorder tails) for embedding into a [`PlanFailure`]. The
    /// default is `None` for drivers without an observability layer.
    fn obs_snapshot(&mut self) -> Option<ObsSnapshot> {
        None
    }
}

/// A completed plan run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanReport {
    /// The plan's seed.
    pub seed: u64,
    /// Events applied.
    pub applied: usize,
    /// Invariant checks actually performed.
    pub invariant_checks: u64,
    /// Human-readable event log, one line per event.
    pub event_log: Vec<String>,
}

/// A plan run stopped by a violation (or an engine failure).
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct PlanFailure {
    /// The plan's seed — print this; it replays the failure.
    pub seed: u64,
    /// Index of the event at which the run failed.
    pub failed_at: usize,
    /// What went wrong.
    pub error: String,
    /// Event log up to and including the failing event.
    pub event_log: Vec<String>,
    /// The driver's observability state at the moment of failure: per-
    /// machine metric counters plus the last-N flight-recorder events —
    /// what each machine was *doing* when the invariant broke, not just
    /// what the harness asked of it.
    pub obs: Option<ObsSnapshot>,
}

impl fmt::Display for PlanFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fault plan seed {:#018x} failed at event {}: {}",
            self.seed, self.failed_at, self.error
        )?;
        writeln!(f, "event log:")?;
        for line in &self.event_log {
            writeln!(f, "  {line}")?;
        }
        if let Some(obs) = &self.obs {
            writeln!(f, "observability at failure (metrics + flight tails):")?;
            for line in obs.render_text(8).lines() {
                writeln!(f, "  {line}")?;
            }
        }
        write!(
            f,
            "replay: FaultPlan::generate({:#x}, &shape) with the same shape, \
             or run the minimized prefix via minimize_failure",
            self.seed
        )
    }
}

impl std::error::Error for PlanFailure {}

impl PlanFailure {
    /// The failure as pretty-printed JSON — seed, failing event, event log
    /// and the embedded observability snapshot — for machine consumption
    /// (CI uploads these as workflow artifacts).
    pub fn dump_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("infallible in-memory serialization")
    }

    /// Write [`dump_json`](PlanFailure::dump_json) to
    /// `<dir>/<label>.json`, creating `dir` as needed. Returns the path.
    /// Errors are returned, not panicked: dump writing runs on failure
    /// paths that already carry a better panic message.
    pub fn write_dump(
        &self,
        dir: &std::path::Path,
        label: &str,
    ) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{label}.json"));
        std::fs::write(&path, self.dump_json())?;
        Ok(path)
    }
}

/// Execute `plan` against `driver`, checking invariants after every event.
/// Ends with a quiesce + final check so in-flight work cannot hide a
/// violation.
pub fn run_plan<D: FaultDriver>(
    driver: &mut D,
    plan: &FaultPlan,
) -> Result<PlanReport, PlanFailure> {
    // Every failure path snapshots the driver's observability state, so the
    // report shows what each machine was doing — not just what the harness
    // asked of it.
    fn fail<D: FaultDriver>(
        driver: &mut D,
        seed: u64,
        failed_at: usize,
        error: String,
        log: &[String],
    ) -> PlanFailure {
        PlanFailure {
            seed,
            failed_at,
            error,
            event_log: log.to_vec(),
            obs: driver.obs_snapshot(),
        }
    }
    let mut log = Vec::with_capacity(plan.events.len());
    let mut checks = 0u64;
    for (i, event) in plan.events.iter().enumerate() {
        log.push(format!("[{i}] {event}"));
        if let Err(e) = driver.apply(event) {
            return Err(fail(driver, plan.seed, i, e, &log));
        }
        match driver.verify() {
            Ok(true) => checks += 1,
            Ok(false) => {}
            Err(e) => {
                return Err(fail(
                    driver,
                    plan.seed,
                    i,
                    format!("invariant violated: {e}"),
                    &log,
                ))
            }
        }
    }
    let end = plan.events.len().saturating_sub(1);
    if let Err(e) = driver.quiesce() {
        return Err(fail(
            driver,
            plan.seed,
            end,
            format!("failed to quiesce: {e}"),
            &log,
        ));
    }
    match driver.verify() {
        Ok(true) => checks += 1,
        Ok(false) => {}
        Err(e) => {
            return Err(fail(
                driver,
                plan.seed,
                end,
                format!("invariant violated at quiesce: {e}"),
                &log,
            ))
        }
    }
    Ok(PlanReport {
        seed: plan.seed,
        applied: plan.events.len(),
        invariant_checks: checks,
        event_log: log,
    })
}

/// Greedily shrink a failing plan to a minimal subsequence that still
/// fails, re-running a fresh driver from `factory` per candidate. The
/// result is what a human replays: usually a handful of events instead of
/// hundreds.
pub fn minimize_failure<D, F>(mut factory: F, plan: &FaultPlan) -> FaultPlan
where
    D: FaultDriver,
    F: FnMut() -> D,
{
    let still_fails = |events: &[FaultEvent], factory: &mut F| {
        let candidate = FaultPlan {
            seed: plan.seed,
            events: events.to_vec(),
        };
        run_plan(&mut factory(), &candidate).is_err()
    };
    // Start from the prefix ending at the original failure point.
    let mut events = match run_plan(&mut factory(), plan) {
        Err(f) => plan.events[..=f.failed_at.min(plan.events.len() - 1)].to_vec(),
        Ok(_) => return plan.clone(), // flaky elsewhere; nothing to minimize
    };
    let mut i = 0;
    while i < events.len() {
        let mut candidate = events.clone();
        candidate.remove(i);
        if still_fails(&candidate, &mut factory) {
            events = candidate; // the event was irrelevant; drop it
        } else {
            i += 1; // load-bearing; keep it
        }
    }
    FaultPlan {
        seed: plan.seed,
        events,
    }
}

/// Is this protocol error a legitimate refusal under some failure/partition
/// scenario (as opposed to a broken guarantee)?
fn is_refusal(e: &RaddError) -> bool {
    matches!(
        e,
        RaddError::MultipleFailure { .. }
            | RaddError::Blocked
            | RaddError::ActorIsolated { .. }
            | RaddError::Unavailable { .. }
            | RaddError::InconsistentRead { .. }
    )
}

impl FaultDriver for CheckedCluster {
    fn apply(&mut self, event: &FaultEvent) -> Result<(), String> {
        let num_sites = self.cluster().config().num_sites();
        match *event {
            FaultEvent::Write { site, index, fill } => {
                let data = payload(fill, self.cluster().config().block_size);
                match self.write(site, index, &data) {
                    Ok(()) => Ok(()),
                    Err(e) if is_refusal(&e) => Ok(()),
                    Err(e) => Err(format!("write(site {site}, index {index}): {e}")),
                }
            }
            FaultEvent::Read { site, index } => match self.read(site, index) {
                Ok(_) => Ok(()),
                Err(CheckError::Protocol(e)) if is_refusal(&e) => Ok(()),
                Err(e) => Err(format!("read(site {site}, index {index}): {e}")),
            },
            // Failure injection quiesces first: killing a site with parity
            // updates still queued is the §6 in-doubt problem, which needs
            // coordinator logs this runtime does not model.
            FaultEvent::Fail { site, kind } => {
                self.quiesce()?;
                match kind {
                    FailureKind::SiteFailure => self.cluster_mut().fail_site(site),
                    FailureKind::Disaster => self.cluster_mut().disaster(site),
                    FailureKind::DiskFailure { disk } => self.cluster_mut().fail_disk(site, disk),
                }
                Ok(())
            }
            FaultEvent::ReplaceDisk { site, disk } => {
                self.cluster_mut().replace_disk(site, disk);
                Ok(())
            }
            FaultEvent::RestoreSite { site } => {
                self.cluster_mut().restore_site(site);
                Ok(())
            }
            FaultEvent::Recover { site } => {
                if self.cluster().site_state(site) == SiteState::Recovering {
                    self.cluster_mut()
                        .run_recovery(site)
                        .map(|_| ())
                        .map_err(|e| format!("recovery of site {site}: {e}"))
                } else {
                    Ok(())
                }
            }
            FaultEvent::Isolate { site } => {
                self.quiesce()?;
                self.cluster_mut()
                    .set_partition(PartitionMap::isolate(num_sites, site));
                Ok(())
            }
            FaultEvent::Heal { site } => {
                self.cluster_mut()
                    .set_partition(PartitionMap::connected(num_sites));
                // §5: the reconnected site re-enters through recovery — it
                // may hold stale blocks whose writes were absorbed by
                // spares while it was cut off.
                if self.cluster().site_state(site) == SiteState::Up {
                    self.cluster_mut().fail_site(site);
                    self.cluster_mut().restore_site(site);
                }
                Ok(())
            }
            // The DES models the reliable network of §3; loss bursts only
            // bite on the threaded runtime.
            FaultEvent::LossBurst { .. } | FaultEvent::LossEnd => Ok(()),
            FaultEvent::FlushParity => self.quiesce(),
            // §3.4 crash/restart: quiesce first (crashing with a parity
            // update in doubt is the §6 problem no runtime here models),
            // then round-trip the site through its durable snapshot. A
            // volatile-storage cluster reports `false` — a legitimate
            // no-op, not a failure — so crash plans also run on the
            // default configuration.
            FaultEvent::KillRestart { site } => {
                self.quiesce()?;
                self.cluster_mut().kill_restart_site(site);
                Ok(())
            }
            // Checker-granularity events address the model checker's
            // explicit in-flight message vector; the DES delivers
            // synchronously and has no such addressable network.
            FaultEvent::StepClient { .. }
            | FaultEvent::Deliver { .. }
            | FaultEvent::DropMsg { .. }
            | FaultEvent::DupMsg { .. }
            | FaultEvent::FireTimer { .. }
            | FaultEvent::EvictReplies { .. } => Ok(()),
        }
    }

    fn verify(&mut self) -> Result<bool, String> {
        self.check_invariants().map(|()| true)
    }

    fn quiesce(&mut self) -> Result<(), String> {
        self.cluster_mut()
            .flush_parity()
            .map_err(|e| format!("parity flush: {e}"))
    }

    fn obs_snapshot(&mut self) -> Option<ObsSnapshot> {
        self.cluster_mut().obs_snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radd_core::RaddConfig;

    fn des() -> CheckedCluster {
        CheckedCluster::new(RaddConfig::small_g4()).unwrap()
    }

    #[test]
    fn generation_is_deterministic() {
        let shape = PlanShape::default();
        let a = FaultPlan::generate(42, &shape);
        let b = FaultPlan::generate(42, &shape);
        assert_eq!(a, b);
        let c = FaultPlan::generate(43, &shape);
        assert_ne!(a.events, c.events);
    }

    #[test]
    fn generated_plans_repair_everything() {
        // After any generated plan, a fresh DES cluster ends fully healthy:
        // every site up, no partition, no queued parity.
        for seed in [1u64, 2, 3, 0xDEAD, 0xBEEF] {
            let plan = FaultPlan::generate(seed, &PlanShape::default());
            let mut cc = des();
            let report = run_plan(&mut cc, &plan).unwrap_or_else(|f| panic!("seed {seed}: {f}"));
            assert_eq!(report.applied, plan.events.len());
            assert!(report.invariant_checks > 0);
            for s in 0..cc.cluster().config().num_sites() {
                assert_eq!(cc.cluster().site_state(s), SiteState::Up, "site {s}");
            }
            assert_eq!(cc.cluster().pending_parity_updates(), 0);
        }
    }

    #[test]
    fn same_seed_same_event_log_and_check_count() {
        let plan = FaultPlan::generate(7, &PlanShape::default());
        let r1 = run_plan(&mut des(), &plan).unwrap();
        let r2 = run_plan(&mut des(), &plan).unwrap();
        assert_eq!(r1, r2, "DES runs of one plan must be identical");
    }

    #[test]
    fn corruption_is_reported_with_seed_and_prefix() {
        // A plan that writes, then trips over concealed corruption.
        let plan = FaultPlan {
            seed: 0x51EE7,
            events: vec![
                FaultEvent::Write {
                    site: 0,
                    index: 0,
                    fill: 1,
                },
                FaultEvent::Write {
                    site: 1,
                    index: 0,
                    fill: 2,
                },
                FaultEvent::Read { site: 0, index: 0 },
            ],
        };
        let mut cc = des();
        // Run the first two events, then corrupt behind the protocol's back.
        let prefix = FaultPlan {
            seed: plan.seed,
            events: plan.events[..2].to_vec(),
        };
        run_plan(&mut cc, &prefix).unwrap();
        let row = cc.cluster().geometry().data_to_physical(0, 0);
        let bs = cc.cluster().config().block_size;
        cc.cluster_mut().corrupt_block(0, row, &vec![0xAA; bs]);
        let failure = run_plan(
            &mut cc,
            &FaultPlan {
                seed: plan.seed,
                events: plan.events[2..].to_vec(),
            },
        )
        .unwrap_err();
        assert_eq!(failure.seed, 0x51EE7);
        let msg = failure.to_string();
        assert!(msg.contains("0x0000000000051ee7"), "seed in report: {msg}");
        assert!(msg.contains("replay"), "replay instructions: {msg}");
    }

    #[test]
    fn minimizer_shrinks_to_the_load_bearing_events() {
        // Driver factory: a cluster whose site-2 block is corrupted right
        // after the oracle write lands. We model that by wrapping apply.
        struct Sabotage {
            cc: CheckedCluster,
            armed: bool,
        }
        impl FaultDriver for Sabotage {
            fn apply(&mut self, event: &FaultEvent) -> Result<(), String> {
                self.cc.apply(event)?;
                if !self.armed {
                    if let FaultEvent::Write {
                        site: 2, index: 1, ..
                    } = event
                    {
                        let row = self.cc.cluster().geometry().data_to_physical(2, 1);
                        let bs = self.cc.cluster().config().block_size;
                        self.cc.cluster_mut().corrupt_block(2, row, &vec![0x55; bs]);
                        self.armed = true;
                    }
                }
                Ok(())
            }
            fn verify(&mut self) -> Result<bool, String> {
                // Only the explicit read trips it — keeps the minimization
                // interesting (per-event invariant checks would fire at the
                // write itself).
                Ok(false)
            }
            fn quiesce(&mut self) -> Result<(), String> {
                FaultDriver::quiesce(&mut self.cc)
            }
        }

        // Build a long plan whose failure needs exactly two events: the
        // write that feeds the oracle and the read that exposes the
        // corruption. Everything in between is chaff the minimizer drops.
        let mut events = vec![FaultEvent::Write {
            site: 2,
            index: 1,
            fill: 9,
        }];
        for i in 0..10 {
            events.push(FaultEvent::Read {
                site: 3,
                index: i % 4,
            });
        }
        events.push(FaultEvent::Read { site: 2, index: 1 });
        let plan = FaultPlan {
            seed: 0xBAD,
            events,
        };

        let factory = || Sabotage {
            cc: des(),
            armed: false,
        };
        assert!(run_plan(&mut factory(), &plan).is_err());
        let minimized = minimize_failure(factory, &plan);
        assert_eq!(
            minimized.events,
            vec![
                FaultEvent::Write {
                    site: 2,
                    index: 1,
                    fill: 9
                },
                FaultEvent::Read { site: 2, index: 1 },
            ],
            "chaff reads dropped, load-bearing write+read kept"
        );
    }

    #[test]
    fn seed_from_name_is_stable_and_distinct() {
        let a = seed_from_name("0xRADD0001");
        assert_eq!(a, seed_from_name("0xRADD0001"), "stable across calls");
        assert_ne!(a, seed_from_name("0xRADD0002"));
        assert_ne!(a, 0);
    }

    #[test]
    fn payload_is_a_pure_function_of_fill() {
        assert_eq!(payload(5, 64), payload(5, 64));
        assert_ne!(payload(5, 64), payload(6, 64));
        assert_eq!(payload(5, 64).len(), 64);
    }
}
