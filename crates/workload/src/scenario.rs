//! Scripted failure timelines.
//!
//! A scenario interleaves load phases with failure injection and repair,
//! producing one [`MixReport`] per load phase — how the bench harness
//! measures "during failure" rows and the §7.4 claim that a single site
//! failure raises the surviving sites' load by ~50 %.

use crate::access::AccessPattern;
use crate::mix::{run_mix, Mix, MixReport};
use radd_core::{RaddError, SiteId};
use radd_schemes::{FailureKind, ReplicationScheme};
use radd_sim::SimRng;

/// One step of a scenario.
#[derive(Debug, Clone, Copy)]
pub enum ScenarioStep {
    /// Run `ops` operations of the given mix.
    Load {
        /// Operation count.
        ops: u64,
        /// Read/write mix.
        mix: Mix,
        /// A label for the resulting report.
        label: &'static str,
    },
    /// Inject a failure.
    Inject(SiteId, FailureKind),
    /// Repair a site (runs the scheme's recovery to completion).
    Repair(SiteId),
}

/// A labelled per-phase result.
#[derive(Debug, Clone)]
pub struct PhaseReport {
    /// The load step's label.
    pub label: &'static str,
    /// Its measurements.
    pub report: MixReport,
}

/// Run a scenario to completion.
pub fn run_scenario<S: ReplicationScheme + ?Sized>(
    scheme: &mut S,
    rng: &mut SimRng,
    pattern: AccessPattern,
    steps: &[ScenarioStep],
) -> Result<Vec<PhaseReport>, RaddError> {
    let mut phases = Vec::new();
    for step in steps {
        match *step {
            ScenarioStep::Load { ops, mix, label } => {
                let report = run_mix(scheme, rng, ops, mix, pattern)?;
                phases.push(PhaseReport { label, report });
            }
            ScenarioStep::Inject(site, kind) => scheme.inject(site, kind)?,
            ScenarioStep::Repair(site) => scheme.repair(site)?,
        }
    }
    Ok(phases)
}

#[cfg(test)]
mod tests {
    use super::*;
    use radd_core::RaddConfig;
    use radd_schemes::Radd;

    #[test]
    fn healthy_failed_recovered_lifecycle() {
        let mut cfg = RaddConfig::small_g4();
        cfg.block_size = 32;
        let mut scheme = Radd::new(cfg).unwrap();
        let mut rng = SimRng::seed_from_u64(9);
        let phases = run_scenario(
            &mut scheme,
            &mut rng,
            AccessPattern::Uniform,
            &[
                ScenarioStep::Load {
                    ops: 600,
                    mix: Mix::paper_2to1(),
                    label: "healthy",
                },
                ScenarioStep::Inject(2, FailureKind::SiteFailure),
                ScenarioStep::Load {
                    ops: 600,
                    mix: Mix::paper_2to1(),
                    label: "degraded",
                },
                ScenarioStep::Repair(2),
                ScenarioStep::Load {
                    ops: 600,
                    mix: Mix::paper_2to1(),
                    label: "recovered",
                },
            ],
        )
        .unwrap();
        assert_eq!(phases.len(), 3);
        let healthy = phases[0].report.mean_latency_ms();
        let degraded = phases[1].report.mean_latency_ms();
        let recovered = phases[2].report.mean_latency_ms();
        assert!(
            degraded > healthy * 1.1,
            "failure must hurt: {healthy} → {degraded}"
        );
        assert!(
            (recovered - healthy).abs() < healthy * 0.2,
            "recovery restores performance: {healthy} vs {recovered}"
        );
        scheme.verify().unwrap();
    }

    #[test]
    fn degraded_read_amplification_matches_section_74() {
        // "If a single site fails, then (G-1)/G of the read operations are
        // unaffected while 1/G of them require G physical reads. Hence, on
        // average, each read requires two physical read operations during
        // failures."
        let mut cfg = RaddConfig::small_g4(); // G = 4
        cfg.block_size = 32;
        // No spares: every down-site read reconstructs, which is the
        // steady-state the paper's arithmetic describes (spares would
        // absorb repeats at one read each).
        cfg.spare_policy = radd_core::SparePolicy::None;
        let mut scheme = Radd::new(cfg).unwrap();
        let mut rng = SimRng::seed_from_u64(5);
        let phases = run_scenario(
            &mut scheme,
            &mut rng,
            AccessPattern::Uniform,
            &[
                ScenarioStep::Inject(1, FailureKind::SiteFailure),
                ScenarioStep::Load {
                    ops: 4000,
                    mix: Mix::read_only(),
                    label: "degraded reads",
                },
            ],
        )
        .unwrap();
        let r = &phases[0].report;
        let physical_reads = r.counts.local_reads + r.counts.remote_reads;
        let amplification = physical_reads as f64 / r.reads as f64;
        // 1/6 of reads target the down site and cost G = 4 reads each:
        // (5/6)·1 + (1/6)·4 = 1.5.
        assert!(
            (1.35..1.65).contains(&amplification),
            "amplification {amplification}"
        );
    }
}
