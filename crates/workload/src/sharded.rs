//! Cross-group workloads and fault plans for sharded clusters.
//!
//! The single-group engine ([`crate::faults`]) speaks `(site, index)`
//! addresses inside one group. A sharded cluster speaks [`GlobalAddr`]s
//! over many groups and takes its faults at **pool-site** granularity — one
//! site failing degrades every group with a member slot there. This module
//! is the multi-group counterpart: a deterministic generator of seeded
//! mixed workloads (uniform cross-group traffic, hot-group bursts,
//! pool-site failure/repair cycles, loss bursts) and a driver harness that
//! replays them against any sharded runtime while checking an oracle.
//!
//! Determinism mirrors `FaultPlan`: generation uses only [`SimRng`]
//! streams, so a seed names the same plan on every platform, and plans end
//! healthy (failures repaired, bursts ended) so the final sweep runs on a
//! clean cluster.

use radd_layout::{Geometry, GlobalAddr, ShardMap};
use radd_sim::SimRng;
use std::collections::BTreeMap;
use std::fmt;

/// One step of a sharded plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardedEvent {
    /// Write the deterministic [`payload`](crate::faults::payload) of
    /// `fill` to a global address.
    Write {
        /// Target address.
        addr: u64,
        /// Payload seed.
        fill: u64,
    },
    /// Read a global address (checked against the oracle).
    Read {
        /// Target address.
        addr: u64,
    },
    /// Fail a pool site: every group hosting a member slot there loses it.
    FailPoolSite {
        /// The pool site.
        site: usize,
    },
    /// Repair a pool site: restore hardware, drain spares, mark up — in
    /// every affected group.
    RecoverPoolSite {
        /// The pool site.
        site: usize,
    },
    /// Start dropping ~`permille`/1000 of messages (threaded runtimes;
    /// synchronous interpreters ignore it).
    LossBurst {
        /// Drop probability in 1/1000 units.
        permille: u16,
        /// Victim-selection seed.
        seed: u64,
    },
    /// End the loss burst.
    LossEnd,
    /// Wait until all parity updates are acknowledged.
    Quiesce,
}

impl fmt::Display for ShardedEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardedEvent::Write { addr, fill } => write!(f, "write @{addr} fill={fill:#x}"),
            ShardedEvent::Read { addr } => write!(f, "read @{addr}"),
            ShardedEvent::FailPoolSite { site } => write!(f, "fail pool site {site}"),
            ShardedEvent::RecoverPoolSite { site } => write!(f, "recover pool site {site}"),
            ShardedEvent::LossBurst { permille, seed } => {
                write!(f, "loss burst {permille}/1000 seed={seed:#x}")
            }
            ShardedEvent::LossEnd => write!(f, "loss end"),
            ShardedEvent::Quiesce => write!(f, "quiesce"),
        }
    }
}

/// Shape parameters for sharded plan generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardedShape {
    /// Number of groups `A`.
    pub num_groups: usize,
    /// Group size `G` (each group has `G + 2` member slots).
    pub group_size: usize,
    /// Rows per member slot.
    pub rows: u64,
    /// Steps to draw (repairs ride along).
    pub steps: usize,
}

impl Default for ShardedShape {
    /// The multi-group differential shape: 4 groups of `G = 2` over the
    /// minimal shared pool (4 sites, each serving all 4 groups).
    fn default() -> ShardedShape {
        ShardedShape {
            num_groups: 4,
            group_size: 2,
            rows: 8,
            steps: 80,
        }
    }
}

impl ShardedShape {
    /// The shard map this shape describes (uniform minimal pool).
    pub fn map(&self) -> ShardMap {
        let geo = Geometry::new(self.group_size, self.rows).expect("valid shape");
        ShardMap::uniform(self.num_groups, geo).expect("uniform pools always carve")
    }
}

/// A named, replayable sequence of sharded events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardedPlan {
    /// The generating seed (0 for hand-composed plans).
    pub seed: u64,
    /// The shape the plan was drawn for.
    pub shape: ShardedShape,
    /// The events, in execution order.
    pub events: Vec<ShardedEvent>,
}

impl ShardedPlan {
    /// A hand-composed plan.
    pub fn from_events(shape: ShardedShape, events: Vec<ShardedEvent>) -> ShardedPlan {
        ShardedPlan {
            seed: 0,
            shape,
            events,
        }
    }

    /// Generate a plan: mostly load — alternating uniform cross-group
    /// traffic with hot-group bursts (a run of accesses inside one group's
    /// range, the §4 locality case) — plus pool-site failure/repair
    /// cycles (one at a time, quiesced before the kill so no update is
    /// stranded) and loss bursts. Ends healthy.
    pub fn generate(seed: u64, shape: &ShardedShape) -> ShardedPlan {
        let map = shape.map();
        let total = map.total_data_blocks();
        let cap = map.group_capacity();
        let pool = map.pool_len();
        let mut rng = SimRng::seed_from_u64(seed);
        let mut events = Vec::with_capacity(shape.steps + 8);
        let mut down: Option<usize> = None;
        let mut loss = false;

        for _ in 0..shape.steps {
            match rng.below(100) {
                // Uniform cross-group load, write-heavy.
                0..=39 => {
                    let addr = rng.below(total);
                    let fill = rng.next_u64();
                    events.push(ShardedEvent::Write { addr, fill });
                }
                40..=54 => {
                    let addr = rng.below(total);
                    events.push(ShardedEvent::Read { addr });
                }
                // Hot-group burst: a short run inside one group's range.
                55..=74 => {
                    let group = rng.index(shape.num_groups) as u64;
                    let burst = 2 + rng.index(4) as u64;
                    for _ in 0..burst {
                        let addr = group * cap + rng.below(cap);
                        if rng.below(4) == 0 {
                            events.push(ShardedEvent::Read { addr });
                        } else {
                            let fill = rng.next_u64();
                            events.push(ShardedEvent::Write { addr, fill });
                        }
                    }
                }
                // Pool-site failure — or repair, if one is active.
                75..=89 => match down {
                    None => {
                        let site = rng.index(pool);
                        events.push(ShardedEvent::Quiesce);
                        events.push(ShardedEvent::FailPoolSite { site });
                        down = Some(site);
                    }
                    Some(site) => {
                        events.push(ShardedEvent::RecoverPoolSite { site });
                        down = None;
                    }
                },
                // Loss burst toggle.
                _ => {
                    if loss {
                        events.push(ShardedEvent::LossEnd);
                        loss = false;
                    } else {
                        events.push(ShardedEvent::LossBurst {
                            permille: 100 + (rng.below(150) as u16),
                            seed: rng.next_u64(),
                        });
                        loss = true;
                    }
                }
            }
        }
        if loss {
            events.push(ShardedEvent::LossEnd);
        }
        if let Some(site) = down {
            events.push(ShardedEvent::RecoverPoolSite { site });
        }
        events.push(ShardedEvent::Quiesce);
        ShardedPlan {
            seed,
            shape: *shape,
            events,
        }
    }

    /// Addresses the plan touches, for sizing oracles and reports.
    pub fn touched(&self) -> usize {
        let mut addrs: Vec<u64> = self
            .events
            .iter()
            .filter_map(|e| match e {
                ShardedEvent::Write { addr, .. } | ShardedEvent::Read { addr } => Some(*addr),
                _ => None,
            })
            .collect();
        addrs.sort_unstable();
        addrs.dedup();
        addrs.len()
    }
}

/// What a sharded runtime must expose to replay a [`ShardedPlan`].
///
/// Both in-process runtimes ship adapters: `radd_core::ShardedCluster` and
/// `radd_node::ShardedNodeCluster` (via the facade's integration tests).
pub trait ShardedFaultDriver {
    /// Cluster block size.
    fn block_size(&self) -> usize;
    /// The shard map (for skip decisions and fan-out accounting).
    fn map(&self) -> &ShardMap;
    /// Write `data` to a global address.
    fn write(&mut self, addr: GlobalAddr, data: &[u8]) -> Result<(), String>;
    /// Read a global address.
    fn read(&mut self, addr: GlobalAddr) -> Result<Vec<u8>, String>;
    /// Fail a pool site in every affected group.
    fn fail_pool_site(&mut self, site: usize);
    /// Restore + drain + mark up a pool site in every affected group.
    fn recover_pool_site(&mut self, site: usize) -> Result<(), String>;
    /// Message-loss injection (no-op for synchronous runtimes).
    fn set_loss(&mut self, _permille: u16, _seed: u64) {}
    /// Wait for all parity updates to be acknowledged (no-op for
    /// synchronous runtimes).
    fn quiesce(&mut self) -> Result<(), String> {
        Ok(())
    }
    /// Run the stripe-invariant sweep.
    fn verify_parity(&mut self) -> Result<(), String>;
}

/// Replay statistics from [`run_sharded_plan`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ShardedReport {
    /// Writes applied (and recorded in the oracle).
    pub writes: u64,
    /// Reads issued.
    pub reads: u64,
    /// Writes skipped because the address's parity pool site was down
    /// (mirrors the single-group drivers' convention).
    pub skipped: u64,
    /// Groups degraded across all pool-site failures (fan-out total).
    pub degraded_groups: u64,
}

/// Replay `plan` against `driver`, checking every read against an oracle
/// of acknowledged writes and running the final invariant sweep plus a
/// full oracle readback. Returns the replay statistics; errors carry the
/// failing step.
pub fn run_sharded_plan<D: ShardedFaultDriver>(
    driver: &mut D,
    plan: &ShardedPlan,
) -> Result<ShardedReport, String> {
    let bs = driver.block_size();
    let mut oracle: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
    let mut report = ShardedReport::default();
    let mut impaired: Option<usize> = None;
    let step = |i: usize, e: &ShardedEvent, msg: String| format!("step {i} ({e}): {msg}");
    for (i, event) in plan.events.iter().enumerate() {
        match *event {
            ShardedEvent::Write { addr, fill } => {
                // Same convention as the single-group drivers: a write
                // whose row's parity site is the impaired pool site would
                // strand, so the harness skips it.
                if impaired.is_some() && driver.map().parity_pool_site(GlobalAddr(addr)) == impaired
                {
                    report.skipped += 1;
                    continue;
                }
                let data = crate::faults::payload(fill, bs);
                driver
                    .write(GlobalAddr(addr), &data)
                    .map_err(|e| step(i, event, e))?;
                oracle.insert(addr, data);
                report.writes += 1;
            }
            ShardedEvent::Read { addr } => {
                let got = driver.read(GlobalAddr(addr)).map_err(|e| step(i, event, e));
                report.reads += 1;
                match oracle.get(&addr) {
                    Some(want) => {
                        let got = got?;
                        if &got != want {
                            return Err(step(
                                i,
                                event,
                                format!("content mismatch ({} vs {} bytes)", got.len(), want.len()),
                            ));
                        }
                    }
                    // Unwritten blocks may legitimately fail on some
                    // runtimes mid-fault; only written content is checked.
                    None => drop(got),
                }
            }
            ShardedEvent::FailPoolSite { site } => {
                report.degraded_groups += driver.map().pool_site_slots(site).len() as u64;
                driver.fail_pool_site(site);
                impaired = Some(site);
            }
            ShardedEvent::RecoverPoolSite { site } => {
                driver
                    .recover_pool_site(site)
                    .map_err(|e| step(i, event, e))?;
                impaired = None;
            }
            ShardedEvent::LossBurst { permille, seed } => driver.set_loss(permille, seed),
            ShardedEvent::LossEnd => driver.set_loss(0, 0),
            ShardedEvent::Quiesce => driver.quiesce().map_err(|e| step(i, event, e))?,
        }
    }
    driver
        .quiesce()
        .map_err(|e| format!("final quiesce: {e}"))?;
    driver
        .verify_parity()
        .map_err(|e| format!("final invariant sweep: {e}"))?;
    for (&addr, want) in &oracle {
        let got = driver
            .read(GlobalAddr(addr))
            .map_err(|e| format!("readback @{addr}: {e}"))?;
        if &got != want {
            return Err(format!("readback @{addr}: acknowledged write lost"));
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_ends_healthy() {
        let shape = ShardedShape::default();
        let a = ShardedPlan::generate(0xABCD, &shape);
        let b = ShardedPlan::generate(0xABCD, &shape);
        assert_eq!(a, b);
        assert_ne!(a, ShardedPlan::generate(0xABCE, &shape));
        // Every failure is repaired and every burst ended.
        let mut down = 0i64;
        let mut loss = 0i64;
        for e in &a.events {
            match e {
                ShardedEvent::FailPoolSite { .. } => down += 1,
                ShardedEvent::RecoverPoolSite { .. } => down -= 1,
                ShardedEvent::LossBurst { .. } => loss += 1,
                ShardedEvent::LossEnd => loss -= 1,
                _ => {}
            }
            assert!((0..=1).contains(&down), "at most one failure at a time");
        }
        assert_eq!(down, 0, "plan ends with all sites up");
        assert_eq!(loss, 0, "plan ends with loss off");
    }

    #[test]
    fn plans_cross_group_boundaries() {
        let shape = ShardedShape::default();
        let map = shape.map();
        let cap = map.group_capacity();
        let plan = ShardedPlan::generate(0x5EED, &shape);
        let mut groups_touched = std::collections::BTreeSet::new();
        for e in &plan.events {
            if let ShardedEvent::Write { addr, .. } | ShardedEvent::Read { addr } = e {
                assert!(*addr < map.total_data_blocks(), "address in range");
                groups_touched.insert(addr / cap);
            }
        }
        assert_eq!(
            groups_touched.len(),
            shape.num_groups,
            "a default-shape plan should touch every group"
        );
        assert!(plan.touched() > 0);
    }

    #[test]
    fn des_sharded_cluster_replays_a_seeded_plan() {
        use radd_core::{RaddConfig, ShardedCluster};

        struct Des(ShardedCluster);
        impl ShardedFaultDriver for Des {
            fn block_size(&self) -> usize {
                self.0.config().block_size
            }
            fn map(&self) -> &ShardMap {
                self.0.map()
            }
            fn write(&mut self, addr: GlobalAddr, data: &[u8]) -> Result<(), String> {
                self.0.write(addr, data).map_err(|e| e.to_string())
            }
            fn read(&mut self, addr: GlobalAddr) -> Result<Vec<u8>, String> {
                self.0.read(addr).map_err(|e| e.to_string())
            }
            fn fail_pool_site(&mut self, site: usize) {
                self.0.fail_pool_site(site);
            }
            fn recover_pool_site(&mut self, site: usize) -> Result<(), String> {
                self.0.restore_pool_site(site);
                self.0
                    .recover_pool_site(site)
                    .map(drop)
                    .map_err(|e| e.to_string())
            }
            fn verify_parity(&mut self) -> Result<(), String> {
                self.0.verify_parity()
            }
        }

        let shape = ShardedShape::default();
        let mut config = RaddConfig::small_g4();
        config.group_size = shape.group_size;
        config.rows = shape.rows;
        let mut driver = Des(ShardedCluster::uniform(shape.num_groups, config).unwrap());
        let plan = ShardedPlan::generate(crate::faults::seed_from_name("0xRADD-MG"), &shape);
        let report = run_sharded_plan(&mut driver, &plan).unwrap();
        assert!(report.writes > 0, "plan must exercise writes");
        assert!(
            report.degraded_groups == 0 || report.degraded_groups >= shape.num_groups as u64,
            "a pool-site failure on the uniform pool degrades every group"
        );
    }
}
