//! Block access patterns.

use radd_sim::SimRng;
use serde::{Deserialize, Serialize};

/// How block indices are drawn.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AccessPattern {
    /// Every block equally likely.
    Uniform,
    /// Zipf-distributed with skew `theta` (θ → 0 approaches uniform; the
    /// classic "80/20" database skew sits near θ = 0.8–1.0).
    Zipf {
        /// Skew parameter.
        theta: f64,
    },
    /// Round-robin sequential scan.
    Sequential,
}

/// A sampler of block indices in `[0, n)` following a pattern.
#[derive(Debug)]
pub struct AccessSampler {
    pattern: AccessPattern,
    n: u64,
    /// Cumulative distribution for Zipf (length `n`).
    cdf: Vec<f64>,
    cursor: u64,
}

impl AccessSampler {
    /// Build a sampler over `n` blocks.
    pub fn new(pattern: AccessPattern, n: u64) -> AccessSampler {
        assert!(n > 0, "need at least one block");
        let cdf = if let AccessPattern::Zipf { theta } = pattern {
            let mut weights: Vec<f64> = (1..=n).map(|k| 1.0 / (k as f64).powf(theta)).collect();
            let total: f64 = weights.iter().sum();
            let mut acc = 0.0;
            for w in &mut weights {
                acc += *w / total;
                *w = acc;
            }
            weights
        } else {
            Vec::new()
        };
        AccessSampler {
            pattern,
            n,
            cdf,
            cursor: 0,
        }
    }

    /// Draw the next block index.
    pub fn next_index(&mut self, rng: &mut SimRng) -> u64 {
        match self.pattern {
            AccessPattern::Uniform => rng.below(self.n),
            AccessPattern::Sequential => {
                let i = self.cursor;
                self.cursor = (self.cursor + 1) % self.n;
                i
            }
            AccessPattern::Zipf { .. } => {
                let u = rng.uniform_f64();
                // Binary search the CDF.
                self.cdf
                    .partition_point(|&c| c < u)
                    .min(self.n as usize - 1) as u64
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_covers_the_range() {
        let mut s = AccessSampler::new(AccessPattern::Uniform, 10);
        let mut rng = SimRng::seed_from_u64(1);
        let mut seen = [0u32; 10];
        for _ in 0..10_000 {
            seen[s.next_index(&mut rng) as usize] += 1;
        }
        for (i, &c) in seen.iter().enumerate() {
            assert!((800..1200).contains(&c), "index {i}: {c}");
        }
    }

    #[test]
    fn sequential_wraps() {
        let mut s = AccessSampler::new(AccessPattern::Sequential, 3);
        let mut rng = SimRng::seed_from_u64(1);
        let got: Vec<u64> = (0..7).map(|_| s.next_index(&mut rng)).collect();
        assert_eq!(got, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn zipf_is_skewed_toward_low_indices() {
        let mut s = AccessSampler::new(AccessPattern::Zipf { theta: 1.0 }, 100);
        let mut rng = SimRng::seed_from_u64(2);
        let mut low = 0u32;
        let trials = 20_000;
        for _ in 0..trials {
            if s.next_index(&mut rng) < 10 {
                low += 1;
            }
        }
        // With θ = 1 over 100 items, the top 10 carry ~56 % of mass.
        let frac = low as f64 / trials as f64;
        assert!((0.5..0.65).contains(&frac), "low fraction {frac}");
    }

    #[test]
    fn zipf_stays_in_range() {
        let mut s = AccessSampler::new(AccessPattern::Zipf { theta: 0.5 }, 7);
        let mut rng = SimRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(s.next_index(&mut rng) < 7);
        }
    }
}
