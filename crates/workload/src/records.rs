//! The §7.4 record-update workload.
//!
//! "If blocks are 4K in size and records are 100 bytes, then an update of
//! all fields of a data record will cause 2.5 percent of the block to be
//! changed. … In the case that locality of reference results in the
//! average block being changed four times in memory before it is returned
//! to disk, then 8K of disk I/O will result in 400 bytes of network
//! traffic. Hence, the aggregate network bandwidth needs to be only 1/20 of
//! the aggregate disk bandwidth."
//!
//! [`run_record_workload`] reproduces that pipeline against a live
//! [`RaddCluster`]: records are updated in a buffer-pool image of the page
//! (absorption), and only page flushes reach the cluster — whose traffic
//! counters then yield the network side of the ratio.

use radd_core::{Actor, RaddCluster, RaddError, SiteId};
use radd_sim::SimRng;
use serde::{Deserialize, Serialize};

/// Workload shape.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RecordWorkload {
    /// Record size in bytes (the paper uses 100).
    pub record_bytes: usize,
    /// Record updates absorbed in memory per page flush (the paper uses 4).
    pub updates_per_flush: u32,
    /// Total page flushes to perform.
    pub flushes: u64,
    /// Whether to ship full blocks instead of change masks — the ablation
    /// of the paper's mask encoding.
    pub full_block_shipping: bool,
}

impl RecordWorkload {
    /// The §7.4 parameters: 100-byte records, 4× absorption.
    pub fn paper(flushes: u64) -> RecordWorkload {
        RecordWorkload {
            record_bytes: 100,
            updates_per_flush: 4,
            flushes,
            full_block_shipping: false,
        }
    }
}

/// Results: both sides of the bandwidth ratio.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct RecordReport {
    /// Page flushes performed.
    pub flushes: u64,
    /// Record updates applied in memory.
    pub record_updates: u64,
    /// Disk bytes moved (the 8 KB per flush of the paper's arithmetic:
    /// page in + page out).
    pub disk_bytes: u64,
    /// Network payload bytes (parity-update traffic).
    pub network_bytes: u64,
}

impl RecordReport {
    /// Network bytes as a fraction of disk bytes — the paper's "1/20".
    pub fn bandwidth_ratio(&self) -> f64 {
        if self.disk_bytes == 0 {
            0.0
        } else {
            self.network_bytes as f64 / self.disk_bytes as f64
        }
    }
}

/// Run the workload against one site of a cluster.
pub fn run_record_workload(
    cluster: &mut RaddCluster,
    site: SiteId,
    workload: RecordWorkload,
    rng: &mut SimRng,
) -> Result<RecordReport, RaddError> {
    let page_size = cluster.config().block_size;
    assert!(
        workload.record_bytes <= page_size,
        "records must fit in a page"
    );
    let capacity = cluster.data_capacity(site);
    let records_per_page = page_size / workload.record_bytes;
    let traffic_before =
        cluster.traffic().parity_updates.bytes_sent + cluster.traffic().spare_writes.bytes_sent;
    let mut report = RecordReport::default();

    for _ in 0..workload.flushes {
        let index = rng.below(capacity);
        // Page in (disk read into the buffer pool).
        let mut page = cluster.logical_content(site, index)?.to_vec();
        report.disk_bytes += page_size as u64;
        // Absorb several record updates in memory.
        for _ in 0..workload.updates_per_flush {
            let slot = rng.index(records_per_page);
            let offset = slot * workload.record_bytes;
            let fresh = rng.bytes(workload.record_bytes);
            if workload.full_block_shipping {
                // Ablation: pretend every field of every byte changed, so
                // the mask degenerates to the whole block.
                for b in &mut page {
                    *b = b.wrapping_add(1);
                }
            }
            page[offset..offset + workload.record_bytes].copy_from_slice(&fresh);
            report.record_updates += 1;
        }
        // Page out: one RADD write ships the accumulated change mask.
        cluster.write(Actor::Site(site), site, index, &page)?;
        report.disk_bytes += page_size as u64;
        report.flushes += 1;
    }
    let traffic_after =
        cluster.traffic().parity_updates.bytes_sent + cluster.traffic().spare_writes.bytes_sent;
    report.network_bytes = traffic_after - traffic_before;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use radd_core::RaddConfig;

    fn cluster_4k() -> RaddCluster {
        let mut cfg = RaddConfig::paper_g8();
        cfg.block_size = 4096;
        cfg.rows = 20;
        cfg.disks_per_site = 2;
        RaddCluster::new(cfg).unwrap()
    }

    #[test]
    fn masked_shipping_is_a_small_fraction_of_disk_bandwidth() {
        let mut c = cluster_4k();
        let mut rng = SimRng::seed_from_u64(1);
        let report = run_record_workload(&mut c, 0, RecordWorkload::paper(50), &mut rng).unwrap();
        assert_eq!(report.flushes, 50);
        assert_eq!(report.record_updates, 200);
        // The paper's arithmetic: 400 bytes of change per 8 KB of disk I/O
        // → ratio ≈ 1/20. Span headers and UIDs add a little.
        let ratio = report.bandwidth_ratio();
        assert!(
            (0.02..0.12).contains(&ratio),
            "ratio {ratio} (network {} / disk {})",
            report.network_bytes,
            report.disk_bytes
        );
    }

    #[test]
    fn full_block_shipping_ablation_is_an_order_of_magnitude_worse() {
        let mut rng = SimRng::seed_from_u64(2);
        let mut c1 = cluster_4k();
        let masked = run_record_workload(&mut c1, 0, RecordWorkload::paper(30), &mut rng).unwrap();
        let mut rng = SimRng::seed_from_u64(2);
        let mut c2 = cluster_4k();
        let mut wl = RecordWorkload::paper(30);
        wl.full_block_shipping = true;
        let full = run_record_workload(&mut c2, 0, wl, &mut rng).unwrap();
        assert!(
            full.network_bytes > 5 * masked.network_bytes,
            "full {} vs masked {}",
            full.network_bytes,
            masked.network_bytes
        );
    }

    #[test]
    fn workload_preserves_parity() {
        let mut c = cluster_4k();
        let mut rng = SimRng::seed_from_u64(3);
        run_record_workload(&mut c, 3, RecordWorkload::paper(20), &mut rng).unwrap();
        c.verify_parity().unwrap();
    }
}
