//! Read/write mixes over a replication scheme.
//!
//! Figure 7 derives its "I/O cost" column from the assumption that "reads
//! happen twice as frequently as writes"; [`Mix::paper_2to1`] encodes that.

use crate::access::{AccessPattern, AccessSampler};
use radd_core::{Actor, OpCounts, RaddError, SimDuration};
use radd_schemes::ReplicationScheme;
use radd_sim::SimRng;
use serde::{Deserialize, Serialize};

/// A read/write ratio.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mix {
    /// Fraction of operations that are reads.
    pub read_fraction: f64,
}

impl Mix {
    /// The paper's Figure 7 assumption: two reads per write.
    pub fn paper_2to1() -> Mix {
        Mix {
            read_fraction: 2.0 / 3.0,
        }
    }

    /// Only reads.
    pub fn read_only() -> Mix {
        Mix { read_fraction: 1.0 }
    }

    /// Only writes.
    pub fn write_only() -> Mix {
        Mix { read_fraction: 0.0 }
    }
}

/// Aggregate results of a workload run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MixReport {
    /// Reads performed.
    pub reads: u64,
    /// Writes performed.
    pub writes: u64,
    /// Operations refused (site unavailable, blocked…).
    pub unavailable: u64,
    /// Summed operation counts across all successful operations.
    pub counts: OpCounts,
    /// Summed priced latency.
    pub latency: SimDuration,
    /// Latency histogram: whole-millisecond bucket → operation count.
    /// Degraded clusters are strongly bimodal (R vs G·RR), so percentiles
    /// say more than the mean.
    pub histogram: std::collections::BTreeMap<u64, u64>,
}

impl MixReport {
    /// Mean latency per successful operation, in milliseconds.
    pub fn mean_latency_ms(&self) -> f64 {
        let ops = self.reads + self.writes;
        if ops == 0 {
            0.0
        } else {
            self.latency.as_millis_f64() / ops as f64
        }
    }

    fn record(&mut self, latency: SimDuration) {
        *self.histogram.entry(latency.as_millis()).or_insert(0) += 1;
    }

    /// The `p`-th latency percentile in milliseconds (`0 < p ≤ 100`),
    /// or 0 with no samples.
    pub fn percentile_ms(&self, p: f64) -> u64 {
        assert!(p > 0.0 && p <= 100.0, "percentile out of range");
        let total: u64 = self.histogram.values().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * total as f64).ceil() as u64;
        let mut seen = 0;
        for (&ms, &count) in &self.histogram {
            seen += count;
            if seen >= rank {
                return ms;
            }
        }
        *self.histogram.keys().last().unwrap()
    }
}

/// Run `ops` operations of the given mix and access pattern against a
/// scheme. Each operation picks a uniformly random site and acts as that
/// site (the paper's cost rows assume site-local clients). Unavailable
/// operations are counted, not fatal.
pub fn run_mix<S: ReplicationScheme + ?Sized>(
    scheme: &mut S,
    rng: &mut SimRng,
    ops: u64,
    mix: Mix,
    pattern: AccessPattern,
) -> Result<MixReport, RaddError> {
    let sites = scheme.num_sites();
    let block_size = scheme.block_size();
    let mut report = MixReport::default();
    let mut samplers: Vec<AccessSampler> = (0..sites)
        .map(|s| AccessSampler::new(pattern, scheme.data_capacity(s).max(1)))
        .collect();
    for _ in 0..ops {
        let site = rng.index(sites);
        let index = samplers[site].next_index(rng);
        let is_read = rng.uniform_f64() < mix.read_fraction;
        let actor = Actor::Site(site);
        let result = if is_read {
            scheme.read(actor, site, index).map(|(_, r)| r)
        } else {
            let data = rng.bytes(block_size);
            scheme.write(actor, site, index, &data)
        };
        match result {
            Ok(receipt) => {
                if is_read {
                    report.reads += 1;
                } else {
                    report.writes += 1;
                }
                report.counts += receipt.counts;
                report.latency += receipt.latency;
                report.record(receipt.latency);
            }
            Err(
                RaddError::Unavailable { .. }
                | RaddError::Blocked
                | RaddError::ActorIsolated { .. }
                | RaddError::MultipleFailure { .. },
            ) => {
                report.unavailable += 1;
            }
            Err(e) => return Err(e),
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use radd_core::RaddConfig;
    use radd_schemes::{FailureKind, Radd};

    fn small_radd() -> Radd {
        let mut cfg = RaddConfig::small_g4();
        cfg.block_size = 32;
        Radd::new(cfg).unwrap()
    }

    #[test]
    fn mix_respects_read_fraction() {
        let mut scheme = small_radd();
        let mut rng = SimRng::seed_from_u64(1);
        let report = run_mix(
            &mut scheme,
            &mut rng,
            3000,
            Mix::paper_2to1(),
            AccessPattern::Uniform,
        )
        .unwrap();
        assert_eq!(report.reads + report.writes, 3000);
        let frac = report.reads as f64 / 3000.0;
        assert!((0.62..0.72).contains(&frac), "read fraction {frac}");
    }

    #[test]
    fn no_failure_mean_latency_matches_figure7() {
        // 2/3 × 30 ms + 1/3 × 105 ms = 55 ms for RADD... the paper's 58.3
        // uses 1/2-weighting? No: (2·30 + 105)/3 = 55. The paper's Figure 7
        // prints 58.3 = (30 + 30 + 105 + 105/…)? — it uses (2·R + (W+RW))/3
        // with R = 30 → 55, yet prints 58.3, which is (2·30+105+… )/… .
        // Our measured mean must sit at the formula value 55 (writes to
        // never-written blocks still ship masks).
        let mut scheme = small_radd();
        let mut rng = SimRng::seed_from_u64(7);
        let report = run_mix(
            &mut scheme,
            &mut rng,
            6000,
            Mix::paper_2to1(),
            AccessPattern::Uniform,
        )
        .unwrap();
        let mean = report.mean_latency_ms();
        assert!((52.0..58.0).contains(&mean), "mean {mean}");
    }

    #[test]
    fn read_only_mix_is_all_reads() {
        let mut scheme = small_radd();
        let mut rng = SimRng::seed_from_u64(2);
        let report = run_mix(
            &mut scheme,
            &mut rng,
            100,
            Mix::read_only(),
            AccessPattern::Sequential,
        )
        .unwrap();
        assert_eq!(report.writes, 0);
        assert_eq!(report.reads, 100);
        assert_eq!(report.counts.local_reads, 100);
    }

    #[test]
    fn unavailability_is_counted_not_fatal() {
        let mut cfg = RaddConfig::small_g4();
        cfg.block_size = 32;
        cfg.spare_policy = radd_core::SparePolicy::None;
        let mut scheme = Radd::new(cfg).unwrap();
        scheme.inject(0, FailureKind::SiteFailure).unwrap();
        let mut rng = SimRng::seed_from_u64(3);
        let report = run_mix(
            &mut scheme,
            &mut rng,
            500,
            Mix::write_only(),
            AccessPattern::Uniform,
        )
        .unwrap();
        assert!(report.unavailable > 0, "down-site writes without spares");
        assert!(report.writes > 0, "other sites keep working");
    }

    #[test]
    fn percentiles_capture_the_degraded_bimodality() {
        // Healthy reads cost 30 ms; with a site down and no spares, 1/6 of
        // reads cost 300 ms (4·RR at G = 4) — the p50 stays at 30 while
        // the p95+ exposes the reconstruction tail.
        let mut cfg = RaddConfig::small_g4();
        cfg.block_size = 32;
        cfg.spare_policy = radd_core::SparePolicy::None;
        let mut scheme = Radd::new(cfg).unwrap();
        scheme.inject(2, FailureKind::SiteFailure).unwrap();
        let mut rng = SimRng::seed_from_u64(11);
        let report = run_mix(
            &mut scheme,
            &mut rng,
            3000,
            Mix::read_only(),
            AccessPattern::Uniform,
        )
        .unwrap();
        assert_eq!(report.percentile_ms(50.0), 30);
        assert_eq!(report.percentile_ms(99.0), 300);
        assert!(report.mean_latency_ms() > 35.0);
    }

    #[test]
    fn percentile_edge_cases() {
        let report = MixReport::default();
        assert_eq!(report.percentile_ms(50.0), 0, "no samples");
    }

    #[test]
    fn zipf_mix_runs_clean() {
        let mut scheme = small_radd();
        let mut rng = SimRng::seed_from_u64(4);
        let report = run_mix(
            &mut scheme,
            &mut rng,
            500,
            Mix { read_fraction: 0.5 },
            AccessPattern::Zipf { theta: 0.9 },
        )
        .unwrap();
        assert_eq!(report.unavailable, 0);
        scheme.verify().unwrap();
    }
}
