//! # radd-workload — workload generators and failure scenarios
//!
//! Drives the measured experiments:
//!
//! * [`access`] — block access patterns (uniform, Zipf, sequential);
//! * [`mix`] — read/write mixes over any [`ReplicationScheme`], producing
//!   aggregated operation counts and priced latency (the paper's Figure 7
//!   uses a 2-reads-per-write mix);
//! * [`records`] — the §7.4 record-update workload: 100-byte records in
//!   4 KB pages, with buffer-pool write absorption, for the network/disk
//!   bandwidth ratio;
//! * [`scenario`] — scripted failure timelines interleaved with load;
//! * [`faults`] — the deterministic fault-plan engine: seed-generated
//!   event sequences (failures, partitions, loss bursts, repairs) that
//!   run against any [`faults::FaultDriver`] with invariants checked
//!   after every event, reporting a replayable seed + minimized event
//!   prefix on violation;
//! * [`sharded`] — the multi-group counterpart: cross-group access plans
//!   over a [`radd_layout::ShardMap`] (uniform traffic, hot-group bursts,
//!   pool-site failures that degrade every group hosted there) replayed
//!   through any [`sharded::ShardedFaultDriver`].
//!
//! [`ReplicationScheme`]: radd_schemes::ReplicationScheme

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod access;
pub mod faults;
pub mod mix;
pub mod records;
pub mod scenario;
pub mod sharded;

pub use access::AccessPattern;
pub use faults::{
    minimize_failure, run_plan, seed_from_name, FaultDriver, FaultEvent, FaultPlan, PlanFailure,
    PlanReport, PlanShape,
};
pub use mix::{run_mix, Mix, MixReport};
pub use records::{run_record_workload, RecordReport, RecordWorkload};
pub use scenario::{run_scenario, PhaseReport, ScenarioStep};
pub use sharded::{
    run_sharded_plan, ShardedEvent, ShardedFaultDriver, ShardedPlan, ShardedReport, ShardedShape,
};
