//! Replay a checker counterexample through the PR-1 fault-plan machinery.
//!
//! [`ModelDriver`] implements [`FaultDriver`] over a fresh [`Model`], so a
//! [`Counterexample`](crate::explore::Counterexample)'s plan can be
//! re-verified with `run_plan` and shrunk with `minimize_failure` — the
//! same minimize/replay loop every other runtime in this workspace uses.
//!
//! Index-granular events (`Deliver #3`) address *the vector at the moment
//! of delivery*, so deleting an earlier event can shift what an index
//! means. That is fine for greedy minimization: every candidate plan is
//! re-executed from scratch and kept only if it still fails, so a shifted
//! index either reproduces a genuine violation (accepted) or does not
//! (rejected). Events that are not currently enabled are skipped as
//! no-ops for the same reason.

use crate::model::{Action, Model, ModelConfig};
use radd_obs::ObsSnapshot;
use radd_workload::faults::{FaultDriver, FaultEvent};

/// [`FaultDriver`] over the checker's model (replay/minimize mode: the
/// per-site observability taps are on).
pub struct ModelDriver {
    model: Model,
}

impl ModelDriver {
    /// A fresh driver over the initial state of `cfg`.
    pub fn new(cfg: &ModelConfig) -> ModelDriver {
        let mut model = Model::new(cfg);
        model.enable_obs();
        ModelDriver { model }
    }

    /// The underlying model state.
    pub fn model(&self) -> &Model {
        &self.model
    }

    fn action_of(&self, event: &FaultEvent) -> Option<Action> {
        match *event {
            FaultEvent::StepClient { client } => Some(Action::Step { client }),
            FaultEvent::Deliver { index } => Some(Action::Deliver { index }),
            FaultEvent::DropMsg { index } => Some(Action::Drop { index }),
            FaultEvent::DupMsg { index } => Some(Action::Dup { index }),
            FaultEvent::FireTimer { site, tag } => Some(Action::Fire { site, tag }),
            FaultEvent::Fail { site, .. } => Some(Action::Fail { site }),
            FaultEvent::Recover { site } => Some(Action::Recover { site }),
            FaultEvent::Isolate { site } => Some(Action::Isolate { site }),
            FaultEvent::Heal { site } => Some(Action::Heal { site }),
            FaultEvent::EvictReplies { site } => Some(Action::Evict { site }),
            FaultEvent::KillRestart { site } => Some(Action::CrashRestart { site }),
            // Cluster-granularity events have no model-level meaning.
            FaultEvent::Write { .. }
            | FaultEvent::Read { .. }
            | FaultEvent::ReplaceDisk { .. }
            | FaultEvent::RestoreSite { .. }
            | FaultEvent::LossBurst { .. }
            | FaultEvent::LossEnd
            | FaultEvent::FlushParity => None,
        }
    }
}

impl FaultDriver for ModelDriver {
    fn apply(&mut self, event: &FaultEvent) -> Result<(), String> {
        let Some(action) = self.action_of(event) else {
            return Ok(());
        };
        // A minimization candidate may address a shifted or vanished
        // envelope; skipping keeps the run well-defined (see module docs).
        if !self.model.enabled_actions().contains(&action) {
            return Ok(());
        }
        self.model.apply(action);
        match self.model.violation() {
            Some(v) => Err(v.to_string()),
            None => Ok(()),
        }
    }

    fn verify(&mut self) -> Result<bool, String> {
        match self.model.violation() {
            Some(v) => Err(v.to_string()),
            // Structural checks run inside every apply and the full sweep
            // runs at each quiescent state, so a clean model is a real
            // verdict, not a skip.
            None => Ok(true),
        }
    }

    fn quiesce(&mut self) -> Result<(), String> {
        // Deterministic schedule: always deliver the lowest-indexed
        // deliverable envelope. Bounded to rule out a livelock in the
        // model itself.
        for _ in 0..100_000 {
            if let Some(v) = self.model.violation() {
                return Err(v.to_string());
            }
            match self.model.first_deliverable() {
                Some(i) => self.model.apply(Action::Deliver { index: i }),
                None => return Ok(()),
            }
        }
        Err("model did not quiesce within 100000 deliveries".to_string())
    }

    fn obs_snapshot(&mut self) -> Option<ObsSnapshot> {
        self.model.obs_snapshot()
    }
}
