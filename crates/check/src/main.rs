//! The `radd-check` binary: exhaust every standard world and report.
//!
//! Exit status is non-zero if any world fails to reach a visited-set
//! fixpoint within its depth bound or — worse — finds an invariant
//! violation, in which case the minimized counterexample is printed.
//!
//! With the `mutations` feature, `radd-check --mutants` instead arms each
//! seeded protocol mutant in turn and proves the checker catches it with
//! a minimized counterexample of at most 12 events (exit non-zero if any
//! mutant survives).

use radd_check::driver::ModelDriver;
use radd_check::{configs, explore};
use radd_workload::faults::minimize_failure;
use std::time::Instant;

#[cfg(feature = "mutations")]
fn mutant_hunt() {
    use radd_protocol::mutations::{arm, Mutation};
    let mut failed = false;
    for mutant in [
        Mutation::AbaDoubleApply,
        Mutation::DroppedUidBump,
        Mutation::SpareNoInvalidate,
    ] {
        let cfg = configs::adversarial_world();
        arm(Some(mutant));
        let t0 = Instant::now();
        let report = explore::explore(&cfg);
        match report.violation {
            Some(cx) => {
                let minimized = minimize_failure(|| ModelDriver::new(&cfg.model), &cx.plan);
                arm(None);
                let ok = minimized.events.len() <= 12;
                failed |= !ok;
                println!(
                    "{mutant:?}: caught after {} states in {:.2?}, minimized to {} events{}",
                    report.states,
                    t0.elapsed(),
                    minimized.events.len(),
                    if ok {
                        ""
                    } else {
                        " — OVER THE 12-EVENT BUDGET"
                    },
                );
                for (i, ev) in minimized.events.iter().enumerate() {
                    println!("  {i:>3}. {ev}");
                }
            }
            None => {
                arm(None);
                failed = true;
                println!(
                    "{mutant:?}: SURVIVED {} states ({}) — invariant hole",
                    report.states,
                    if report.complete {
                        "fixpoint"
                    } else {
                        "depth bound"
                    },
                );
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}

fn main() {
    if std::env::args().any(|a| a == "--mutants") {
        #[cfg(feature = "mutations")]
        {
            mutant_hunt();
            return;
        }
        #[cfg(not(feature = "mutations"))]
        {
            eprintln!("--mutants requires building with --features mutations");
            std::process::exit(2);
        }
    }
    let mut failed = false;
    for (name, cfg) in configs::all() {
        let t0 = Instant::now();
        let report = explore(&cfg);
        let dt = t0.elapsed();
        match &report.violation {
            None => {
                println!(
                    "{name}: {} states, {} transitions, depth {} — {} in {:.2?}",
                    report.states,
                    report.transitions,
                    report.depth,
                    if report.complete {
                        "exhausted (fixpoint)"
                    } else {
                        "DEPTH BOUND HIT"
                    },
                    dt,
                );
                if !report.complete {
                    failed = true;
                }
            }
            Some(cx) => {
                failed = true;
                println!(
                    "{name}: VIOLATION after {} states in {:.2?}: {}",
                    report.states, dt, cx.error
                );
                let minimized = minimize_failure(|| ModelDriver::new(&cfg.model), &cx.plan);
                println!(
                    "minimized counterexample ({} events):",
                    minimized.events.len()
                );
                for (i, ev) in minimized.events.iter().enumerate() {
                    println!("  {i:>3}. {ev}");
                }
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
