//! Bounded exhaustive exploration of a [`Model`]'s state graph.
//!
//! Depth-first search over every enabled [`Action`], with three
//! state-space weapons:
//!
//! * **Canonical-state pruning.** Each state is reduced to a 128-bit
//!   canonical digest ([`Model::canon_hash`]): tags and UIDs are renamed
//!   in first-seen order, so states reachable by different schedules but
//!   isomorphic up to generator history collide and are explored once.
//!   The visited map stores the *remaining depth* a state was expanded
//!   with, so a shallower revisit (more depth left) re-expands.
//! * **Sleep sets.** After exploring sibling action `a`, every branch
//!   explored later inherits `a` in its sleep set for as long as the next
//!   chosen action commutes with it — the classic DPOR-style pruning of
//!   redundant orderings of independent deliveries. Independence here is
//!   deliberately conservative: only two deliveries to *different sites*
//!   commute (each touches only its destination machine, its own timers,
//!   and appends to distinct FIFO pairs).
//! * **Iterative deepening.** The bound doubles from a small start up to
//!   `max_depth`; an iteration that finishes without ever hitting the
//!   bound has explored the *entire* reachable space — a fixpoint — and
//!   the run reports `complete`.
//!
//! A violation surfaces as a [`Counterexample`]: the action path replayed
//! as a [`FaultPlan`] of checker-granularity events, ready for
//! `minimize_failure` and the [`ModelDriver`](crate::driver::ModelDriver).

use crate::model::{Action, ActionKey, Model, ModelConfig};
use radd_protocol::FailureKind;
use radd_workload::faults::{FaultEvent, FaultPlan};
use std::collections::HashMap;

/// What to explore and how hard.
#[derive(Debug, Clone)]
pub struct CheckConfig {
    /// The cluster shape, scripts and budgets.
    pub model: ModelConfig,
    /// Hard depth bound (actions per interleaving).
    pub max_depth: usize,
    /// Enable the sleep-set reduction (on for real runs; the equivalence
    /// test turns it off to cross-check).
    pub sleep_sets: bool,
}

/// A violating schedule, as a replayable plan.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The invariant that broke.
    pub error: String,
    /// The actions from the initial state to the violation, one
    /// [`FaultEvent`] per [`Action`].
    pub plan: FaultPlan,
}

/// Outcome of one [`explore`] run.
#[derive(Debug, Clone)]
pub struct Report {
    /// Distinct canonical states visited in the final iteration.
    pub states: u64,
    /// Transitions applied across all iterations.
    pub transitions: u64,
    /// Depth bound of the final iteration.
    pub depth: usize,
    /// True when the final iteration finished without hitting the bound:
    /// the reachable state space was exhausted (visited-set fixpoint).
    pub complete: bool,
    /// The first violation found, if any (minimal-iteration schedule).
    pub violation: Option<Counterexample>,
}

/// The checker event corresponding to one model action.
pub fn event_of(action: Action) -> FaultEvent {
    match action {
        Action::Step { client } => FaultEvent::StepClient { client },
        Action::Deliver { index } => FaultEvent::Deliver { index },
        Action::Drop { index } => FaultEvent::DropMsg { index },
        Action::Dup { index } => FaultEvent::DupMsg { index },
        Action::Fire { site, tag } => FaultEvent::FireTimer { site, tag },
        Action::Fail { site } => FaultEvent::Fail {
            site,
            kind: FailureKind::SiteFailure,
        },
        Action::Recover { site } => FaultEvent::Recover { site },
        Action::Isolate { site } => FaultEvent::Isolate { site },
        Action::Heal { site } => FaultEvent::Heal { site },
        Action::Evict { site } => FaultEvent::EvictReplies { site },
        Action::CrashRestart { site } => FaultEvent::KillRestart { site },
    }
}

struct Ctx<'a> {
    cfg: &'a CheckConfig,
    visited: HashMap<u128, usize>,
    transitions: u64,
    cutoff: bool,
    path: Vec<FaultEvent>,
    violation: Option<String>,
}

fn dfs(ctx: &mut Ctx<'_>, mut model: Model, remaining: usize, sleep: &[ActionKey]) -> bool {
    let h = model.canon_hash();
    match ctx.visited.get(&h) {
        Some(&seen) if seen >= remaining => return false,
        _ => {}
    }
    ctx.visited.insert(h, remaining);
    let actions = model.enabled_actions();
    if actions.is_empty() {
        return false;
    }
    if remaining == 0 {
        ctx.cutoff = true;
        return false;
    }
    let mut explored: Vec<ActionKey> = Vec::new();
    for a in actions {
        let key = model.action_key(a);
        if ctx.cfg.sleep_sets && sleep.contains(&key) {
            continue;
        }
        let mut child = model.clone();
        child.apply(a);
        ctx.transitions += 1;
        ctx.path.push(event_of(a));
        if let Some(v) = child.violation() {
            ctx.violation = Some(v.to_string());
            return true;
        }
        let child_sleep: Vec<ActionKey> = sleep
            .iter()
            .chain(explored.iter())
            .filter(|t| t.independent(key))
            .copied()
            .collect();
        if dfs(ctx, child, remaining - 1, &child_sleep) {
            return true;
        }
        ctx.path.pop();
        explored.push(key);
    }
    false
}

/// Explore `cfg` to a visited-set fixpoint (or the depth bound), reporting
/// the first invariant violation as a replayable counterexample.
pub fn explore(cfg: &CheckConfig) -> Report {
    let mut transitions = 0u64;
    let mut depth = 8.min(cfg.max_depth.max(1));
    loop {
        let mut ctx = Ctx {
            cfg,
            visited: HashMap::new(),
            transitions: 0,
            cutoff: false,
            path: Vec::new(),
            violation: None,
        };
        let found = dfs(&mut ctx, Model::new(&cfg.model), depth, &[]);
        transitions += ctx.transitions;
        if found {
            return Report {
                states: ctx.visited.len() as u64,
                transitions,
                depth,
                complete: false,
                violation: Some(Counterexample {
                    error: ctx.violation.unwrap_or_default(),
                    plan: FaultPlan {
                        seed: 0,
                        events: ctx.path,
                    },
                }),
            };
        }
        if !ctx.cutoff || depth >= cfg.max_depth {
            return Report {
                states: ctx.visited.len() as u64,
                transitions,
                depth,
                complete: !ctx.cutoff,
                violation: None,
            };
        }
        depth = (depth * 2).min(cfg.max_depth);
    }
}
