//! The checker's explicit-state model of a RADD cluster.
//!
//! One [`Model`] value is one global state: the real sans-IO
//! [`SiteMachine`]s and [`ClientMachine`]s (no re-implementation of the
//! protocol), an explicit in-flight message vector, retransmit timers, a
//! failure/partition overlay, and a linearizability oracle. The explorer
//! clones the model, applies one [`Action`], and asks for the canonical
//! hash — everything protocol-visible lives here.
//!
//! # Network semantics
//!
//! The message fabric is **FIFO per directed (sender, receiver) pair and
//! arbitrarily interleaved across pairs** — exactly the guarantee both real
//! runtimes provide (the DES delivers synchronously; the threaded runtime
//! uses one ordered channel per endpoint pair). This matters for
//! soundness: the §3.2 idempotence guard is only required to survive
//! duplicates that arrive *in order* (a retransmission whose ack was
//! lost); a fabric that reordered within a pair would "find" parity
//! corruption no deployment can exhibit.
//!
//! Loss ([`Action::Drop`]) is restricted to site→site traffic, the only
//! leg protected by stop-and-wait retransmission; duplication
//! ([`Action::Dup`]) to site-destined traffic, the legs guarded by the
//! replay cache and the §3.2 idempotence check. A duplicate slots in
//! *directly behind its original* — the FIFO contract means a channel
//! can deliver a message twice but cannot delay the copy past later
//! traffic of the same pair (that would be reordering in disguise).
//!
//! # Failure semantics
//!
//! [`Action::Fail`] is pause-crash with stable protocol state: the site
//! stops receiving (deliveries to it stay queued) and every client's
//! failure detector flips atomically — the perfect-detector idealisation
//! the paper assumes in §3.2. The reply cache and parity bookkeeping
//! survive, standing in for the stable storage a real site would recover
//! them from. A site may only fail while it has no unacknowledged parity
//! traffic of its own (`all_acked`), the paper's §6 caveat: a site dying
//! mid-update is the in-doubt case RADD explicitly does not solve. For
//! the same reason, failure also waits until the site's *outbound*
//! in-flight messages have drained: a crash severs connections, so a
//! message from the dead site lingering in the fabric would correspond
//! to no real schedule (the lossy version of that schedule is `Drop`
//! followed by `Fail`, which the checker explores separately).
//!
//! # Healthy writes are wire-level
//!
//! A healthy write is where every interesting race lives (W1 vs W3 vs the
//! client ack), so the model puts the `Write` request on the fabric itself
//! (tag minted by the real client machine) and commits the oracle only
//! when the `WriteOk` is delivered. Every other operation — reads,
//! degraded reads/writes, the recovery drain — runs atomically through
//! `SyncIo`, which routes each exchange straight into the target
//! machine; that is one of the schedules the real cluster can produce
//! (request and reply delivered promptly), so exploring only it never
//! fabricates a race.

use bytes::Bytes;
use radd_layout::Geometry;
use radd_obs::MachineObs;
use radd_parity::Uid;
use radd_protocol::check::{
    check_spare_freshness, check_spare_structure, check_stripe_parity, check_uid_agreement,
    Canonicalizer, Checkable,
};
use radd_protocol::{
    classify, gate, Blocks, ClientErr, ClientIo, ClientMachine, Dest, Effect, Gate, MemBlocks, Msg,
    PartitionVerdict, SiteMachine, SparePolicy,
};
use radd_workload::faults::payload;
use std::collections::{BTreeMap, BTreeSet};

/// One scripted client operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientOp {
    /// Write `payload(fill)` to data block `index` of `site`.
    Write {
        /// Target site.
        site: usize,
        /// Data block index at that site.
        index: u64,
        /// Seed of the deterministic payload.
        fill: u64,
    },
    /// Read data block `index` of `site` and check it linearizes.
    Read {
        /// Target site.
        site: usize,
        /// Data block index at that site.
        index: u64,
    },
    /// Bulk-rebuild every data block of a believed-down `site` into the
    /// row spares (the parallel rebuild engine's per-group pass). Refused
    /// when the schedule has not failed the site (nothing to rebuild).
    Rebuild {
        /// The failed site whose blocks are reconstructed.
        site: usize,
    },
}

/// Fault budgets: how many of each optional event one interleaving may
/// contain. Small budgets keep the bounded exploration exhaustive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Budgets {
    /// Message duplications ([`Action::Dup`]).
    pub dup: u8,
    /// Message losses ([`Action::Drop`]).
    pub drop: u8,
    /// Retransmit-timer firings ([`Action::Fire`]).
    pub timer: u8,
    /// Site-failure episodes ([`Action::Fail`]).
    pub fail: u8,
    /// §5 partition episodes ([`Action::Isolate`]).
    pub partition: u8,
    /// Reply-cache evictions ([`Action::Evict`]) — cache-pressure stand-in
    /// that exposes the §3.2 idempotence guard beneath the at-most-once
    /// cache.
    pub evict: u8,
    /// Crash/restart episodes ([`Action::CrashRestart`]): the site comes
    /// straight back from its durable snapshot, volatile state gone.
    pub crash: u8,
}

/// Shape and workload of the cluster under check.
#[derive(Debug, Clone)]
pub struct ModelConfig {
    /// Parity group size `G` (cluster has `G + 2` sites).
    pub group_size: usize,
    /// Physical rows.
    pub rows: u64,
    /// Block size in bytes (small: contents only feed XOR identities).
    pub block_size: usize,
    /// One operation script per client, run in program order.
    pub scripts: Vec<Vec<ClientOp>>,
    /// Which site each client is attached to for §5 partition purposes
    /// (`None` = external, rides the majority).
    pub attachment: Vec<Option<usize>>,
    /// Fault budgets per interleaving.
    pub budgets: Budgets,
}

impl ModelConfig {
    fn num_clients(&self) -> usize {
        self.scripts.len()
    }
}

/// One transition of the global state. `Copy` so the explorer's DFS stack
/// stays cheap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Run client `client`'s next scripted operation.
    Step {
        /// Client index.
        client: usize,
    },
    /// Deliver the in-flight message at `index` to its destination.
    Deliver {
        /// Index into the fabric's message vector.
        index: usize,
    },
    /// Lose the in-flight message at `index`.
    Drop {
        /// Index into the fabric's message vector.
        index: usize,
    },
    /// Duplicate the in-flight message at `index` (copy queues behind).
    Dup {
        /// Index into the fabric's message vector.
        index: usize,
    },
    /// Fire the stop-and-wait retransmit timer for `tag` at `site`.
    Fire {
        /// Site whose timer fires.
        site: usize,
        /// Outstanding request tag.
        tag: u64,
    },
    /// Pause-crash `site` (perfect failure detector: every client flips).
    Fail {
        /// Failing site.
        site: usize,
    },
    /// Revive `site` and run the §3.2 recovery drain to completion.
    Recover {
        /// Recovering site.
        site: usize,
    },
    /// Partition `site` away from everyone else (§5 single-failure-like).
    Isolate {
        /// Isolated site.
        site: usize,
    },
    /// Reconnect the isolated `site` and drain what it missed.
    Heal {
        /// Previously isolated site.
        site: usize,
    },
    /// Age `site`'s entire at-most-once reply cache out (cache pressure).
    Evict {
        /// Site whose reply cache is evicted.
        site: usize,
    },
    /// Crash `site` and restart it immediately from durable storage: the
    /// machine is rebuilt from its own [`DurableSiteState`] round-trip
    /// (exactly what `DiskBlocks` recovery does), so everything volatile —
    /// reply cache, retransmit timers, in-progress bookkeeping — is lost
    /// while the WAL-covered state survives.
    ///
    /// [`DurableSiteState`]: radd_protocol::DurableSiteState
    CrashRestart {
        /// Site that crashes and recovers from disk.
        site: usize,
    },
}

/// Where an in-flight message is headed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EndpointId {
    /// Protocol site `s`.
    Site(usize),
    /// Scripted client `c`.
    Client(usize),
}

/// One in-flight message. `seq` is a monotone enqueue counter: it orders
/// the per-pair FIFO and names the envelope for sleep-set identity; it is
/// *excluded* from the canonical hash.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Enqueue order (monotone, never reused).
    pub seq: u64,
    /// Sender peer id.
    pub src: usize,
    /// Destination endpoint.
    pub dst: EndpointId,
    /// The message.
    pub msg: Msg,
    /// Created by [`Action::Dup`]: a network-duplicated packet, whose
    /// lifetime is bounded (it cannot outlive a reply-cache window — see
    /// the eviction rules in [`Model::enabled_actions`]).
    pub dup: bool,
}

/// The site-side half of the state: machines, disks, fabric, timers and
/// the failure overlay. Split out of [`Model`] so a client machine can be
/// borrowed mutably while a [`SyncIo`] borrows the fabric.
#[derive(Debug, Clone)]
struct Fabric {
    num_sites: usize,
    num_clients: usize,
    sites: Vec<SiteMachine>,
    disks: Vec<MemBlocks>,
    net: Vec<Envelope>,
    /// Armed retransmit timers per site: tag → retransmission step.
    timers: Vec<BTreeMap<u64, u32>>,
    up: Vec<bool>,
    isolated: Option<usize>,
    next_seq: u64,
    violation: Option<String>,
    /// §3.2 at-most-once ledger: every `(parity_site, row, from_site, uid)`
    /// whose mask actually hit the parity block. A repeat is the ABA
    /// double-apply the idempotence guard exists to prevent.
    applied: BTreeSet<(usize, u64, usize, Uid)>,
    /// Per-site observability taps, enabled only for replay (cloning them
    /// per explored state would dominate the checker's cost).
    obs: Option<Vec<MachineObs>>,
}

impl Fabric {
    /// Peer id of site `s` (DES convention: peer 0 is the legacy client).
    fn site_peer(s: usize) -> usize {
        1 + s
    }

    fn client_peer(&self, c: usize) -> usize {
        1 + self.num_sites + c
    }

    fn daemon_peer(&self) -> usize {
        1 + self.num_sites + self.num_clients
    }

    fn flag(&mut self, what: impl Into<String>) {
        if self.violation.is_none() {
            self.violation = Some(what.into());
        }
    }

    fn enqueue(&mut self, src: usize, dst: EndpointId, msg: Msg) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.net.push(Envelope {
            seq,
            src,
            dst,
            msg,
            dup: false,
        });
    }

    /// Process a machine's output effects. `reply_to = Some(peer)` captures
    /// the first reply addressed to `peer` (a synchronous exchange) instead
    /// of enqueuing it.
    fn process_effects(
        &mut self,
        site: usize,
        out: Vec<Effect>,
        reply_to: Option<usize>,
    ) -> Option<Msg> {
        let mut reply = None;
        for e in out {
            if let Some(obs) = &mut self.obs {
                obs[site].effect(&e);
            }
            match e {
                Effect::Send { to, msg, .. } => {
                    let dst = match to {
                        Dest::Site(s) => EndpointId::Site(s),
                        Dest::Peer(p) => {
                            if reply_to == Some(p) && reply.is_none() {
                                reply = Some(msg);
                                continue;
                            }
                            match self.endpoint_of_peer(p) {
                                Some(dst) => dst,
                                None => {
                                    self.flag(format!("site {site} sent to unroutable peer {p}"));
                                    continue;
                                }
                            }
                        }
                    };
                    self.enqueue(Self::site_peer(site), dst, msg);
                }
                Effect::SetTimer { tag, step } => {
                    self.timers[site].insert(tag, step);
                }
                Effect::ClearTimer { tag } => {
                    self.timers[site].remove(&tag);
                }
                Effect::NeedParityRebuild { row } => {
                    self.flag(format!(
                        "site {site} needs a parity rebuild of row {row} in a model \
                         with no disk faults"
                    ));
                }
                Effect::ParityUnservable { row } => {
                    self.flag(format!(
                        "site {site} cannot serve parity row {row} in a model with \
                         no disk faults"
                    ));
                }
                // Local I/O receipts and deferred-ack notices carry no
                // routing; the obs tap above already recorded them.
                Effect::Read { .. } | Effect::Write { .. } | Effect::DeferAck { .. } => {}
            }
        }
        reply
    }

    fn endpoint_of_peer(&self, p: usize) -> Option<EndpointId> {
        if (1..=self.num_sites).contains(&p) {
            Some(EndpointId::Site(p - 1))
        } else if p > self.num_sites && p <= self.num_sites + self.num_clients {
            Some(EndpointId::Client(p - 1 - self.num_sites))
        } else {
            None
        }
    }

    /// Run `msg` through `site` and record the §3.2 at-most-once ledger.
    fn run_site(
        &mut self,
        site: usize,
        src: usize,
        msg: Msg,
        reply_to: Option<usize>,
    ) -> Option<Msg> {
        let update = match &msg {
            Msg::ParityUpdate {
                row,
                uid,
                from_site,
                ..
            } => Some((*row, *uid, *from_site)),
            _ => None,
        };
        let mut out = Vec::new();
        self.sites[site].handle(&mut self.disks[site], src, msg, &mut out);
        if let Some((row, uid, from)) = update {
            let applied_now = out.iter().any(|e| {
                matches!(
                    e,
                    Effect::Write {
                        purpose: radd_protocol::IoPurpose::ParityApply,
                        ..
                    }
                )
            });
            if applied_now && !self.applied.insert((site, row, from, uid)) {
                self.flag(format!(
                    "§3.2 at-most-once violated: parity mask (row {row}, from site \
                     {from}, uid {uid:?}) applied twice at site {site}"
                ));
            }
        }
        self.process_effects(site, out, reply_to)
    }

    /// Is `peer` on the minority side of the current partition?
    fn peer_minority(&self, peer: usize, attachment: &[Option<usize>]) -> bool {
        let Some(iso) = self.isolated else {
            return false;
        };
        match self.endpoint_of_peer(peer) {
            Some(EndpointId::Site(s)) => s == iso,
            Some(EndpointId::Client(c)) => attachment[c] == Some(iso),
            None => false, // daemon and legacy peers ride the majority
        }
    }

    fn endpoint_minority(&self, e: EndpointId, attachment: &[Option<usize>]) -> bool {
        let Some(iso) = self.isolated else {
            return false;
        };
        match e {
            EndpointId::Site(s) => s == iso,
            EndpointId::Client(c) => attachment[c] == Some(iso),
        }
    }
}

/// Synchronous [`ClientIo`]: each exchange is delivered and answered
/// immediately, with any *other* effects (site-to-site sends, timers)
/// feeding the shared fabric.
struct SyncIo<'a> {
    fabric: &'a mut Fabric,
    src_peer: usize,
    attachment: Option<usize>,
}

impl ClientIo for SyncIo<'_> {
    fn exchange(&mut self, site: usize, msg: Msg, _background: bool) -> Result<Msg, ClientErr> {
        let cut = match self.fabric.isolated {
            None => false,
            Some(iso) => (self.attachment == Some(iso)) != (site == iso),
        };
        if !self.fabric.up[site] || cut {
            return Err(ClientErr::Timeout { site });
        }
        match self
            .fabric
            .run_site(site, self.src_peer, msg, Some(self.src_peer))
        {
            Some(reply) => Ok(reply),
            None => {
                self.fabric.flag(format!(
                    "atomic exchange with site {site} got no synchronous reply"
                ));
                Err(ClientErr::Timeout { site })
            }
        }
    }
}

/// A scripted client: the real machine, its program counter, and (for a
/// wire-level healthy write) the request it is waiting on.
#[derive(Debug, Clone)]
struct ClientSlot {
    machine: ClientMachine,
    pos: usize,
    wait: Option<WireWait>,
}

#[derive(Debug, Clone)]
struct WireWait {
    tag: u64,
    site: usize,
    index: u64,
    fill: u64,
}

/// UID namespace of the first scripted client (sites use low namespaces).
const CLIENT_UID_NAMESPACE: u16 = 2048;
/// UID namespace of the recovery daemon's client machine.
const DAEMON_UID_NAMESPACE: u16 = 4000;

/// One global state of the modelled cluster.
#[derive(Debug, Clone)]
pub struct Model {
    cfg: ModelConfig,
    geo: Geometry,
    fabric: Fabric,
    clients: Vec<ClientSlot>,
    /// The recovery daemon's client machine (drives §3.2 drains).
    daemon: ClientMachine,
    /// Latest acknowledged fill per `(site, index)`.
    oracle: BTreeMap<(usize, u64), u64>,
    /// Every acknowledged fill per `(site, index)` — the read-check
    /// fallback for blocks with concurrent writers.
    committed: BTreeMap<(usize, u64), BTreeSet<u64>>,
    /// Issued-but-unacknowledged fills: a concurrent read may return any.
    inflight_fills: BTreeMap<(usize, u64), BTreeSet<u64>>,
    /// Blocks targeted by more than one client (latest-wins is ambiguous).
    multi_writer: BTreeSet<(usize, u64)>,
    /// Legal protocol refusals observed (diagnostic; not hashed).
    refusals: u32,
    budgets: Budgets,
}

impl Model {
    /// A fresh cluster in the all-zero, all-up initial state.
    pub fn new(cfg: &ModelConfig) -> Model {
        let geo = Geometry::new(cfg.group_size, cfg.rows).expect("valid model geometry");
        let n = geo.num_sites();
        assert_eq!(
            cfg.attachment.len(),
            cfg.scripts.len(),
            "one attachment per client script"
        );
        let sites = (0..n)
            .map(|s| SiteMachine::new(s, cfg.group_size, cfg.rows, cfg.block_size))
            .collect();
        let disks = (0..n)
            .map(|_| MemBlocks::new(cfg.rows, cfg.block_size))
            .collect();
        let clients = (0..cfg.num_clients())
            .map(|c| ClientSlot {
                machine: ClientMachine::new(
                    cfg.group_size,
                    cfg.rows,
                    cfg.block_size,
                    SparePolicy::OnePerParity,
                    true,
                    CLIENT_UID_NAMESPACE + c as u16,
                ),
                pos: 0,
                wait: None,
            })
            .collect();
        let daemon = ClientMachine::new(
            cfg.group_size,
            cfg.rows,
            cfg.block_size,
            SparePolicy::OnePerParity,
            true,
            DAEMON_UID_NAMESPACE,
        );
        let mut multi_writer = BTreeSet::new();
        let mut writers: BTreeMap<(usize, u64), usize> = BTreeMap::new();
        for (c, script) in cfg.scripts.iter().enumerate() {
            for op in script {
                if let ClientOp::Write { site, index, .. } = *op {
                    match writers.get(&(site, index)) {
                        Some(&owner) if owner != c => {
                            multi_writer.insert((site, index));
                        }
                        _ => {
                            writers.insert((site, index), c);
                        }
                    }
                }
            }
        }
        Model {
            geo,
            fabric: Fabric {
                num_sites: n,
                num_clients: cfg.num_clients(),
                sites,
                disks,
                net: Vec::new(),
                timers: vec![BTreeMap::new(); n],
                up: vec![true; n],
                isolated: None,
                next_seq: 0,
                violation: None,
                applied: BTreeSet::new(),
                obs: None,
            },
            clients,
            daemon,
            oracle: BTreeMap::new(),
            committed: BTreeMap::new(),
            inflight_fills: BTreeMap::new(),
            multi_writer,
            refusals: 0,
            budgets: cfg.budgets,
            cfg: cfg.clone(),
        }
    }

    /// Enable per-site observability taps (replay mode only).
    pub fn enable_obs(&mut self) {
        self.fabric.obs = Some(
            (0..self.fabric.num_sites)
                .map(|_| MachineObs::new())
                .collect(),
        );
    }

    /// Snapshot the per-site observability taps, if enabled.
    pub fn obs_snapshot(&self) -> Option<radd_obs::ObsSnapshot> {
        self.fabric.obs.as_ref().map(|obs| radd_obs::ObsSnapshot {
            machines: obs
                .iter()
                .enumerate()
                .map(|(s, m)| m.snapshot(&format!("site {s}")))
                .collect(),
        })
    }

    /// The first invariant violation observed on this path, if any.
    pub fn violation(&self) -> Option<&str> {
        self.fabric.violation.as_deref()
    }

    /// Legal protocol refusals observed on this path (diagnostic).
    pub fn refusals(&self) -> u32 {
        self.refusals
    }

    /// The in-flight message vector (read-only; the explorer names actions
    /// by envelope).
    pub fn net(&self) -> &[Envelope] {
        &self.fabric.net
    }

    /// Lowest-indexed deliverable envelope, if any (the driver's
    /// deterministic quiesce schedule).
    pub fn first_deliverable(&self) -> Option<usize> {
        (0..self.fabric.net.len()).find(|&i| self.deliverable(i))
    }

    /// Is the model fully settled — nothing in flight, every client idle,
    /// every site acked, no failure or partition in effect?
    pub fn quiesced(&self) -> bool {
        self.fabric.net.is_empty()
            && self.clients.iter().all(|c| c.wait.is_none())
            && self.fabric.sites.iter().all(SiteMachine::all_acked)
            && self.fabric.up.iter().all(|&u| u)
            && self.fabric.isolated.is_none()
    }

    /// Have all scripts run to completion?
    pub fn scripts_done(&self) -> bool {
        self.clients
            .iter()
            .enumerate()
            .all(|(c, slot)| slot.pos >= self.cfg.scripts[c].len())
    }

    // -- action enumeration ----------------------------------------------

    /// Every action enabled in this state, in deterministic order.
    pub fn enabled_actions(&self) -> Vec<Action> {
        let mut acts = Vec::new();
        let net = &self.fabric.net;
        for i in 0..net.len() {
            if self.deliverable(i) {
                acts.push(Action::Deliver { index: i });
            }
        }
        for c in 0..self.clients.len() {
            if self.clients[c].pos < self.cfg.scripts[c].len() && self.clients[c].wait.is_none() {
                acts.push(Action::Step { client: c });
            }
        }
        if self.budgets.timer > 0 {
            for s in 0..self.fabric.num_sites {
                if self.fabric.up[s] {
                    for &tag in self.fabric.timers[s].keys() {
                        acts.push(Action::Fire { site: s, tag });
                    }
                }
            }
        }
        if self.budgets.dup > 0 {
            for (i, env) in net.iter().enumerate() {
                if matches!(env.dst, EndpointId::Site(_)) {
                    acts.push(Action::Dup { index: i });
                }
            }
        }
        if self.budgets.drop > 0 {
            for (i, env) in net.iter().enumerate() {
                let src_is_site = (1..=self.fabric.num_sites).contains(&env.src);
                if src_is_site && matches!(env.dst, EndpointId::Site(_)) {
                    acts.push(Action::Drop { index: i });
                }
            }
        }
        let all_up = self.fabric.up.iter().all(|&u| u);
        if self.budgets.fail > 0 && all_up && self.fabric.isolated.is_none() {
            for s in 0..self.fabric.num_sites {
                // A crash severs the site's connections, so any unacked
                // outbound message it had in flight dies with it — and
                // `all_acked` means it will never be resent. "Crash with k
                // outbound in flight" is therefore the same execution as k
                // `Drop`s followed by `Fail`; requiring a drained outbound
                // queue here loses no generality and keeps the frozen
                // fabric honest (a stale update surviving its sender's
                // crash corresponds to no real schedule).
                let outbound_drained = !self
                    .fabric
                    .net
                    .iter()
                    .any(|e| e.src == Fabric::site_peer(s));
                if self.fabric.sites[s].all_acked() && outbound_drained {
                    acts.push(Action::Fail { site: s });
                }
            }
        }
        for s in 0..self.fabric.num_sites {
            if !self.fabric.up[s] {
                acts.push(Action::Recover { site: s });
            }
        }
        if self.budgets.partition > 0 && all_up && self.fabric.isolated.is_none() {
            for s in 0..self.fabric.num_sites {
                if self.fabric.sites[s].all_acked() {
                    acts.push(Action::Isolate { site: s });
                }
            }
        }
        if let Some(s) = self.fabric.isolated {
            acts.push(Action::Heal { site: s });
        }
        if self.budgets.evict > 0 {
            for s in 0..self.fabric.num_sites {
                // Eviction compresses "enough traffic to age the whole
                // cache out" into one event, i.e. an unbounded stretch of
                // time. A *network-duplicated* packet has bounded lifetime
                // (the standard at-most-once RPC assumption: packet
                // lifetime < cache retention), so a dup bound for this
                // site forbids eviction. Sender *retransmissions* carry no
                // such bound — they persist until acked and must survive
                // eviction via the §3.2 UID guard, which is exactly the
                // property this event exists to probe.
                let no_dup_inbound = !self
                    .fabric
                    .net
                    .iter()
                    .any(|e| e.dup && e.dst == EndpointId::Site(s));
                if self.fabric.up[s] && no_dup_inbound {
                    acts.push(Action::Evict { site: s });
                }
            }
        }
        if self.budgets.crash > 0 && all_up && self.fabric.isolated.is_none() {
            for s in 0..self.fabric.num_sites {
                // Same §6 caveat as `Fail`: a site dying with its own
                // parity traffic unacked (or still in the fabric) is the
                // in-doubt case the paper does not solve, so the crash is
                // only enabled at a locally quiescent site. And like
                // `Evict`, the restart wipes the reply cache, so a
                // bounded-lifetime *duplicated* packet must not still be
                // inbound (sender retransmissions, which survive any
                // outage, are exactly what the §3.2 UID guard must absorb
                // across the restart).
                let outbound_drained = !self
                    .fabric
                    .net
                    .iter()
                    .any(|e| e.src == Fabric::site_peer(s));
                let no_dup_inbound = !self
                    .fabric
                    .net
                    .iter()
                    .any(|e| e.dup && e.dst == EndpointId::Site(s));
                if self.fabric.sites[s].all_acked() && outbound_drained && no_dup_inbound {
                    acts.push(Action::CrashRestart { site: s });
                }
            }
        }
        acts
    }

    /// May the envelope at `index` be delivered now? Destination up, no
    /// partition cut, and it is the oldest in-flight message of its
    /// directed (sender, receiver) pair — the per-pair FIFO.
    fn deliverable(&self, index: usize) -> bool {
        let env = &self.fabric.net[index];
        match env.dst {
            EndpointId::Site(s) if !self.fabric.up[s] => return false,
            _ => {}
        }
        let src_min = self.fabric.peer_minority(env.src, &self.cfg.attachment);
        let dst_min = self.fabric.endpoint_minority(env.dst, &self.cfg.attachment);
        if src_min != dst_min {
            return false;
        }
        // The vector keeps per-pair FIFO order (sends append, a duplicate
        // slots in right behind its original), so "no earlier same-pair
        // envelope" is a prefix scan.
        !self.fabric.net[..index]
            .iter()
            .any(|e| e.src == env.src && e.dst == env.dst)
    }

    // -- transition ------------------------------------------------------

    /// Apply one action. Invariants are checked as part of the transition;
    /// any violation is recorded via [`Model::violation`].
    pub fn apply(&mut self, action: Action) {
        match action {
            Action::Step { client } => self.client_step(client),
            Action::Deliver { index } => {
                let env = self.fabric.net.remove(index);
                match env.dst {
                    EndpointId::Site(s) => {
                        self.fabric.run_site(s, env.src, env.msg, None);
                    }
                    EndpointId::Client(c) => self.deliver_to_client(c, &env.msg),
                }
            }
            Action::Drop { index } => {
                self.budgets.drop = self.budgets.drop.saturating_sub(1);
                self.fabric.net.remove(index);
            }
            Action::Dup { index } => {
                self.budgets.dup = self.budgets.dup.saturating_sub(1);
                // The copy slots in directly behind the original: a FIFO
                // channel delivers a duplicate in sequence, it cannot warp
                // the copy behind *later* messages of the same pair (that
                // would be reordering, which the transport contract — and
                // the §3.2 idempotence guard — exclude).
                let mut env = self.fabric.net[index].clone();
                env.seq = self.fabric.next_seq;
                env.dup = true;
                self.fabric.next_seq += 1;
                self.fabric.net.insert(index + 1, env);
            }
            Action::Fire { site, tag } => {
                self.budgets.timer = self.budgets.timer.saturating_sub(1);
                let mut out = Vec::new();
                self.fabric.sites[site].on_timer(tag, &mut out);
                self.fabric.process_effects(site, out, None);
            }
            Action::Fail { site } => {
                self.budgets.fail = self.budgets.fail.saturating_sub(1);
                self.fabric.up[site] = false;
                for slot in &mut self.clients {
                    slot.machine.set_down(site, true);
                }
                self.daemon.set_down(site, true);
            }
            Action::Recover { site } => {
                self.fabric.up[site] = true;
                self.drain(site);
            }
            Action::Isolate { site } => {
                self.budgets.partition = self.budgets.partition.saturating_sub(1);
                self.fabric.isolated = Some(site);
                for slot in &mut self.clients {
                    slot.machine.set_down(site, true);
                }
                self.daemon.set_down(site, true);
            }
            Action::Heal { site } => {
                debug_assert_eq!(self.fabric.isolated, Some(site));
                self.fabric.isolated = None;
                self.drain(site);
            }
            Action::Evict { site } => {
                self.budgets.evict = self.budgets.evict.saturating_sub(1);
                self.fabric.sites[site].evict_replies();
            }
            Action::CrashRestart { site } => {
                self.budgets.crash = self.budgets.crash.saturating_sub(1);
                // The disk (MemBlocks) stands in for the durable block
                // file; the machine is rebuilt through the real snapshot
                // codec so the model checks the same bytes `DiskBlocks`
                // replays on a real restart.
                let bytes = self.fabric.sites[site].durable_snapshot().encode();
                match radd_protocol::DurableSiteState::decode(&bytes) {
                    Ok(d) => {
                        self.fabric.sites[site] = SiteMachine::restore_durable(&d);
                        self.fabric.timers[site].clear();
                    }
                    Err(e) => self.fabric.flag(format!(
                        "durable snapshot of site {site} failed to round-trip: {e}"
                    )),
                }
            }
        }
        self.check_step();
        if self.fabric.violation.is_none() && self.quiesced() {
            if let Err(e) = self.check_quiesce() {
                self.fabric.flag(e);
            }
        }
    }

    /// §3.2 recovery drain after a revival or heal: the daemon's real
    /// client machine copies absorbed spares back and releases them, then
    /// every failure detector clears.
    fn drain(&mut self, site: usize) {
        let peer = self.fabric.daemon_peer();
        let mut io = SyncIo {
            fabric: &mut self.fabric,
            src_peer: peer,
            attachment: None,
        };
        match self.daemon.recover(&mut io, site) {
            Ok(_) => {
                for slot in &mut self.clients {
                    slot.machine.set_down(site, false);
                }
                self.daemon.set_down(site, false);
            }
            Err(e) => self
                .fabric
                .flag(format!("recovery drain of site {site} failed: {e:?}")),
        }
    }

    fn client_step(&mut self, c: usize) {
        // §5: while a partition is in effect, classify it and gate the
        // operation — and cross-check that `classify` calls our
        // single-isolated-site overlay exactly SingleFailureLike.
        if let Some(iso) = self.fabric.isolated {
            let mut group_of = vec![0u32; self.geo.num_sites()];
            group_of[iso] = 1;
            let verdict = classify(&group_of, self.cfg.group_size);
            match &verdict {
                PartitionVerdict::SingleFailureLike { isolated, .. } if *isolated == iso => {}
                other => {
                    self.fabric.flag(format!(
                        "§5 classify mismatch: isolating site {iso} yielded {other:?}"
                    ));
                    return;
                }
            }
            match gate(&verdict, self.cfg.attachment[c]) {
                Gate::Proceed => {}
                Gate::ActorIsolated { .. } | Gate::Blocked => {
                    // The op is consumed, refused: the §5 rule says this
                    // actor must cease processing until reconnection.
                    self.refusals += 1;
                    self.clients[c].pos += 1;
                    return;
                }
            }
        }
        let op = self.cfg.scripts[c][self.clients[c].pos];
        self.clients[c].pos += 1;
        let peer = self.fabric.client_peer(c);
        match op {
            ClientOp::Write { site, index, fill } => {
                if self.clients[c].machine.is_down(site) {
                    // Degraded write: W1'/W3' run as atomic exchanges.
                    let data = payload(fill, self.cfg.block_size);
                    let mut io = SyncIo {
                        fabric: &mut self.fabric,
                        src_peer: peer,
                        attachment: self.cfg.attachment[c],
                    };
                    match self.clients[c].machine.write(&mut io, site, index, &data) {
                        Ok(()) => self.commit(site, index, fill),
                        Err(ClientErr::Inconsistent { .. }) => self.refusals += 1,
                        Err(e) => self.fabric.flag(format!(
                            "degraded write(site {site}, index {index}) by client {c} \
                             failed under a single failure: {e:?}"
                        )),
                    }
                } else {
                    // Healthy write: wire-level, so W1/W3/ack interleave
                    // with everything else.
                    let tag = self.clients[c].machine.mint_tag();
                    let data = Bytes::from(payload(fill, self.cfg.block_size));
                    self.fabric.enqueue(
                        peer,
                        EndpointId::Site(site),
                        Msg::Write { index, data, tag },
                    );
                    self.clients[c].wait = Some(WireWait {
                        tag,
                        site,
                        index,
                        fill,
                    });
                    self.inflight_fills
                        .entry((site, index))
                        .or_default()
                        .insert(fill);
                }
            }
            ClientOp::Read { site, index } => {
                let mut io = SyncIo {
                    fabric: &mut self.fabric,
                    src_peer: peer,
                    attachment: self.cfg.attachment[c],
                };
                match self.clients[c].machine.read(&mut io, site, index) {
                    Ok(got) => self.check_read(c, site, index, &got),
                    // §3.3: a reconstruction raced a parity update still in
                    // flight — refusing is the correct behaviour.
                    Err(ClientErr::Inconsistent { .. }) => self.refusals += 1,
                    Err(e) => self.fabric.flag(format!(
                        "read(site {site}, index {index}) by client {c} failed under \
                         a single failure: {e:?}"
                    )),
                }
            }
            ClientOp::Rebuild { site } => {
                let mut io = SyncIo {
                    fabric: &mut self.fabric,
                    src_peer: peer,
                    attachment: self.cfg.attachment[c],
                };
                match self.clients[c].machine.rebuild_member(&mut io, site, 1) {
                    Ok(_) => {}
                    // Unavailable: this schedule never failed the site, so
                    // there is nothing to rebuild. Inconsistent: a parity
                    // update is in flight — the engine's full-pass retry is
                    // modelled as a refusal here.
                    Err(ClientErr::Unavailable { .. } | ClientErr::Inconsistent { .. }) => {
                        self.refusals += 1;
                    }
                    Err(e) => self.fabric.flag(format!(
                        "rebuild of site {site} by client {c} failed under a \
                         single failure: {e:?}"
                    )),
                }
            }
        }
    }

    fn commit(&mut self, site: usize, index: u64, fill: u64) {
        self.oracle.insert((site, index), fill);
        self.committed
            .entry((site, index))
            .or_default()
            .insert(fill);
        if let Some(set) = self.inflight_fills.get_mut(&(site, index)) {
            set.remove(&fill);
            if set.is_empty() {
                self.inflight_fills.remove(&(site, index));
            }
        }
    }

    fn deliver_to_client(&mut self, c: usize, msg: &Msg) {
        let matches_wait = self.clients[c]
            .wait
            .as_ref()
            .is_some_and(|w| w.tag == msg.tag());
        if !matches_wait {
            // A replayed reply to a retransmitted/duplicated request whose
            // original already resolved: at-most-once makes this stale
            // copy harmless.
            return;
        }
        match msg {
            Msg::WriteOk { .. } => {
                let w = self.clients[c].wait.take().expect("matched above");
                self.commit(w.site, w.index, w.fill);
            }
            other => {
                let w = self.clients[c].wait.take().expect("matched above");
                self.fabric.flag(format!(
                    "healthy write(site {}, index {}) by client {c} answered with \
                     {:?} instead of WriteOk",
                    w.site,
                    w.index,
                    other.kind()
                ));
            }
        }
    }

    /// Does a completed read linearize against the oracle?
    fn check_read(&mut self, c: usize, site: usize, index: u64, got: &[u8]) {
        let key = (site, index);
        let bs = self.cfg.block_size;
        let matches_fill = |fill: u64| payload(fill, bs).as_slice() == got;
        if let Some(fills) = self.inflight_fills.get(&key) {
            if fills.iter().copied().any(matches_fill) {
                return; // concurrent with an unacked write: either value linearizes
            }
        }
        let ok = if self.multi_writer.contains(&key) {
            // Concurrent writers: latest-wins is schedule-dependent, so any
            // acknowledged value is accepted.
            self.committed.get(&key).map_or_else(
                || got.iter().all(|&b| b == 0),
                |set| set.iter().copied().any(matches_fill),
            )
        } else {
            match self.oracle.get(&key) {
                Some(&fill) => matches_fill(fill),
                None => got.iter().all(|&b| b == 0),
            }
        };
        if !ok {
            self.fabric.flag(format!(
                "read(site {site}, index {index}) by client {c} returned a value \
                 that is neither the committed value nor any in-flight write"
            ));
        }
    }

    // -- invariants ------------------------------------------------------

    /// Cheap per-transition checks (quiesce-independent structure).
    fn check_step(&mut self) {
        if self.fabric.violation.is_some() {
            return;
        }
        // Stop-and-wait: at most one launched, unacknowledged parity update
        // per (site, row).
        for (s, site) in self.fabric.sites.iter().enumerate() {
            let mut seen_rows = BTreeSet::new();
            for (row, _tag, _uid, _to) in site.inflight_updates() {
                if !seen_rows.insert(row) {
                    self.fabric.flag(format!(
                        "stop-and-wait violated: site {s} has two launched parity \
                         updates for row {row}"
                    ));
                    return;
                }
            }
        }
        if let Err(e) = check_spare_structure(&self.fabric.sites) {
            self.fabric.flag(e);
        }
    }

    /// Full invariant sweep, valid only at quiescence.
    fn check_quiesce(&mut self) -> Result<(), String> {
        let (sites, disks) = (&self.fabric.sites, &mut self.fabric.disks);
        let mut read = |site: usize, row: u64| disks[site].read(row).ok().map(|b| b.to_vec());
        check_stripe_parity(sites, &mut read)?;
        check_uid_agreement(sites)?;
        check_spare_freshness(sites, &mut read)?;
        // Oracle content: every acknowledged write must be on disk.
        for (&(site, index), &fill) in &self.oracle {
            let row = self.geo.data_to_physical(site, index);
            let got = self.fabric.disks[site]
                .read(row)
                .map_err(|_| format!("model disk fault at site {site} row {row}"))?;
            let ok = if self.multi_writer.contains(&(site, index)) {
                let bs = self.cfg.block_size;
                self.committed
                    .get(&(site, index))
                    .is_some_and(|set| set.iter().any(|&f| payload(f, bs).as_slice() == &got[..]))
            } else {
                payload(fill, self.cfg.block_size).as_slice() == &got[..]
            };
            if !ok {
                return Err(format!(
                    "durability violated: site {site} index {index} does not hold \
                     the acknowledged value at quiescence"
                ));
            }
        }
        Ok(())
    }

    // -- canonical hashing -----------------------------------------------

    /// Canonical 128-bit digest of the protocol-visible state. Tags and
    /// UIDs are renamed in first-seen order over a fixed scan, so states
    /// differing only in generator history collide (on purpose); the
    /// in-flight vector is hashed order-insensitively across directed
    /// pairs and order-sensitively within one (matching the delivery
    /// semantics).
    pub fn canon_hash(&mut self) -> u128 {
        let mut c = Canonicalizer::new();
        for s in 0..self.fabric.num_sites {
            self.fabric.sites[s].canon(&mut c);
            // Timer tags are site-minted and monotone, so raw-key order is
            // creation order — stable across isomorphic states.
            c.raw(&self.fabric.timers[s].len());
            for &t in self.fabric.timers[s].keys() {
                c.tag(t);
            }
            c.raw(&self.fabric.up[s]);
            for row in 0..self.geo.rows() {
                match self.fabric.disks[s].read(row) {
                    Ok(b) => c.raw(&b[..]),
                    Err(_) => c.raw(&"fault"),
                }
            }
        }
        c.raw(&self.fabric.isolated);
        for (slot_idx, slot) in self.clients.iter().enumerate() {
            c.raw(&slot_idx);
            slot.machine.canon(&mut c);
            c.raw(&slot.pos);
            match &slot.wait {
                None => c.raw(&0u8),
                Some(w) => {
                    c.raw(&1u8);
                    c.tag(w.tag);
                    c.raw(&(w.site, w.index, w.fill));
                }
            }
        }
        self.daemon.canon(&mut c);
        c.raw(&self.oracle);
        c.raw(&self.committed);
        c.raw(&self.inflight_fills);
        c.raw(&(
            self.budgets.dup,
            self.budgets.drop,
            self.budgets.timer,
            self.budgets.fail,
            self.budgets.partition,
            self.budgets.evict,
        ));
        for (s, row, from, uid) in &self.fabric.applied {
            c.raw(&(*s, *row, *from));
            c.uid(*uid);
        }
        // In-flight messages: a sub-digest per envelope (sharing the
        // renaming tables), combined commutatively across pairs with the
        // within-pair position mixed in.
        let mut pair_pos: BTreeMap<(usize, u8, usize), u64> = BTreeMap::new();
        let mut net_sum = 0u128;
        for env in &self.fabric.net {
            let (dk, di) = match env.dst {
                EndpointId::Site(s) => (0u8, s),
                EndpointId::Client(cl) => (1u8, cl),
            };
            let pos = pair_pos.entry((env.src, dk, di)).or_insert(0);
            c.begin_sub();
            c.raw(&(env.src, dk, di, *pos, env.dup));
            *pos += 1;
            env.msg.canon(&mut c);
            net_sum = net_sum.wrapping_add(c.end_sub());
        }
        c.raw(&net_sum);
        c.finish()
    }

    /// Identity of `action` for sleep-set bookkeeping: stable across the
    /// sibling loop (envelope `seq`, not index).
    pub fn action_key(&self, action: Action) -> ActionKey {
        match action {
            Action::Deliver { index } => {
                let env = &self.fabric.net[index];
                let dst_site = match env.dst {
                    EndpointId::Site(s) => Some(s),
                    EndpointId::Client(_) => None,
                };
                ActionKey::Deliver {
                    seq: env.seq,
                    dst_site,
                }
            }
            other => ActionKey::Other(other),
        }
    }
}

/// Sleep-set identity of an action. Two `Deliver`s to *different sites*
/// commute (each mutates only its destination machine, its own timers, and
/// appends to distinct FIFO pairs); everything else is treated as
/// dependent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActionKey {
    /// Delivery of envelope `seq`, to a site when `dst_site` is set.
    Deliver {
        /// Envelope sequence number (stable while the message is in flight).
        seq: u64,
        /// Destination site, `None` for client-bound deliveries (those
        /// touch the global oracle, so they are conservatively dependent).
        dst_site: Option<usize>,
    },
    /// Any non-delivery action (never treated as independent).
    Other(Action),
}

impl ActionKey {
    /// May `self` and `other` be swapped without changing the outcome?
    pub fn independent(self, other: ActionKey) -> bool {
        match (self, other) {
            (
                ActionKey::Deliver {
                    dst_site: Some(a), ..
                },
                ActionKey::Deliver {
                    dst_site: Some(b), ..
                },
            ) => a != b,
            _ => false,
        }
    }
}
