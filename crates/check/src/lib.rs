//! `radd-check`: a bounded exhaustive model checker for the RADD protocol.
//!
//! The checker drives the *real* sans-IO [`SiteMachine`] and
//! [`ClientMachine`] (no protocol re-implementation) through every
//! interleaving of message delivery, loss, duplication, retransmission,
//! reply-cache eviction, site failure/recovery and §5 partition — up to
//! configurable budgets and depth — and asserts the paper's invariants at
//! every step:
//!
//! * **Stripe parity** (§2): at quiescence, every row's parity block is
//!   the XOR of the row's data blocks.
//! * **UID agreement** (§3.3): each data block's UID matches the parity
//!   site's UID-array slot.
//! * **At-most-once parity application** (§3.2): no `(row, site, UID)`
//!   mask is ever XOR-folded into parity twice (the ABA hazard).
//! * **Stop-and-wait** (§3.2): at most one launched, unacked parity
//!   update per `(site, row)`.
//! * **Spare validity**: a valid spare slot sits at the row's spare site,
//!   stands in for another site, and (at quiescence) matches the owner's
//!   current block and UID.
//! * **Partition gate** (§5): a single-site split classifies
//!   single-failure-like; the isolated actor's operations are refused.
//! * **Linearizability** of client reads against a write oracle, and
//!   durability of every acknowledged write at quiescence.
//!
//! A violation is reported as a minimal-iteration schedule and bridged to
//! the PR-1 [`FaultPlan`] machinery — replayable, greedily minimizable,
//! with the observability snapshot of the failing state attached.
//!
//! [`SiteMachine`]: radd_protocol::SiteMachine
//! [`ClientMachine`]: radd_protocol::ClientMachine
//! [`FaultPlan`]: radd_workload::faults::FaultPlan

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod configs;
pub mod driver;
pub mod explore;
pub mod model;

pub use driver::ModelDriver;
pub use explore::{explore, CheckConfig, Counterexample, Report};
pub use model::{Action, Budgets, ClientOp, Model, ModelConfig};
