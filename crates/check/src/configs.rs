//! The standard checker worlds run by CI and the `radd-check` binary.
//!
//! All use `G = 2` (four sites, the smallest honest RADD cluster) and two
//! rows, so every role — data, parity, spare — is exercised on multiple
//! sites while the reachable state space stays exhaustible in seconds.
//! With `G = 2`, `rows = 2`: row 0 has parity at site 0, spare at site 1,
//! data at sites 2 and 3; row 1 has parity at site 1, spare at site 2,
//! data at sites 3 and 0.

use crate::explore::CheckConfig;
use crate::model::{Budgets, ClientOp, ModelConfig};

/// Two concurrent clients writing and reading different rows, with
/// duplication, loss, retransmission and one site-failure episode.
pub fn small_world() -> CheckConfig {
    CheckConfig {
        model: ModelConfig {
            group_size: 2,
            rows: 2,
            block_size: 4,
            scripts: vec![
                vec![
                    ClientOp::Write {
                        site: 2,
                        index: 0,
                        fill: 0xA1,
                    },
                    ClientOp::Read { site: 2, index: 0 },
                ],
                vec![
                    ClientOp::Write {
                        site: 0,
                        index: 0,
                        fill: 0xB2,
                    },
                    ClientOp::Read { site: 0, index: 0 },
                ],
            ],
            attachment: vec![None, None],
            budgets: Budgets {
                dup: 1,
                drop: 1,
                timer: 2,
                fail: 1,
                partition: 0,
                evict: 0,
                crash: 0,
            },
        },
        max_depth: 40,
        sleep_sets: true,
    }
}

/// A §5 partition episode: one external client and one client attached to
/// site 2, which the partition may isolate (exercising the gate's
/// believed-down edge: the isolated actor must cease processing).
pub fn partition_world() -> CheckConfig {
    CheckConfig {
        model: ModelConfig {
            group_size: 2,
            rows: 2,
            block_size: 4,
            scripts: vec![
                vec![
                    ClientOp::Write {
                        site: 2,
                        index: 0,
                        fill: 0xC3,
                    },
                    ClientOp::Read { site: 2, index: 0 },
                ],
                vec![
                    ClientOp::Write {
                        site: 0,
                        index: 0,
                        fill: 0xD4,
                    },
                    ClientOp::Read { site: 0, index: 0 },
                ],
            ],
            attachment: vec![None, Some(2)],
            budgets: Budgets {
                dup: 0,
                drop: 0,
                timer: 1,
                fail: 0,
                partition: 1,
                evict: 0,
                crash: 0,
            },
        },
        max_depth: 40,
        sleep_sets: true,
    }
}

/// One client overwriting the same block twice under duplication, cache
/// eviction and a failure episode — the world where the §3.2 idempotence
/// guard, the UID handshake and spare invalidation each carry the proof
/// alone. The three seeded mutants are all caught here.
pub fn adversarial_world() -> CheckConfig {
    CheckConfig {
        model: ModelConfig {
            group_size: 2,
            rows: 2,
            block_size: 4,
            scripts: vec![vec![
                ClientOp::Write {
                    site: 3,
                    index: 0,
                    fill: 0xE1,
                },
                ClientOp::Write {
                    site: 3,
                    index: 0,
                    fill: 0xE2,
                },
                ClientOp::Read { site: 3, index: 0 },
            ]],
            attachment: vec![None],
            budgets: Budgets {
                dup: 1,
                drop: 0,
                timer: 1,
                fail: 1,
                partition: 0,
                evict: 1,
                crash: 0,
            },
        },
        max_depth: 40,
        sleep_sets: true,
    }
}

/// The rebuild engine's world: one client writes, the other bulk-rebuilds
/// a failed site's blocks into the row spares (`ClientOp::Rebuild`, the
/// declustered fleet's per-group pass) while writes, duplication and
/// retransmission interleave. Exhausting it proves the PR-8 invariants:
/// stripe parity and spare-valid ⟹ matches-owner survive a rebuild racing
/// the write path, whichever member the failed pool site maps to.
pub fn rebuild_world() -> CheckConfig {
    CheckConfig {
        model: ModelConfig {
            group_size: 2,
            rows: 2,
            block_size: 4,
            scripts: vec![
                vec![
                    ClientOp::Write {
                        site: 3,
                        index: 0,
                        fill: 0xF1,
                    },
                    ClientOp::Read { site: 3, index: 0 },
                ],
                // Site 3 holds data in both rows, so a rebuild of it
                // exercises every spare slot the geometry offers.
                vec![ClientOp::Rebuild { site: 3 }],
            ],
            attachment: vec![None, None],
            budgets: Budgets {
                dup: 1,
                drop: 1,
                timer: 2,
                fail: 1,
                partition: 0,
                evict: 0,
                crash: 0,
            },
        },
        max_depth: 40,
        sleep_sets: true,
    }
}

/// The durability world: a site may crash at any locally quiescent point
/// and restart straight from its durable snapshot
/// ([`Action::CrashRestart`](crate::model::Action::CrashRestart) — the
/// model-level twin of `DiskBlocks` WAL recovery). Overwrites of one block
/// under duplication and retransmission interleave with the crash, so the
/// checker proves the WAL-covered state (UIDs, parity bookkeeping, spare
/// map) is *sufficient*: nothing the protocol later needs lived only in
/// the volatile half the restart discards.
pub fn crash_world() -> CheckConfig {
    CheckConfig {
        model: ModelConfig {
            group_size: 2,
            rows: 2,
            block_size: 4,
            scripts: vec![vec![
                ClientOp::Write {
                    site: 3,
                    index: 0,
                    fill: 0x91,
                },
                ClientOp::Write {
                    site: 3,
                    index: 0,
                    fill: 0x92,
                },
                ClientOp::Read { site: 3, index: 0 },
            ]],
            attachment: vec![None],
            budgets: Budgets {
                dup: 1,
                drop: 1,
                timer: 2,
                fail: 0,
                partition: 0,
                evict: 0,
                crash: 1,
            },
        },
        max_depth: 40,
        sleep_sets: true,
    }
}

/// Every standard world, with its name.
pub fn all() -> Vec<(&'static str, CheckConfig)> {
    vec![
        ("small_world", small_world()),
        ("partition_world", partition_world()),
        ("adversarial_world", adversarial_world()),
        ("rebuild_world", rebuild_world()),
        ("crash_world", crash_world()),
    ]
}
