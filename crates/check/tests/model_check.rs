//! Mainline model-checker proofs: the standard worlds exhaust their
//! reachable state space (visited-set fixpoint) with zero invariant
//! violations, and sleep-set reduction changes the cost of the search but
//! never its verdict.
//!
//! `small_world` is exercised by the `radd-check` binary (CI's
//! model-check job) rather than here: its ~330k states are comfortable in
//! release but would dominate a debug `cargo test` run. The two worlds
//! below cover the same machinery — partition gate, failure/recovery,
//! duplication, retransmission, eviction — at debug-friendly sizes.

use radd_check::driver::ModelDriver;
use radd_check::{configs, explore};
use radd_workload::faults::run_plan;

#[test]
fn partition_world_exhausts_clean() {
    let cfg = configs::partition_world();
    let report = explore(&cfg);
    assert!(
        report.violation.is_none(),
        "mainline violation: {:?}",
        report.violation.map(|cx| cx.error)
    );
    assert!(report.complete, "no fixpoint within depth {}", report.depth);
    assert!(report.states > 1000, "suspiciously small exploration");
}

#[test]
fn adversarial_world_exhausts_clean() {
    let cfg = configs::adversarial_world();
    let report = explore(&cfg);
    assert!(
        report.violation.is_none(),
        "mainline violation: {:?}",
        report.violation.map(|cx| cx.error)
    );
    assert!(report.complete, "no fixpoint within depth {}", report.depth);
    assert!(report.states > 1000, "suspiciously small exploration");
}

#[test]
fn rebuild_world_exhausts_clean() {
    let cfg = configs::rebuild_world();
    let report = explore(&cfg);
    assert!(
        report.violation.is_none(),
        "mainline violation: {:?}",
        report.violation.map(|cx| cx.error)
    );
    assert!(report.complete, "no fixpoint within depth {}", report.depth);
    assert!(report.states > 1000, "suspiciously small exploration");
}

/// The durability proof: every interleaving of writes, duplication,
/// retransmission and a crash/restart from the durable snapshot keeps the
/// paper's invariants — i.e. the WAL-covered half of `SiteMachine` state
/// really is sufficient to come back from.
#[test]
fn crash_world_exhausts_clean() {
    let cfg = configs::crash_world();
    let report = explore(&cfg);
    assert!(
        report.violation.is_none(),
        "mainline violation: {:?}",
        report.violation.map(|cx| cx.error)
    );
    assert!(report.complete, "no fixpoint within depth {}", report.depth);
    assert!(report.states > 1000, "suspiciously small exploration");
}

/// Sleep sets are a sound reduction: same verdict, same completeness,
/// never more transitions than the unreduced search.
#[test]
fn sleep_sets_preserve_verdict() {
    let mut with = configs::partition_world();
    with.sleep_sets = true;
    let mut without = configs::partition_world();
    without.sleep_sets = false;

    let r_with = explore(&with);
    let r_without = explore(&without);

    assert!(r_with.violation.is_none() && r_without.violation.is_none());
    assert_eq!(r_with.complete, r_without.complete);
    assert!(
        r_with.transitions <= r_without.transitions,
        "sleep sets explored more transitions ({} > {})",
        r_with.transitions,
        r_without.transitions
    );
}

/// The `FaultDriver` bridge replays a checker schedule faithfully: a
/// healthy scripted run (every message delivered in order, no faults)
/// quiesces and verifies clean through `run_plan`.
#[test]
fn driver_replays_healthy_schedule() {
    let cfg = configs::partition_world();
    let mut driver = ModelDriver::new(&cfg.model);
    let plan = radd_workload::faults::FaultPlan {
        seed: 0,
        events: vec![
            radd_workload::faults::FaultEvent::StepClient { client: 0 },
            radd_workload::faults::FaultEvent::StepClient { client: 1 },
        ],
    };
    let report = run_plan(&mut driver, &plan).expect("healthy schedule must pass");
    assert!(report.invariant_checks > 0);
}
