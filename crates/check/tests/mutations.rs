//! Mutation-catch proofs: each seeded protocol mutant must be found by
//! the bounded exhaustive search, shrink to a replayable counterexample
//! of at most 12 events, and still fail when that minimized plan is
//! re-run from scratch through the `FaultDriver` bridge — with the
//! observability snapshot of the dying cluster attached.
//!
//! An uncaught mutant is a hole in the invariant catalogue, so each of
//! these tests failing is a CI-stopping event. The process-global mutant
//! switch means every test here serialises on
//! [`radd_protocol::mutations::test_lock`].
#![cfg(feature = "mutations")]

use radd_check::configs;
use radd_check::driver::ModelDriver;
use radd_check::explore::{explore, CheckConfig};
use radd_protocol::mutations::{self, Mutation};
use radd_workload::faults::{minimize_failure, run_plan};

/// Arm `mutation`, prove the exhaustive search catches it in `world`,
/// and that greedy minimization yields a short plan that still kills a
/// fresh model.
fn prove_caught(mutation: Mutation, world: &CheckConfig, what: &str) {
    let _guard = mutations::test_lock();
    mutations::arm(Some(mutation));

    let report = explore(world);
    let cx = report
        .violation
        .unwrap_or_else(|| panic!("{what}: mutant survived {} states", report.states));

    let minimized = minimize_failure(|| ModelDriver::new(&world.model), &cx.plan);
    assert!(
        minimized.events.len() <= 12,
        "{what}: minimized counterexample has {} events (> 12):\n{}",
        minimized.events.len(),
        minimized
            .events
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );

    let failure = run_plan(&mut ModelDriver::new(&world.model), &minimized)
        .expect_err("minimized plan no longer fails");
    assert!(
        failure.obs.is_some(),
        "{what}: failure report lost its observability snapshot"
    );

    mutations::arm(None);
}

#[test]
fn aba_double_apply_is_caught() {
    // Needs a retransmitted parity update surviving a reply-cache
    // eviction: only the §3.2 UID guard is left to stop the double
    // application, and this mutant removes it.
    prove_caught(
        Mutation::AbaDoubleApply,
        &configs::adversarial_world(),
        "AbaDoubleApply",
    );
}

#[test]
fn dropped_uid_bump_is_caught() {
    // The very first healthy write ships a stale UID in W3, so the §3.3
    // agreement sweep at quiescence sees the parity site's UID array
    // disagree with the data site's block.
    prove_caught(
        Mutation::DroppedUidBump,
        &configs::adversarial_world(),
        "DroppedUidBump",
    );
}

#[test]
fn spare_no_invalidate_is_caught() {
    // Fail the data site, write degraded (spare takes the block), recover
    // (drain takes the spare back — but the mutant leaves the slot), then
    // write again healthy: the stale spare now disagrees with its owner.
    prove_caught(
        Mutation::SpareNoInvalidate,
        &configs::adversarial_world(),
        "SpareNoInvalidate",
    );
}
