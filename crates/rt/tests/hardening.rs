//! Server-hardening regressions: misbehaving connections must never take
//! a site down.
//!
//! The accept path hands every inbound connection to a reader thread that
//! parses frames defensively — a peer that disconnects mid-handshake,
//! ships a torn length prefix, or writes outright garbage costs the site
//! exactly one reader thread, never the event loop. These tests drive a
//! live site cluster through each abuse and then prove a well-formed
//! client is still served.

use radd_protocol::CoalescePolicy;
use radd_rt::server::run_site;
use radd_rt::{Control, SiteConfig, SocketClient, SocketEndpoint};
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::mpsc;
use std::thread;
use std::time::Duration;

const G: usize = 1;
const ROWS: u64 = 8;
const BLOCK: usize = 64;
const EP_BASE: usize = 1;

/// A bare G+2 site cluster on loopback, memory-backed.
fn spawn_sites() -> (
    Vec<SocketAddr>,
    Vec<mpsc::Sender<Control>>,
    Vec<thread::JoinHandle<()>>,
) {
    let listeners: Vec<TcpListener> = (0..G + 2)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind loopback"))
        .collect();
    let addrs: Vec<SocketAddr> = listeners
        .iter()
        .map(|l| l.local_addr().expect("local addr"))
        .collect();
    let (mut control, mut handles) = (Vec::new(), Vec::new());
    for (site, listener) in listeners.into_iter().enumerate() {
        let ep = SocketEndpoint::site(EP_BASE + site, EP_BASE, addrs.clone(), listener);
        let cfg = SiteConfig {
            site,
            group_size: G,
            rows: ROWS,
            block_size: BLOCK,
            ep_base: EP_BASE,
            coalesce: CoalescePolicy::Merge,
            storage: radd_storage::StorageSpec::Mem,
        };
        let (tx, rx) = mpsc::channel();
        control.push(tx);
        handles.push(thread::spawn(move || run_site(cfg, &ep, &rx)));
    }
    (addrs, control, handles)
}

fn shutdown(control: &[mpsc::Sender<Control>], handles: Vec<thread::JoinHandle<()>>) {
    for tx in control {
        let _ = tx.send(Control::Shutdown);
    }
    for h in handles {
        h.join().expect("site thread");
    }
}

#[test]
fn a_mid_handshake_disconnect_leaves_the_site_serving() {
    let (addrs, control, handles) = spawn_sites();

    // Abuse 1: connect and vanish without ever sending a Hello.
    drop(TcpStream::connect(addrs[0]).expect("dial site 0"));

    // Abuse 2: disconnect mid-handshake — a length prefix promising a
    // 64-byte frame, then only half of it, then the connection dies.
    {
        let mut s = TcpStream::connect(addrs[0]).expect("dial site 0");
        s.write_all(&64u32.to_le_bytes()).expect("torn prefix");
        s.write_all(&[0xAB; 32]).expect("torn body");
    } // dropped here, mid-frame

    // Abuse 3: a complete frame's worth of garbage (checksum cannot
    // match), which must kill only that connection's reader.
    {
        let mut s = TcpStream::connect(addrs[0]).expect("dial site 0");
        let mut junk = Vec::new();
        junk.extend_from_slice(&16u32.to_le_bytes());
        junk.extend_from_slice(&[0x5A; 24]);
        s.write_all(&junk).expect("garbage frame");
        s.flush().expect("flush garbage");
        // Give the reader a moment to chew on it before disconnecting.
        thread::sleep(Duration::from_millis(50));
    }

    // The site must still serve a well-formed client end to end.
    let ep = SocketEndpoint::client(0, EP_BASE, addrs);
    let mut client = SocketClient::new(ep, G, ROWS, BLOCK);
    client
        .write(0, 1, &[0xCD; BLOCK])
        .expect("write still served");
    assert_eq!(
        client.read(0, 1).expect("read still served"),
        vec![0xCD; BLOCK]
    );
    drop(client);
    shutdown(&control, handles);
}

#[test]
fn an_oversized_length_prefix_only_costs_that_connection() {
    let (addrs, control, handles) = spawn_sites();

    // A length prefix far beyond the frame cap: the decoder must refuse
    // it (rather than attempt the allocation) and drop the connection.
    {
        let mut s = TcpStream::connect(addrs[0]).expect("dial site 0");
        s.write_all(&u32::MAX.to_le_bytes()).expect("huge prefix");
        s.flush().expect("flush prefix");
        thread::sleep(Duration::from_millis(50));
    }

    let ep = SocketEndpoint::client(0, EP_BASE, addrs);
    let mut client = SocketClient::new(ep, G, ROWS, BLOCK);
    client
        .write(0, 2, &[0xEE; BLOCK])
        .expect("write still served");
    assert_eq!(
        client.read(0, 2).expect("read still served"),
        vec![0xEE; BLOCK]
    );
    drop(client);
    shutdown(&control, handles);
}
