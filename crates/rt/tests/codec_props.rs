//! Property tests of the wire codec: every frame kind roundtrips through
//! the incremental decoder under arbitrary kernel-chosen read splits, and
//! malformed input — truncated frames, oversized length prefixes,
//! corrupted checksums, outright garbage — produces clean errors, never a
//! panic and never an allocation driven by attacker-controlled lengths.

use bytes::Bytes;
use proptest::prelude::*;
use proptest::strategy::Union;
use radd_parity::Uid;
use radd_protocol::wire::{Msg, NackReason, SpareContent, SpareSlotWire};
use radd_rt::frame::{
    write_frame, CtlRep, CtlReq, Frame, FrameDecoder, FrameError, FRAME_HEADER, MAX_FRAME,
};

// ---------------------------------------------------------------------
// strategies: every message and frame kind
// ---------------------------------------------------------------------

fn arb_bytes(max: usize) -> impl Strategy<Value = Bytes> {
    proptest::collection::vec(any::<u8>(), 0..max).prop_map(Bytes::from)
}

fn arb_uid() -> impl Strategy<Value = Uid> {
    any::<u64>().prop_map(Uid::from_raw)
}

fn arb_content() -> impl Strategy<Value = SpareContent> {
    prop_oneof![
        arb_uid().prop_map(|uid| SpareContent::Data { uid }),
        proptest::collection::vec(arb_uid(), 0..6).prop_map(|uids| SpareContent::Parity { uids }),
    ]
}

fn arb_nack_reason() -> impl Strategy<Value = NackReason> {
    prop_oneof![
        Just(NackReason::Down),
        Just(NackReason::OutOfRange),
        Just(NackReason::BadSize),
        Just(NackReason::Unavailable),
        Just(NackReason::Conflict),
    ]
}

fn arb_slot() -> impl Strategy<Value = Option<SpareSlotWire>> {
    prop_oneof![
        Just(None::<SpareSlotWire>),
        (0..8usize, arb_bytes(64), arb_content()).prop_map(|(for_site, data, content)| {
            Some(SpareSlotWire {
                for_site,
                data,
                content,
            })
        }),
    ]
}

/// One arm per [`Msg`] variant — adding a wire variant without extending
/// this union fails the coverage check in `every_msg_kind_is_generated`.
fn arb_msg() -> impl Strategy<Value = Msg> {
    Union::new(vec![
        (
            1,
            Union::arm(
                (any::<u64>(), any::<u64>()).prop_map(|(index, tag)| Msg::Read { index, tag }),
            ),
        ),
        (
            1,
            Union::arm(
                (any::<u64>(), arb_bytes(64), any::<u64>())
                    .prop_map(|(index, data, tag)| Msg::Write { index, data, tag }),
            ),
        ),
        (
            1,
            Union::arm(
                (
                    any::<u64>(),
                    arb_bytes(64),
                    arb_uid(),
                    0..8usize,
                    any::<u64>(),
                )
                    .prop_map(|(row, mask_wire, uid, from_site, tag)| {
                        Msg::ParityUpdate {
                            row,
                            mask_wire,
                            uid,
                            from_site,
                            tag,
                        }
                    }),
            ),
        ),
        (
            1,
            Union::arm((any::<u64>(), any::<bool>(), any::<u64>()).prop_map(
                |(row, want_data, tag)| Msg::SpareProbe {
                    row,
                    want_data,
                    tag,
                },
            )),
        ),
        (
            1,
            Union::arm(
                (
                    any::<u64>(),
                    0..8usize,
                    arb_bytes(64),
                    arb_content(),
                    any::<u64>(),
                )
                    .prop_map(|(row, for_site, data, content, tag)| {
                        Msg::SpareInstall {
                            row,
                            for_site,
                            data,
                            content,
                            tag,
                        }
                    }),
            ),
        ),
        (
            1,
            Union::arm(
                (any::<u64>(), any::<u64>()).prop_map(|(row, tag)| Msg::BlockRead { row, tag }),
            ),
        ),
        (
            1,
            Union::arm(
                (0..8usize, any::<u64>())
                    .prop_map(|(for_site, tag)| Msg::SpareDrainList { for_site, tag }),
            ),
        ),
        (
            1,
            Union::arm(
                (any::<u64>(), any::<u64>()).prop_map(|(row, tag)| Msg::SpareTake { row, tag }),
            ),
        ),
        (
            1,
            Union::arm(
                (any::<u64>(), arb_bytes(64), arb_content(), any::<u64>()).prop_map(
                    |(row, data, content, tag)| Msg::RestoreBlock {
                        row,
                        data,
                        content,
                        tag,
                    },
                ),
            ),
        ),
        (
            1,
            Union::arm(
                (any::<u64>(), arb_bytes(64)).prop_map(|(tag, data)| Msg::ReadOk { tag, data }),
            ),
        ),
        (
            1,
            Union::arm(any::<u64>().prop_map(|tag| Msg::WriteOk { tag })),
        ),
        (1, Union::arm(any::<u64>().prop_map(|tag| Msg::Ack { tag }))),
        (
            1,
            Union::arm(
                (any::<u64>(), arb_nack_reason())
                    .prop_map(|(tag, reason)| Msg::Nack { tag, reason }),
            ),
        ),
        (
            1,
            Union::arm(
                (
                    any::<u64>(),
                    arb_bytes(64),
                    arb_uid(),
                    prop_oneof![
                        Just(None::<Vec<Uid>>),
                        proptest::collection::vec(arb_uid(), 0..6).prop_map(Some),
                    ],
                )
                    .prop_map(|(tag, data, uid, parity_uids)| Msg::BlockData {
                        tag,
                        data,
                        uid,
                        parity_uids,
                    }),
            ),
        ),
        (
            1,
            Union::arm(
                (any::<u64>(), arb_slot()).prop_map(|(tag, slot)| Msg::SpareState { tag, slot }),
            ),
        ),
        (
            1,
            Union::arm(
                (any::<u64>(), proptest::collection::vec(any::<u64>(), 0..12))
                    .prop_map(|(tag, rows)| Msg::SpareRows { tag, rows }),
            ),
        ),
    ])
}

fn arb_ctl_req() -> impl Strategy<Value = CtlReq> {
    prop_oneof![
        Just(CtlReq::Ping),
        Just(CtlReq::QueryPending),
        Just(CtlReq::QueryAllAcked),
        any::<bool>().prop_map(CtlReq::SetDown),
        Just(CtlReq::QueryObsJson),
        Just(CtlReq::Shutdown),
    ]
}

fn arb_ctl_rep() -> impl Strategy<Value = CtlRep> {
    prop_oneof![
        any::<bool>().prop_map(|down| CtlRep::Pong { down }),
        any::<u64>().prop_map(CtlRep::Pending),
        any::<bool>().prop_map(CtlRep::AllAcked),
        Just(CtlRep::Done),
        proptest::collection::vec(0x20u8..0x7F, 0..64)
            .prop_map(|v| CtlRep::ObsJson(String::from_utf8(v).expect("printable ASCII"))),
    ]
}

fn arb_frame() -> impl Strategy<Value = Frame> {
    prop_oneof![
        any::<u64>().prop_map(|id| Frame::Hello { id }),
        arb_msg().prop_map(Frame::Proto),
        (any::<u64>(), arb_ctl_req()).prop_map(|(rid, req)| Frame::CtlReq { rid, req }),
        (any::<u64>(), arb_ctl_rep()).prop_map(|(rid, rep)| Frame::CtlRep { rid, rep }),
    ]
}

/// Encode a frame stream to raw wire bytes.
fn to_wire(frames: &[Frame]) -> Vec<u8> {
    let mut wire = Vec::new();
    for f in frames {
        write_frame(&mut wire, f).expect("Vec write");
    }
    wire
}

/// Drive a decoder over `wire` delivered in the splits dictated by `cuts`
/// (cycled chunk sizes), decoding as bytes arrive — exactly what a TCP
/// reader sees from the kernel.
fn decode_split(wire: &[u8], cuts: &[usize]) -> Result<Vec<Frame>, FrameError> {
    let mut dec = FrameDecoder::new();
    let mut got = Vec::new();
    let mut rest = wire;
    let mut cuts = cuts.iter().cycle();
    while !rest.is_empty() {
        let n = cuts.next().copied().unwrap_or(1).clamp(1, rest.len());
        let (chunk, tail) = rest.split_at(n);
        dec.feed(chunk);
        rest = tail;
        while let Some(f) = dec.next_frame()? {
            got.push(f);
        }
    }
    Ok(got)
}

// ---------------------------------------------------------------------
// roundtrip under arbitrary read splits, hardening against malformation
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any stream of frames, any chunking: the decoder reproduces the
    /// stream exactly, and the result does not depend on the chunking.
    #[test]
    fn frames_roundtrip_under_any_read_split(
        frames in proptest::collection::vec(arb_frame(), 1..6),
        cuts in proptest::collection::vec(1usize..96, 1..8),
    ) {
        let wire = to_wire(&frames);
        let split = decode_split(&wire, &cuts).expect("valid stream");
        prop_assert_eq!(&split, &frames, "split decode diverged");
        // One coalesced feed (the kernel handing everything at once)
        // decodes to the identical sequence.
        let coalesced = decode_split(&wire, &[wire.len()]).expect("valid stream");
        prop_assert_eq!(&coalesced, &frames, "coalesced decode diverged");
    }

    /// A truncated stream never errors and never fabricates the missing
    /// frame: every complete prefix frame decodes, then the decoder waits.
    #[test]
    fn truncation_yields_a_clean_wait_not_an_error(
        frames in proptest::collection::vec(arb_frame(), 1..4),
        keep_fraction in 0.0f64..1.0,
    ) {
        let wire = to_wire(&frames);
        let keep = ((wire.len() as f64) * keep_fraction) as usize;
        let mut dec = FrameDecoder::new();
        dec.feed(&wire[..keep]);
        let mut got = Vec::new();
        loop {
            match dec.next_frame() {
                Ok(Some(f)) => got.push(f),
                Ok(None) => break, // waiting for the rest — the only legal end
                Err(e) => panic!("truncated stream errored: {e}"),
            }
        }
        prop_assert!(got.len() <= frames.len());
        prop_assert_eq!(&got[..], &frames[..got.len()], "prefix decode diverged");
    }

    /// A length prefix beyond [`MAX_FRAME`] is rejected as soon as the
    /// 12-byte header is readable — before any payload is buffered, so a
    /// hostile 4 GiB claim cannot balloon memory.
    #[test]
    fn oversized_length_prefix_is_rejected_from_the_header_alone(
        claimed in (MAX_FRAME as u64 + 1)..=u64::from(u32::MAX),
        check in any::<u64>(),
    ) {
        let mut dec = FrameDecoder::new();
        let mut head = Vec::with_capacity(FRAME_HEADER);
        head.extend_from_slice(&(claimed as u32).to_le_bytes());
        head.extend_from_slice(&check.to_le_bytes());
        dec.feed(&head);
        prop_assert_eq!(dec.next_frame(), Err(FrameError::Oversized { claimed }));
    }

    /// Corrupting the checksum field always surfaces as `BadChecksum`.
    #[test]
    fn corrupted_checksum_is_always_detected(
        frame in arb_frame(),
        flip in proptest::collection::vec(any::<u8>(), 8),
    ) {
        let mut wire = to_wire(std::slice::from_ref(&frame));
        let mut changed = false;
        for (i, f) in flip.iter().enumerate() {
            wire[4 + i] ^= f;
            changed |= *f != 0;
        }
        prop_assume!(changed);
        let mut dec = FrameDecoder::new();
        dec.feed(&wire);
        prop_assert_eq!(dec.next_frame(), Err(FrameError::BadChecksum));
    }

    /// Flipping any single byte of a valid frame never decodes back to the
    /// original frame and never panics: the checksum catches payload
    /// damage; header damage yields a clean wait (length shrank) or error.
    #[test]
    fn single_byte_corruption_never_reproduces_the_frame(
        frame in arb_frame(),
        pos_seed in any::<usize>(),
        xor in 1u8..=255,
    ) {
        let mut wire = to_wire(std::slice::from_ref(&frame));
        let pos = pos_seed % wire.len();
        wire[pos] ^= xor;
        let mut dec = FrameDecoder::new();
        dec.feed(&wire);
        // `Ok(None)` (a clean wait: the length shrank) and `Err` (a clean
        // rejection) are both fine; only a silent wrong decode is a bug.
        if let Ok(Some(got)) = dec.next_frame() {
            prop_assert_ne!(got, frame, "corruption went unnoticed");
        }
    }

    /// Arbitrary garbage fed in arbitrary chunks: the decoder returns
    /// frames, waits, or errors — it never panics.
    #[test]
    fn garbage_streams_never_panic(
        junk in proptest::collection::vec(any::<u8>(), 0..256),
        cuts in proptest::collection::vec(1usize..64, 1..6),
    ) {
        let _ = decode_split(&junk, &cuts); // Ok or Err both fine; no panic
    }
}

/// The `arb_msg` union covers every [`radd_protocol::MsgKind`]; if a wire
/// variant is added without extending the strategy, this fails rather than
/// silently shrinking codec coverage.
#[test]
fn every_msg_kind_is_generated() {
    use proptest::strategy::Strategy as _;
    use radd_protocol::MsgKind;
    let strategy = arb_msg();
    let mut rng = proptest::TestRng::new(0xC0DEC);
    let mut seen = std::collections::BTreeSet::new();
    for _ in 0..4096 {
        seen.insert(strategy.sample(&mut rng).kind());
        if seen.len() == MsgKind::COUNT {
            return;
        }
    }
    let missing: Vec<MsgKind> = MsgKind::ALL
        .iter()
        .copied()
        .filter(|k| !seen.contains(k))
        .collect();
    panic!("strategy never produced: {missing:?}");
}
