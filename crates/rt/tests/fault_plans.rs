//! Fault plans against the socket cluster: the same engine that drives the
//! DES and the threaded runtime drives real TCP connections here, with
//! every protocol frame crossing a [`radd_rt::FaultProxy`] on loopback.
//! Loss, duplication and §5 partitions are interpreted by the proxies on
//! actual byte streams; convergence relies on the sites' retransmission
//! machinery, and at every quiesce point every site must report
//! `all_acked`. On a violation, [`PlanFailure::write_dump`] leaves a
//! machine-readable report — event log plus the cluster's observability
//! snapshot — under `target/fault_dumps/` for CI to upload.

use radd_rt::SocketDriver;
use radd_workload::faults::{
    run_plan, seed_from_name, FaultEvent, FaultPlan, PlanFailure, PlanShape,
};

const BLOCK: usize = 64;

/// Panic with the report, leaving a machine-readable dump (metrics +
/// flight-recorder tails) under `target/fault_dumps/` for CI to upload.
fn dump_and_panic(context: &str, failure: &PlanFailure) -> ! {
    let dumped = failure
        .write_dump(std::path::Path::new("target/fault_dumps"), context)
        .map_or_else(
            |e| format!("<dump failed: {e}>"),
            |p| p.display().to_string(),
        );
    panic!("{context} (dump: {dumped}):\n{failure}")
}

/// Run one generated plan end to end on the socket runtime and assert the
/// convergence obligations every CI seed shares.
fn run_named_seed(name: &str) {
    let shape = PlanShape::default();
    let plan = FaultPlan::generate(seed_from_name(name), &shape);
    let mut driver = SocketDriver::start(shape.group_size, shape.rows, BLOCK);
    let context = format!("socket-{name}");
    let report = run_plan(&mut driver, &plan).unwrap_or_else(|f| dump_and_panic(&context, &f));
    assert_eq!(report.applied, plan.events.len());
    assert!(
        report.invariant_checks > 0,
        "healthy stretches must be swept"
    );
    assert!(
        driver.cluster().all_acked(),
        "no parity update may still be in flight after the final quiesce"
    );
    driver.shutdown();
}

// The three CI fault seeds. Each generates a distinct mix of load,
// failure/repair cycles, partitions and loss bursts; all must converge
// over real sockets exactly as they do on the threaded runtime and DES.

#[test]
fn named_seed_radd0001_completes_on_the_socket_runtime() {
    run_named_seed("0xRADD0001");
}

#[test]
fn named_seed_radd0002_completes_on_the_socket_runtime() {
    run_named_seed("0xRADD0002");
}

#[test]
fn named_seed_socket_soak_completes_on_the_socket_runtime() {
    run_named_seed("radd-socket-soak");
}

#[test]
fn loss_duplication_and_partition_converge_via_retransmission() {
    use FaultEvent::*;
    // Hand-composed: a heavy loss burst (30% of protocol frames silently
    // dropped at the proxies) overlapping a partition, with frame
    // duplication running for the whole plan — the proxy's third fault
    // axis, which the threaded runtime's lossy channels never exercise.
    // Duplicates must be absorbed by the sites' reply caches; every write
    // must still be durably reflected in parity once the cluster quiesces.
    let plan = FaultPlan::from_events(vec![
        Write {
            site: 0,
            index: 0,
            fill: 0x11,
        },
        Write {
            site: 1,
            index: 0,
            fill: 0x22,
        },
        LossBurst {
            permille: 300,
            seed: 0xC0FFEE,
        },
        Write {
            site: 2,
            index: 0,
            fill: 0x33,
        },
        Write {
            site: 3,
            index: 1,
            fill: 0x44,
        },
        Isolate { site: 1 },
        // Degraded write: the spare site absorbs it (W1').
        Write {
            site: 1,
            index: 2,
            fill: 0x55,
        },
        Write {
            site: 4,
            index: 1,
            fill: 0x66,
        },
        // Degraded read straight back from the spare, under loss.
        Read { site: 1, index: 2 },
        Heal { site: 1 },
        Recover { site: 1 },
        LossEnd,
        Write {
            site: 0,
            index: 3,
            fill: 0x77,
        },
        Read { site: 1, index: 2 },
        FlushParity,
    ]);
    let mut driver = SocketDriver::start(4, 12, BLOCK);
    // One frame in five is delivered twice, for the entire plan.
    driver.cluster().faults().set_duplication(200, 0xD0D0);
    let report =
        run_plan(&mut driver, &plan).unwrap_or_else(|f| dump_and_panic("socket-loss-burst", &f));
    assert!(report.invariant_checks > 0);
    // After the final quiesce every site's retransmission channel drained
    // despite drops and duplicates at the proxies.
    assert!(driver.cluster().all_acked());
    assert!(driver.oracle_len() > 0);
    let faults = driver.cluster().faults();
    assert!(
        faults.dropped() > 0,
        "the loss burst never dropped a frame — the proxies are not in the path"
    );
    assert!(
        faults.duplicated() > 0,
        "duplication never fired — the proxies are not in the path"
    );

    // The observability layer watched the whole scenario over the wire:
    // every machine (client + G + 2 sites) answers its snapshot query, and
    // the protocol traffic shows up in the counters and flight rings.
    let num_sites = driver.cluster().num_sites();
    let snap = driver.cluster_mut().obs_snapshot();
    assert_eq!(snap.machines.len(), 1 + num_sites);
    assert!(snap.total_flight_events() > 0, "flight rings are warm");
    let client = snap.machine("client").expect("client snapshot");
    assert!(
        client.metrics.sends_named("write") > 0,
        "the plan's writes were counted"
    );
    let parity_updates: u64 = snap
        .machines
        .iter()
        .map(|m| m.metrics.sends_named("parity_update"))
        .sum();
    assert!(
        parity_updates > 0,
        "sites shipped parity updates for the plan's writes"
    );
    driver.shutdown();
}

#[test]
fn quiesce_reports_all_acked_even_after_heavy_loss() {
    use FaultEvent::*;
    // Loss only — no failures — so every event is followed by a full
    // invariant sweep once the burst ends.
    let mut events = vec![LossBurst {
        permille: 250,
        seed: 0xFEED,
    }];
    for i in 0..8u64 {
        events.push(Write {
            site: (i % 6) as usize,
            index: i % 4,
            fill: 0x100 + i,
        });
    }
    events.push(LossEnd);
    events.push(FlushParity);
    let plan = FaultPlan::from_events(events);
    let mut driver = SocketDriver::start(4, 12, BLOCK);
    run_plan(&mut driver, &plan).unwrap_or_else(|f| dump_and_panic("socket-heavy-loss", &f));
    assert!(driver.cluster().all_acked());
    driver.shutdown();
}
