//! Client lifetime regressions against live socket sites.
//!
//! Sites keep an at-most-once reply cache keyed by `(client endpoint,
//! tag)`. Two hazards follow for real deployments where client processes
//! come and go while sites persist:
//!
//! 1. a *different* concurrent client must be able to read data written
//!    by another (distinct endpoint ids — no cache interaction), and
//! 2. a *restarted* client process that reuses an endpoint id must not be
//!    served cached replies meant for its previous incarnation. The
//!    incarnation tag salt ([`radd_rt::SocketClient::set_incarnation`])
//!    exists for exactly this; without it the site replays the old
//!    process's `WriteOk` against the new process's `Read` and the client
//!    aborts with a spurious multiple-failure error.

use radd_protocol::CoalescePolicy;
use radd_rt::server::run_site;
use radd_rt::{Control, SiteConfig, SocketClient, SocketCluster, SocketEndpoint};
use std::net::{SocketAddr, TcpListener};
use std::sync::mpsc;
use std::thread;

const G: usize = 1;
const ROWS: u64 = 8;
const BLOCK: usize = 128;
/// One reserved client endpoint slot, reused across "processes".
const EP_BASE: usize = 1;

/// Spawn a bare G+2 site cluster on loopback (no fault proxies, no
/// harness clients) — the same wiring the standalone binaries use.
fn spawn_sites() -> (
    Vec<SocketAddr>,
    Vec<mpsc::Sender<Control>>,
    Vec<thread::JoinHandle<()>>,
) {
    let listeners: Vec<TcpListener> = (0..G + 2)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind loopback"))
        .collect();
    let addrs: Vec<SocketAddr> = listeners
        .iter()
        .map(|l| l.local_addr().expect("local addr"))
        .collect();
    let (mut control, mut handles) = (Vec::new(), Vec::new());
    for (site, listener) in listeners.into_iter().enumerate() {
        let ep = SocketEndpoint::site(EP_BASE + site, EP_BASE, addrs.clone(), listener);
        let cfg = SiteConfig {
            site,
            group_size: G,
            rows: ROWS,
            block_size: BLOCK,
            ep_base: EP_BASE,
            coalesce: CoalescePolicy::Merge,
            storage: radd_storage::StorageSpec::Mem,
        };
        let (tx, rx) = mpsc::channel();
        control.push(tx);
        handles.push(thread::spawn(move || run_site(cfg, &ep, &rx)));
    }
    (addrs, control, handles)
}

fn fresh_client(addrs: &[SocketAddr], incarnation: u64) -> SocketClient {
    let ep = SocketEndpoint::client(0, EP_BASE, addrs.to_vec());
    let mut client = SocketClient::new(ep, G, ROWS, BLOCK);
    client.set_incarnation(incarnation);
    client
}

#[test]
fn a_restarted_client_does_not_alias_the_reply_cache() {
    let (addrs, control, handles) = spawn_sites();
    {
        // First "process": write, then exit (dropping the endpoint tears
        // down its connections, but the sites keep its replies cached).
        let mut first = fresh_client(&addrs, 1);
        first.write(0, 1, &[0xAA; BLOCK]).expect("first write");
    }
    // Second "process" on the same endpoint id. With a distinct
    // incarnation its tags never collide with the first process's, so the
    // site executes the read instead of replaying a cached WriteOk.
    let mut second = fresh_client(&addrs, 2);
    let got = second.read(0, 1).expect("read after restart");
    assert_eq!(got, vec![0xAA; BLOCK]);
    drop(second);
    for tx in &control {
        let _ = tx.send(Control::Shutdown);
    }
    for h in handles {
        h.join().expect("site thread");
    }
}

#[test]
fn concurrent_clients_on_distinct_endpoints_share_the_store() {
    let (mut cluster, mut extra) =
        SocketCluster::start_with(G, ROWS, BLOCK, 2, CoalescePolicy::Merge);
    cluster
        .client()
        .write(0, 1, &[0xAA; BLOCK])
        .expect("write from client 0");
    let got = extra[0].read(0, 1).expect("read from client 1");
    assert_eq!(got, vec![0xAA; BLOCK]);
    cluster.shutdown();
}
