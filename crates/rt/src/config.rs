//! Static cluster configuration for the standalone binaries.
//!
//! A deployment is described by a tiny line-oriented site-map file (or the
//! same text passed inline). Comments (`#`) and blank lines are ignored:
//!
//! ```text
//! # 4+2 cluster on loopback
//! g = 4
//! rows = 64
//! block_size = 1024
//! site 0 = 127.0.0.1:7400
//! site 1 = 127.0.0.1:7401
//! site 2 = 127.0.0.1:7402
//! site 3 = 127.0.0.1:7403
//! site 4 = 127.0.0.1:7404
//! site 5 = 127.0.0.1:7405
//! ```
//!
//! At least `g + 2` sites must be listed (G data-capable sites plus the
//! §1.2 parity and spare overhead sites, rotated per row), numbered
//! densely from 0. `rows` and `block_size` are optional with conservative
//! defaults; `g` and the site list are mandatory.
//!
//! ## Multi-group deployments
//!
//! `groups = N` (default 1) turns the map into a sharded cluster spec: the
//! listed addresses become **pool sites**, each hosting `A·(g+2)/P` member
//! slots laid out by the `radd-layout` `ShardMap`. A member slot listens
//! on its pool site's address with the port shifted by the slot's *drive
//! index* at that site, so one `radd-server --group k` process per hosted
//! slot carries the whole deployment. With the classic square pool (`P =
//! g + 2` sites) the layout is the Figure-1 rotation lifted to groups —
//! group `k`'s member `m` on pool site `(m + k) mod (g + 2)`, port `+ k`:
//!
//! ```text
//! groups = 4
//! g = 2
//! site 0 = 127.0.0.1:7400   # also serves 7401..7403 for groups 1..3
//! site 1 = 127.0.0.1:7410
//! site 2 = 127.0.0.1:7420
//! site 3 = 127.0.0.1:7430
//! ```
//!
//! ## Declustered pools
//!
//! Listing **more** than `g + 2` sites widens the pool; `placement =
//! declustered` (default `rotation`) then spreads every group's members
//! across it, so a failed site's rebuild reads fan over all `P - 1`
//! survivors instead of one group-width cluster:
//!
//! ```text
//! groups = 6
//! g = 2
//! placement = declustered
//! site 0 = 127.0.0.1:7400   # 8 sites, 3 slots each: 6 groups of width 4
//! ...
//! site 7 = 127.0.0.1:7470
//! ```
//!
//! Every listen endpoint — listed or derived — must be distinct; the
//! parser rejects duplicates at load.

use radd_layout::{Geometry, GroupId, Placement, ShardMap};
use std::net::SocketAddr;

/// Defaults when the map omits the geometry lines.
const DEFAULT_ROWS: u64 = 64;
const DEFAULT_BLOCK_SIZE: usize = 1024;
/// Default client endpoint slots (`ep_base`): endpoint ids `0..clients`
/// are reserved for clients, so site `j` is endpoint `clients + j`.
const DEFAULT_CLIENTS: usize = 4;

/// A parsed cluster map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Group size `G`.
    pub g: usize,
    /// Block rows per site.
    pub rows: u64,
    /// Block size in bytes.
    pub block_size: usize,
    /// Reserved client endpoint slots (`ep_base`). Client ids must stay
    /// below this; site `j` is endpoint `clients + j`.
    pub clients: usize,
    /// Number of groups `A` sharing the pool (1 = classic single group).
    pub groups: usize,
    /// Member placement over the pool (`rotation` or `declustered`).
    pub placement: Placement,
    /// Pool-site addresses, indexed by site id. For `groups = 1` these are
    /// the member addresses directly.
    pub sites: Vec<SocketAddr>,
    /// Storage backend for every server: `storage = mem` (default) keeps
    /// blocks in volatile memory; `storage = disk` mounts a durable
    /// WAL-backed store under `data_dir` (one subdirectory per site), so
    /// a killed `radd-server` process restarts from its own disk.
    pub storage: StorageKind,
    /// Root directory for `storage = disk` (default `radd-data`). Each
    /// server uses `<data_dir>/site-<j>` (single group) or
    /// `<data_dir>/group-<k>/site-<m>`.
    pub data_dir: String,
    /// The shard map every address derives from, built at parse time.
    map: ShardMap,
}

/// The `storage =` choice of a cluster map.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum StorageKind {
    /// Volatile in-memory blocks (the default).
    #[default]
    Mem,
    /// Durable WAL-backed `radd_storage::DiskBlocks` under `data_dir`.
    Disk,
}

impl std::str::FromStr for StorageKind {
    type Err = String;

    fn from_str(s: &str) -> Result<StorageKind, String> {
        match s {
            "mem" | "memory" => Ok(StorageKind::Mem),
            "disk" => Ok(StorageKind::Disk),
            other => Err(format!("unknown storage kind `{other}` (mem|disk)")),
        }
    }
}

impl ClusterConfig {
    /// Number of pool sites (`≥ G + 2`).
    pub fn num_sites(&self) -> usize {
        self.sites.len()
    }

    /// Endpoint id of site 0 (clients occupy the ids below it).
    pub fn ep_base(&self) -> usize {
        self.clients
    }

    /// The shard map describing member placement over the pool.
    pub fn shard_map(&self) -> &ShardMap {
        &self.map
    }

    /// Pool site hosting member slot `member` of group `group`. On the
    /// square rotation pool this is `(member + group) mod (g + 2)`.
    pub fn pool_site_of(&self, group: usize, member: usize) -> usize {
        self.map.group_members(GroupId(group))[member].site
    }

    /// Member slot that pool site `site` takes in group `group`, or `None`
    /// when the placement gave that group no slot there (possible on pools
    /// wider than one group).
    pub fn member_slot_of(&self, group: usize, site: usize) -> Option<usize> {
        self.map
            .group_members(GroupId(group))
            .iter()
            .position(|d| d.site == site)
    }

    /// Listen address of member `member` of group `group`: the hosting
    /// pool site's address with the port shifted by the slot's drive index
    /// at that site (equal to the group id on the square rotation pool).
    pub fn group_member_addr(&self, group: usize, member: usize) -> SocketAddr {
        let drive = self.map.group_members(GroupId(group))[member];
        let mut addr = self.sites[drive.site];
        addr.set_port(addr.port() + drive.drive as u16);
        addr
    }

    /// Group `group`'s member-ordered address vector (what its servers and
    /// clients hand to their endpoints).
    pub fn group_sites(&self, group: usize) -> Vec<SocketAddr> {
        (0..self.g + 2)
            .map(|m| self.group_member_addr(group, m))
            .collect()
    }

    /// The [`radd_storage::StorageSpec`] a server of `group` should
    /// mount: `Mem` for `storage = mem`; for `storage = disk`, the
    /// per-group subdirectory of `data_dir` (single-group maps use
    /// `data_dir` directly). Callers pass the member slot to
    /// `StorageSpec::for_site`, which appends the final `site-<m>`.
    pub fn storage_spec(&self, group: usize) -> radd_storage::StorageSpec {
        match self.storage {
            StorageKind::Mem => radd_storage::StorageSpec::Mem,
            StorageKind::Disk => {
                let root = std::path::PathBuf::from(&self.data_dir);
                let dir = if self.groups == 1 {
                    root
                } else {
                    root.join(format!("group-{group}"))
                };
                radd_storage::StorageSpec::Disk { dir }
            }
        }
    }

    /// Parse a site-map text. Errors name the offending line.
    pub fn parse(text: &str) -> Result<ClusterConfig, String> {
        let mut g: Option<usize> = None;
        let mut rows = DEFAULT_ROWS;
        let mut block_size = DEFAULT_BLOCK_SIZE;
        let mut clients = DEFAULT_CLIENTS;
        let mut groups = 1usize;
        let mut placement = Placement::Rotation;
        let mut storage = StorageKind::default();
        let mut data_dir = String::from("radd-data");
        let mut sites: Vec<(usize, SocketAddr)> = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected `key = value`", lineno + 1))?;
            let (key, value) = (key.trim(), value.trim());
            let bad = |what: &str| format!("line {}: invalid {what}: `{value}`", lineno + 1);
            if let Some(idx) = key.strip_prefix("site ") {
                let idx: usize = idx.trim().parse().map_err(|_| bad("site id"))?;
                let addr: SocketAddr = value.parse().map_err(|_| bad("site address"))?;
                sites.push((idx, addr));
            } else {
                match key {
                    "g" => g = Some(value.parse().map_err(|_| bad("group size"))?),
                    "rows" => rows = value.parse().map_err(|_| bad("row count"))?,
                    "block_size" => block_size = value.parse().map_err(|_| bad("block size"))?,
                    "clients" => clients = value.parse().map_err(|_| bad("client count"))?,
                    "groups" => groups = value.parse().map_err(|_| bad("group count"))?,
                    "placement" => placement = value.parse().map_err(|_| bad("placement"))?,
                    "storage" => {
                        storage = value
                            .parse()
                            .map_err(|e: String| format!("line {}: {e}", lineno + 1))?;
                    }
                    "data_dir" => data_dir = value.to_string(),
                    other => return Err(format!("line {}: unknown key `{other}`", lineno + 1)),
                }
            }
        }
        let g = g.ok_or("missing `g = ...` line")?;
        if g == 0 {
            return Err("group size must be positive".into());
        }
        if block_size == 0 || rows == 0 {
            return Err("rows and block_size must be positive".into());
        }
        if clients == 0 {
            return Err("at least one client slot is required".into());
        }
        if groups == 0 {
            return Err("at least one group is required".into());
        }
        let width = g + 2;
        let listed = sites.len();
        if listed < width {
            return Err(format!(
                "need at least {width} sites for g = {g}, got {listed}"
            ));
        }
        let mut by_id: Vec<Option<SocketAddr>> = vec![None; listed];
        for (idx, addr) in sites {
            let slot = by_id
                .get_mut(idx)
                .ok_or_else(|| format!("site {idx} leaves a gap (need sites 0..{listed})"))?;
            if slot.replace(addr).is_some() {
                return Err(format!("site {idx} is listed twice"));
            }
        }
        let sites: Vec<SocketAddr> = by_id
            .into_iter()
            .enumerate()
            .map(|(i, s)| s.ok_or(format!("site {i} is missing (need sites 0..{listed})")))
            .collect::<Result<_, _>>()?;
        // Member slots must spread evenly: A groups of `width` slots over
        // the listed pool.
        let total_slots = groups * width;
        if !total_slots.is_multiple_of(sites.len()) {
            return Err(format!(
                "groups = {groups} puts {total_slots} member slots on {} sites — \
                 not an even split; adjust `groups` or the site list",
                sites.len()
            ));
        }
        let slots_per_site = total_slots / sites.len();
        let geometry = Geometry::new(g, rows).map_err(|e| e.to_string())?;
        let map = ShardMap::pool(sites.len(), slots_per_site, geometry, placement)
            .map_err(|e| format!("placement failed: {e:?}"))?;
        let cfg = ClusterConfig {
            g,
            rows,
            block_size,
            clients,
            groups,
            placement,
            sites,
            storage,
            data_dir,
            map,
        };
        // Every listen endpoint — listed, and derived when a site hosts
        // several member slots — must be distinct: two servers cannot
        // share a socket, and a duplicate in the map means some site would
        // silently answer for another.
        let mut seen: std::collections::HashMap<SocketAddr, String> =
            std::collections::HashMap::new();
        for group in 0..cfg.groups {
            for member in 0..width {
                let drive = cfg.map.group_members(GroupId(group))[member];
                let site = drive.site;
                let base = cfg.sites[site];
                if ((u16::MAX - base.port()) as usize) < drive.drive {
                    return Err(format!(
                        "site {site} port {} overflows when shifted for its drive {} \
                         (each site needs {} spare ports)",
                        base.port(),
                        drive.drive,
                        slots_per_site - 1
                    ));
                }
                let addr = cfg.group_member_addr(group, member);
                let who = if cfg.groups == 1 {
                    format!("site {site}")
                } else {
                    format!("site {site} (group {group})")
                };
                if let Some(prev) = seen.insert(addr, who.clone()) {
                    return Err(format!(
                        "duplicate endpoint: {prev} and {who} both listen on {addr}"
                    ));
                }
            }
        }
        Ok(cfg)
    }

    /// Parse the file at `path`.
    pub fn load(path: &str) -> Result<ClusterConfig, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        ClusterConfig::parse(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAP: &str = "\
        # loopback cluster\n\
        g = 2\n\
        rows = 8\n\
        block_size = 128\n\
        site 0 = 127.0.0.1:7400\n\
        site 1 = 127.0.0.1:7401  # inline comment\n\
        site 2 = 127.0.0.1:7402\n\
        site 3 = 127.0.0.1:7403\n";

    #[test]
    fn well_formed_map_parses() {
        let cfg = ClusterConfig::parse(MAP).unwrap();
        assert_eq!(cfg.g, 2);
        assert_eq!(cfg.rows, 8);
        assert_eq!(cfg.block_size, 128);
        assert_eq!(cfg.num_sites(), 4);
        assert_eq!(cfg.sites[3], "127.0.0.1:7403".parse().unwrap());
    }

    #[test]
    fn defaults_fill_in_geometry() {
        let cfg = ClusterConfig::parse(
            "g = 1\nsite 0 = 127.0.0.1:1\nsite 1 = 127.0.0.1:2\nsite 2 = 127.0.0.1:3\n",
        )
        .unwrap();
        assert_eq!(cfg.rows, DEFAULT_ROWS);
        assert_eq!(cfg.block_size, DEFAULT_BLOCK_SIZE);
        assert_eq!(cfg.ep_base(), DEFAULT_CLIENTS);
    }

    #[test]
    fn multi_group_map_derives_rotated_endpoints() {
        let cfg = ClusterConfig::parse(
            "groups = 4\ng = 2\nrows = 8\n\
             site 0 = 127.0.0.1:7400\nsite 1 = 127.0.0.1:7410\n\
             site 2 = 127.0.0.1:7420\nsite 3 = 127.0.0.1:7430\n",
        )
        .unwrap();
        assert_eq!(cfg.groups, 4);
        // Group 0 is the identity placement at the base ports.
        assert_eq!(cfg.group_sites(0), cfg.sites);
        // Group k member m sits on pool site (m + k) mod 4, port + k.
        assert_eq!(cfg.pool_site_of(1, 3), 0);
        assert_eq!(
            cfg.group_member_addr(1, 3),
            "127.0.0.1:7401".parse().unwrap()
        );
        assert_eq!(
            cfg.group_member_addr(3, 1),
            "127.0.0.1:7403".parse().unwrap()
        );
        // member_slot_of inverts pool_site_of for every pair.
        for group in 0..cfg.groups {
            for member in 0..cfg.num_sites() {
                assert_eq!(
                    cfg.member_slot_of(group, cfg.pool_site_of(group, member)),
                    Some(member)
                );
            }
        }
    }

    #[test]
    fn declustered_wide_pool_parses_and_spreads() {
        // 8 pool sites, 6 groups of width 4 — 3 slots per site.
        let mut text = String::from("groups = 6\ng = 2\nrows = 8\nplacement = declustered\n");
        for s in 0..8 {
            text.push_str(&format!("site {s} = 127.0.0.1:{}\n", 7400 + 10 * s));
        }
        let cfg = ClusterConfig::parse(&text).unwrap();
        assert_eq!(cfg.placement, Placement::Declustered);
        assert_eq!(cfg.num_sites(), 8);
        assert_eq!(cfg.shard_map().num_groups(), 6);
        // Every group's 4 members sit on distinct sites, and addressing is
        // internally consistent.
        for group in 0..6 {
            let sites: std::collections::HashSet<usize> =
                (0..4).map(|m| cfg.pool_site_of(group, m)).collect();
            assert_eq!(sites.len(), 4, "group {group} reuses a site");
            for member in 0..4 {
                let site = cfg.pool_site_of(group, member);
                assert_eq!(cfg.member_slot_of(group, site), Some(member));
            }
            assert_eq!(cfg.group_sites(group).len(), 4);
        }
        // A failed site's reconstruction fans past one group's width.
        let spread = cfg
            .shard_map()
            .reconstruction_spread(0)
            .iter()
            .filter(|&&n| n > 0)
            .count();
        assert!(spread > 3, "declustered spread stuck at {spread}");
        // Rotation on the same wide pool parses too, but clusters.
        let rot = text.replace("placement = declustered\n", "");
        let cfg = ClusterConfig::parse(&rot).unwrap();
        assert_eq!(cfg.placement, Placement::Rotation);
    }

    #[test]
    fn duplicate_endpoints_are_rejected_at_load() {
        // Two pool sites sharing one listed address.
        let err = ClusterConfig::parse(
            "g = 1\nsite 0 = 127.0.0.1:7500\nsite 1 = 127.0.0.1:7500\nsite 2 = 127.0.0.1:7502\n",
        )
        .unwrap_err();
        assert!(err.contains("duplicate endpoint"), "got: {err}");
        assert!(err.contains("127.0.0.1:7500"), "got: {err}");
        // Derived collision: site 1's base port is inside site 0's
        // per-group port span.
        let err = ClusterConfig::parse(
            "groups = 4\ng = 2\n\
             site 0 = 127.0.0.1:7400\nsite 1 = 127.0.0.1:7402\n\
             site 2 = 127.0.0.1:7420\nsite 3 = 127.0.0.1:7430\n",
        )
        .unwrap_err();
        assert!(err.contains("duplicate endpoint"), "got: {err}");
        // Port overflow when shifting for the last group.
        let err = ClusterConfig::parse(
            "groups = 3\ng = 1\n\
             site 0 = 127.0.0.1:65534\nsite 1 = 127.0.0.1:7000\nsite 2 = 127.0.0.1:7010\n",
        )
        .unwrap_err();
        assert!(err.contains("overflows"), "got: {err}");
        assert!(ClusterConfig::parse("groups = 0\ng = 1\n")
            .unwrap_err()
            .contains("at least one group"));
    }

    #[test]
    fn structural_errors_are_reported() {
        assert!(ClusterConfig::parse("site 0 = 127.0.0.1:1\n")
            .unwrap_err()
            .contains("missing `g"));
        assert!(ClusterConfig::parse("g = 2\nsite 9 = 127.0.0.1:1\n")
            .unwrap_err()
            .contains("need at least"));
        let dup = format!("{MAP}site 1 = 127.0.0.1:9\n");
        assert!(ClusterConfig::parse(&dup).unwrap_err().contains("twice"));
        let short = "g = 2\nsite 0 = 127.0.0.1:1\n";
        assert!(ClusterConfig::parse(short)
            .unwrap_err()
            .contains("need at least"));
        assert!(ClusterConfig::parse("g = 2\nwat\n")
            .unwrap_err()
            .contains("key = value"));
    }
}
