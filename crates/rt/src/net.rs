//! TCP endpoints with the [`radd_net::ThreadedEndpoint`] shape.
//!
//! A [`SocketEndpoint`] is one process's network identity: an endpoint id
//! (clients `0..ep_base`, site `j` at `ep_base + j`), an optional listener
//! (sites listen; clients only dial), and a table of live connections keyed
//! by peer endpoint id. The API deliberately mirrors the threaded runtime's
//! endpoint — `send(dst, msg)` / `recv_timeout` — so the site event loop
//! and client attempt ladder port across runtimes with their logic (and
//! therefore their normalised effect traces) intact.
//!
//! Connection management:
//!
//! * **Dial on demand.** A send to a site with no live connection dials the
//!   site-map address, ships a [`Frame::Hello`] announcing our id, and
//!   registers the connection. Dial failures back off on a
//!   [`RetryPolicy`] schedule and surface as *silent loss* — exactly the
//!   failure mode the stop-and-wait retransmission layer above is built to
//!   absorb. A send to a *client* id with no live connection is dropped
//!   outright: clients dial us, we never dial them, and the client's own
//!   retransmission re-establishes the path.
//! * **One reader thread per connection** feeds decoded frames into the
//!   endpoint's single inbox channel, preserving TCP's per-connection
//!   ordering; cross-connection interleaving is as arbitrary as it is
//!   between the threaded runtime's channel senders.
//! * **Reconnects replace** the send-side entry for a peer id; the old
//!   connection's reader keeps draining until the stream dies, so no
//!   buffered message is lost by the swap.
//!
//! Everything here is transport plumbing — protocol behaviour (dedup,
//! retries, idempotence) lives in the sans-IO machines and their drivers.

use crate::frame::{write_frame, Frame, FrameDecoder};
use radd_net::RetryPolicy;
use radd_protocol::Msg;
use std::collections::HashMap;
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Dial timeout for one connection attempt.
const DIAL_TIMEOUT: Duration = Duration::from_millis(500);

/// Redial backoff after a failed dial: quick first retry, 640 ms ceiling.
/// (The schedule is the site retransmit policy — dial failures and lost
/// messages are absorbed by the same machinery.)
const DIAL_RETRY: RetryPolicy = RetryPolicy::SITE_RETRANSMIT;

/// Reader threads poll their stream at this granularity so shutdown flags
/// are observed promptly.
const READ_POLL: Duration = Duration::from_millis(50);

/// What arrived on the endpoint's inbox.
#[derive(Debug)]
pub enum Inbound {
    /// A protocol message from endpoint `src`.
    Proto {
        /// Sender's endpoint id.
        src: usize,
        /// The message.
        msg: Msg,
    },
    /// A control request; answer by writing a `CtlRep` frame to `reply`.
    Ctl {
        /// Request id to echo.
        rid: u64,
        /// The request.
        req: crate::frame::CtlReq,
        /// Write half of the requesting connection.
        reply: WriteHalf,
    },
}

/// What became of one send attempt — mirrors the threaded client's
/// classification: `Sent` covers everything a retry can fix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendOutcome {
    /// Written to a connection, or silently lost (dial pending/backoff,
    /// peer not connected) — retriable.
    Sent,
    /// No retry can succeed (destination outside the site map, endpoint
    /// shut down).
    Closed,
}

/// Shareable write half of a connection (the read half lives in its reader
/// thread). Writes are whole frames under the lock, so frames never
/// interleave mid-stream.
#[derive(Debug, Clone)]
pub struct WriteHalf {
    stream: Arc<Mutex<TcpStream>>,
}

impl WriteHalf {
    fn new(stream: TcpStream) -> WriteHalf {
        WriteHalf {
            stream: Arc::new(Mutex::new(stream)),
        }
    }

    /// Write one frame; an io error means the connection is dead.
    pub fn write(&self, frame: &Frame) -> std::io::Result<()> {
        // A poisoned lock means another writer panicked mid-frame and may
        // have left a torn prefix on the stream; report the connection
        // dead (callers drop it and redial) instead of panicking the
        // whole site on top of it.
        let mut s = self.stream.lock().map_err(|_| {
            std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "connection abandoned after a writer panic",
            )
        })?;
        write_frame(&mut *s, frame)
    }
}

struct Shared {
    /// Live send-side connections by peer endpoint id.
    peers: Mutex<HashMap<usize, WriteHalf>>,
    /// Failed-dial backoff per site index: (next allowed attempt, step).
    dial_backoff: Mutex<HashMap<usize, (Instant, u32)>>,
    inbox_tx: Sender<Inbound>,
    shutdown: AtomicBool,
}

impl Shared {
    /// The connection table. Poison-tolerant: holders only perform
    /// infallible `HashMap` insert/remove/get under the lock, so a panic
    /// elsewhere in a holding thread cannot leave the map half-updated —
    /// recovering the guard is always safe, and it keeps one panicking
    /// reader thread from cascading into every other connection.
    fn peers(&self) -> MutexGuard<'_, HashMap<usize, WriteHalf>> {
        self.peers.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The dial-backoff table; same poison argument as [`Shared::peers`].
    fn backoff(&self) -> MutexGuard<'_, HashMap<usize, (Instant, u32)>> {
        self.dial_backoff
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

/// One process's socket identity. See the module docs.
pub struct SocketEndpoint {
    id: usize,
    ep_base: usize,
    site_addrs: Vec<SocketAddr>,
    shared: Arc<Shared>,
    inbox_rx: Receiver<Inbound>,
    accept_thread: Option<JoinHandle<()>>,
}

impl SocketEndpoint {
    /// A client endpoint: dials sites, never listens.
    pub fn client(id: usize, ep_base: usize, site_addrs: Vec<SocketAddr>) -> SocketEndpoint {
        Self::build(id, ep_base, site_addrs, None)
    }

    /// A site endpoint serving on `listener` (bind it first — typically to
    /// `127.0.0.1:0` in tests — so the chosen port is known to the caller).
    pub fn site(
        id: usize,
        ep_base: usize,
        site_addrs: Vec<SocketAddr>,
        listener: TcpListener,
    ) -> SocketEndpoint {
        Self::build(id, ep_base, site_addrs, Some(listener))
    }

    fn build(
        id: usize,
        ep_base: usize,
        site_addrs: Vec<SocketAddr>,
        listener: Option<TcpListener>,
    ) -> SocketEndpoint {
        let (inbox_tx, inbox_rx) = std::sync::mpsc::channel();
        let shared = Arc::new(Shared {
            peers: Mutex::new(HashMap::new()),
            dial_backoff: Mutex::new(HashMap::new()),
            inbox_tx,
            shutdown: AtomicBool::new(false),
        });
        let accept_thread = listener.and_then(|l| {
            // A listener that cannot be polled would never observe the
            // shutdown flag; running deaf (peers' dials fail and back
            // off — silent loss, which the retransmission layer absorbs)
            // beats panicking a site that may still hold durable state.
            if let Err(e) = l.set_nonblocking(true) {
                eprintln!("radd-rt: cannot poll listener ({e}); serving without accepts");
                return None;
            }
            let shared = Arc::clone(&shared);
            Some(std::thread::spawn(move || accept_loop(&l, &shared)))
        });
        SocketEndpoint {
            id,
            ep_base,
            site_addrs,
            shared,
            inbox_rx,
            accept_thread,
        }
    }

    /// This endpoint's id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// First site endpoint id (clients occupy `0..ep_base`).
    pub fn ep_base(&self) -> usize {
        self.ep_base
    }

    /// Send `msg` to endpoint `dst`, dialing if needed.
    pub fn send(&self, dst: usize, msg: &Msg) -> SendOutcome {
        if self.shared.shutdown.load(Ordering::Relaxed) {
            return SendOutcome::Closed;
        }
        let frame = Frame::Proto(msg.clone());
        if let Some(w) = self.peer(dst) {
            if w.write(&frame).is_ok() {
                return SendOutcome::Sent;
            }
            // Dead connection: forget it. A site destination falls through
            // to a fresh dial below; a client destination is simply lost.
            self.shared.peers().remove(&dst);
        }
        if dst < self.ep_base {
            // A client we have no connection to: unreachable until it dials
            // us again. Loss, not closure — its retransmission recovers.
            return SendOutcome::Sent;
        }
        let site = dst - self.ep_base;
        if site >= self.site_addrs.len() {
            return SendOutcome::Closed;
        }
        match self.dial(site) {
            Some(w) => {
                let _ = w.write(&frame);
                SendOutcome::Sent
            }
            // Dial refused or backing off: silent loss.
            None => SendOutcome::Sent,
        }
    }

    fn peer(&self, dst: usize) -> Option<WriteHalf> {
        self.shared.peers().get(&dst).cloned()
    }

    /// Dial site `site` (by index), handshake, and register the
    /// connection. `None` when the dial failed or its backoff window has
    /// not elapsed yet.
    fn dial(&self, site: usize) -> Option<WriteHalf> {
        let dst = self.ep_base + site;
        {
            let backoff = self.shared.backoff();
            if let Some(&(next_at, _)) = backoff.get(&site) {
                if Instant::now() < next_at {
                    return None;
                }
            }
        }
        match TcpStream::connect_timeout(&self.site_addrs[site], DIAL_TIMEOUT) {
            Ok(stream) => {
                let _ = stream.set_nodelay(true);
                let write = WriteHalf::new(stream.try_clone().ok()?);
                if write.write(&Frame::Hello { id: self.id as u64 }).is_err() {
                    return None;
                }
                self.shared.backoff().remove(&site);
                self.shared.peers().insert(dst, write.clone());
                let shared = Arc::clone(&self.shared);
                std::thread::spawn(move || reader_loop(stream, Some(dst), &shared));
                Some(write)
            }
            Err(_) => {
                let mut backoff = self.shared.backoff();
                let step = backoff.get(&site).map_or(0, |&(_, s)| s.saturating_add(1));
                backoff.insert(site, (Instant::now() + DIAL_RETRY.delay(step), step));
                None
            }
        }
    }

    /// Receive the next inbound item, waiting up to `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Inbound, RecvTimeoutError> {
        self.inbox_rx.recv_timeout(timeout)
    }

    /// Stop accepting and tell reader threads to wind down. Existing
    /// connections die as their reads next time out.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for SocketEndpoint {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Accept loop: non-blocking polls so the shutdown flag is honoured.
fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    while !shared.shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nodelay(true);
                let shared = Arc::clone(shared);
                std::thread::spawn(move || reader_loop(stream, None, &shared));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
}

/// Drain one connection into the inbox. `peer_id` is known for dialed
/// connections; accepted ones learn it from the leading [`Frame::Hello`]
/// and then register their write half so replies can route back.
fn reader_loop(stream: TcpStream, peer_id: Option<usize>, shared: &Arc<Shared>) {
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let write = WriteHalf::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut reader = stream;
    let mut dec = FrameDecoder::new();
    let mut scratch = [0u8; 64 * 1024];
    let mut peer_id = peer_id;
    loop {
        if shared.shutdown.load(Ordering::Relaxed) {
            return;
        }
        // Drain every complete frame before reading again.
        loop {
            let frame = match dec.next_frame() {
                Ok(Some(f)) => f,
                Ok(None) => break,
                // Framing lost (corrupt stream): the connection is useless.
                Err(_) => return,
            };
            match frame {
                Frame::Hello { id } => {
                    let id = id as usize;
                    peer_id = Some(id);
                    shared.peers().insert(id, write.clone());
                }
                Frame::Proto(msg) => {
                    let Some(src) = peer_id else {
                        // Protocol before Hello: drop — an anonymous peer
                        // cannot receive replies anyway.
                        continue;
                    };
                    if shared.inbox_tx.send(Inbound::Proto { src, msg }).is_err() {
                        return;
                    }
                }
                Frame::CtlReq { rid, req } => {
                    let item = Inbound::Ctl {
                        rid,
                        req,
                        reply: write.clone(),
                    };
                    if shared.inbox_tx.send(item).is_err() {
                        return;
                    }
                }
                // Replies are matched by the control *client* (radd-cli),
                // which reads its connection directly; an endpoint inbox
                // never expects one.
                Frame::CtlRep { .. } => {}
            }
        }
        match reader.read(&mut scratch) {
            Ok(0) => return, // peer closed
            Ok(n) => dec.feed(&scratch[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loopback_pair() -> (SocketEndpoint, SocketEndpoint) {
        // One "site" (ep 1) and one "client" (ep 0).
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let site = SocketEndpoint::site(1, 1, vec![addr], listener);
        let client = SocketEndpoint::client(0, 1, vec![addr]);
        (client, site)
    }

    #[test]
    fn request_and_reply_cross_the_wire() {
        let (client, site) = loopback_pair();
        assert_eq!(
            client.send(1, &Msg::Read { index: 4, tag: 9 }),
            SendOutcome::Sent
        );
        let got = site.recv_timeout(Duration::from_secs(2)).unwrap();
        let Inbound::Proto { src, msg } = got else {
            panic!("expected protocol message");
        };
        assert_eq!(src, 0);
        assert_eq!(msg, Msg::Read { index: 4, tag: 9 });
        // Reply over the inbound connection (site never dials a client).
        assert_eq!(site.send(0, &Msg::WriteOk { tag: 9 }), SendOutcome::Sent);
        let back = client.recv_timeout(Duration::from_secs(2)).unwrap();
        let Inbound::Proto { src, msg } = back else {
            panic!("expected protocol reply");
        };
        assert_eq!(src, 1);
        assert_eq!(msg, Msg::WriteOk { tag: 9 });
    }

    #[test]
    fn unknown_site_is_closed_and_missing_client_is_loss() {
        let (client, site) = loopback_pair();
        assert_eq!(client.send(7, &Msg::Ack { tag: 0 }), SendOutcome::Closed);
        // The site has never heard from client 0 on this fresh pair, so a
        // reply to it is silently lost — not an error.
        assert_eq!(site.send(0, &Msg::Ack { tag: 0 }), SendOutcome::Sent);
        drop(client);
    }

    #[test]
    fn dial_failure_backs_off_instead_of_erroring() {
        // A site map pointing at a dead port: sends report Sent (silent
        // loss) and the dial backoff keeps the endpoint from spinning.
        let dead = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = dead.local_addr().unwrap();
        drop(dead);
        let client = SocketEndpoint::client(0, 1, vec![addr]);
        assert_eq!(client.send(1, &Msg::Ack { tag: 1 }), SendOutcome::Sent);
        assert_eq!(client.send(1, &Msg::Ack { tag: 2 }), SendOutcome::Sent);
    }
}
