//! A loopback socket cluster: `G + 2` site threads behind real TCP
//! listeners, every connection routed through a [`FaultProxy`].
//!
//! [`SocketCluster`] is the socket twin of `radd_node::NodeCluster` — same
//! construction parameters, same endpoint numbering (clients at
//! `0..ep_base`, site `j` at `ep_base + j`), same control vocabulary — so
//! the differential test and the fault-plan harness drive all three
//! runtimes through one interface. The one structural difference is the
//! path a message takes: every site map entry points at the site's fault
//! proxy rather than its listener, so *all* protocol traffic (client
//! requests, parity updates between sites, recovery drains) is subject to
//! the shared [`FaultState`] exactly once per message.
//!
//! [`SocketDriver`] adapts the cluster to
//! [`radd_workload::faults::FaultDriver`] with the exact semantics of the
//! threaded driver: disk events are DES-only no-ops, disasters degrade to
//! temporary failures, writes whose parity site is impaired are skipped
//! and counted, and a revived site stays on the client's down-list until
//! the plan's `Recover` drains its spares.

use crate::client::{ClientError, SocketClient};
use crate::net::SocketEndpoint;
use crate::proxy::{FaultProxy, FaultState};
use crate::server::{self, Control, SiteConfig};
use radd_protocol::CoalescePolicy;
use radd_storage::StorageSpec;
use radd_workload::faults::{payload, FailureKind, FaultDriver, FaultEvent};
use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long a quiesce may poll before a plan is declared stuck.
const QUIESCE_TIMEOUT: Duration = Duration::from_secs(10);

/// A running socket cluster: `G + 2` site threads plus a client handle.
pub struct SocketCluster {
    faults: Arc<FaultState>,
    proxies: Vec<FaultProxy>,
    client: SocketClient,
    control: Vec<std::sync::mpsc::Sender<Control>>,
    handles: Vec<JoinHandle<()>>,
    num_sites: usize,
    ep_base: usize,
}

impl SocketCluster {
    /// Spawn a cluster with group size `g`, `rows` block rows per site and
    /// `block_size`-byte blocks, all on loopback TCP. Endpoint 0 is the
    /// client; site `j` listens behind its proxy at endpoint `1 + j`.
    pub fn start(g: usize, rows: u64, block_size: usize) -> SocketCluster {
        let (cluster, _extra) =
            SocketCluster::start_with(g, rows, block_size, 1, CoalescePolicy::Merge);
        cluster
    }

    /// [`start`](SocketCluster::start) with `clients ≥ 1` client handles
    /// and an explicit parity-update [`CoalescePolicy`] (differential
    /// harnesses pass [`CoalescePolicy::Off`] to stay message-for-message
    /// identical to the DES interpreter).
    pub fn start_with(
        g: usize,
        rows: u64,
        block_size: usize,
        clients: usize,
        coalesce: CoalescePolicy,
    ) -> (SocketCluster, Vec<SocketClient>) {
        SocketCluster::start_durable(g, rows, block_size, clients, coalesce, &StorageSpec::Mem)
    }

    /// [`start_with`](SocketCluster::start_with) plus a [`StorageSpec`]:
    /// pass [`StorageSpec::Disk`] with a cluster root directory and every
    /// site runs on a durable WAL-backed store under `<dir>/site-<j>`,
    /// which survives
    /// [`kill_restart_site`](SocketCluster::kill_restart_site).
    pub fn start_durable(
        g: usize,
        rows: u64,
        block_size: usize,
        clients: usize,
        coalesce: CoalescePolicy,
        storage: &StorageSpec,
    ) -> (SocketCluster, Vec<SocketClient>) {
        assert!(clients >= 1, "need at least one client");
        let num_sites = g + 2;
        let ep_base = clients;
        let faults = FaultState::new(clients + num_sites);
        // Bind every site's listener first, then front each with a proxy;
        // the site map every endpoint dials is the list of *proxy* addrs.
        let listeners: Vec<TcpListener> = (0..num_sites)
            .map(|_| TcpListener::bind("127.0.0.1:0").expect("site bind"))
            .collect();
        let proxies: Vec<FaultProxy> = listeners
            .iter()
            .enumerate()
            .map(|(j, l)| {
                let real = l.local_addr().expect("site addr");
                FaultProxy::spawn(real, ep_base + j, Arc::clone(&faults))
            })
            .collect();
        let site_map: Vec<SocketAddr> = proxies.iter().map(FaultProxy::addr).collect();
        let mut handles = Vec::new();
        let mut control = Vec::new();
        for (j, listener) in listeners.into_iter().enumerate() {
            let (ctl_tx, ctl_rx) = std::sync::mpsc::channel();
            control.push(ctl_tx);
            let cfg = SiteConfig {
                site: j,
                group_size: g,
                rows,
                block_size,
                ep_base,
                coalesce,
                storage: storage.clone(),
            };
            let ep = SocketEndpoint::site(ep_base + j, ep_base, site_map.clone(), listener);
            handles.push(std::thread::spawn(move || {
                server::run_site(cfg, &ep, &ctl_rx);
            }));
        }
        let mut make_client = |id: usize| {
            let ep = SocketEndpoint::client(id, ep_base, site_map.clone());
            SocketClient::new(ep, g, rows, block_size)
        };
        let main_client = make_client(0);
        let extra: Vec<SocketClient> = (1..clients).map(&mut make_client).collect();
        (
            SocketCluster {
                faults,
                proxies,
                client: main_client,
                control,
                handles,
                num_sites,
                ep_base,
            },
            extra,
        )
    }

    /// The client handle for issuing operations.
    pub fn client(&mut self) -> &mut SocketClient {
        &mut self.client
    }

    /// Number of sites.
    pub fn num_sites(&self) -> usize {
        self.num_sites
    }

    /// The shared fault switchboard (loss, duplication, partitions).
    pub fn faults(&self) -> &Arc<FaultState> {
        &self.faults
    }

    fn set_down(&mut self, site: usize, down: bool) {
        let (ack_tx, ack_rx) = std::sync::mpsc::channel();
        let _ = self.control[site].send(Control::SetDown(down, ack_tx));
        // Synchronous: the site has crossed the boundary before we return.
        let _ = ack_rx.recv_timeout(Duration::from_secs(5));
        self.client.mark_down(site, down);
    }

    /// Temporary site failure: the site stops answering protocol messages
    /// (its disks keep their contents, its listener stays bound). Quiesce
    /// first unless you *want* an in-doubt parity update stranded.
    pub fn kill_site(&mut self, site: usize) {
        self.set_down(site, true);
    }

    /// Bring a killed site back in the **recovering** state; run
    /// [`SocketClient::recover`] to drain its spares and mark it up.
    pub fn revive_site(&mut self, site: usize) {
        self.set_down(site, false);
    }

    /// Process crash + restart of site `site`: its machine, timers and any
    /// uncommitted staged writes are dropped, then the site re-opens its
    /// durable store — replaying the committed WAL suffix and rebuilding
    /// the machine from the last snapshot (§3.4). Synchronous: returns
    /// once the site is serving again. Returns `false` (and changes
    /// nothing) when the cluster runs on memory-backed storage.
    pub fn kill_restart_site(&mut self, site: usize) -> bool {
        let (tx, rx) = std::sync::mpsc::channel();
        let _ = self.control[site].send(Control::KillRestart(tx));
        let restarted = rx.recv_timeout(Duration::from_secs(10)).unwrap_or(false);
        if restarted {
            self.client.mark_down(site, false);
        }
        restarted
    }

    /// Start dropping roughly `permille`/1000 of protocol frames at the
    /// proxies, silently. `0` turns loss off.
    pub fn set_loss(&self, permille: u16, seed: u64) {
        self.faults.set_loss(permille, seed);
    }

    /// Protocol frames dropped by loss injection so far.
    pub fn dropped_messages(&self) -> u64 {
        self.faults.dropped()
    }

    /// §5 partition: cut `site` off at every proxy (frames to and from it
    /// drop; its thread and listener keep running). The client treats it
    /// like a down site and takes the degraded paths.
    pub fn isolate_site(&mut self, site: usize) {
        self.faults.set_partitioned(self.ep_base + site, true);
        self.client.mark_down(site, true);
    }

    /// Heal a partition created by [`SocketCluster::isolate_site`]. The
    /// site immediately resumes retransmitting whatever parity updates it
    /// could not deliver while cut off; run [`SocketClient::recover`]
    /// afterwards to drain spares populated on its behalf.
    pub fn heal_site(&mut self, site: usize) {
        self.faults.set_partitioned(self.ep_base + site, false);
        self.client.mark_down(site, false);
    }

    /// How many writes at `site` still await their parity ack.
    pub fn pending_writes(&self, site: usize) -> usize {
        let (tx, rx) = std::sync::mpsc::channel();
        let _ = self.control[site].send(Control::QueryPending(tx));
        rx.recv_timeout(Duration::from_secs(5)).unwrap_or(0)
    }

    /// Whether every site machine reports
    /// [`all_acked`](radd_protocol::SiteMachine::all_acked).
    pub fn all_acked(&self) -> bool {
        (0..self.num_sites).all(|s| {
            let (tx, rx) = std::sync::mpsc::channel();
            let _ = self.control[s].send(Control::QueryAllAcked(tx));
            rx.recv_timeout(Duration::from_secs(5)).unwrap_or(false)
        })
    }

    /// Start (or stop) recording normalised effect traces on every site
    /// machine and the attached client.
    pub fn record_traces(&mut self, on: bool) {
        for s in 0..self.num_sites {
            let (tx, rx) = std::sync::mpsc::channel();
            let _ = self.control[s].send(Control::RecordTrace(on, tx));
            let _ = rx.recv_timeout(Duration::from_secs(5));
        }
        if on {
            self.client.record_trace();
        }
    }

    /// Collect the recorded traces: index 0 is the attached client, index
    /// `1 + j` is site `j` — the same peer numbering the DES interpreter
    /// and the threaded cluster use.
    pub fn take_traces(&mut self) -> Vec<Vec<radd_protocol::TraceEntry>> {
        let mut all = vec![self.client.take_trace()];
        for s in 0..self.num_sites {
            let (tx, rx) = std::sync::mpsc::channel();
            let _ = self.control[s].send(Control::TakeTrace(tx));
            all.push(rx.recv_timeout(Duration::from_secs(5)).unwrap_or_default());
        }
        all
    }

    /// Freeze the whole cluster's observability state: the attached
    /// client's metrics + flight recorder at index 0, then each site's at
    /// index `1 + j`. Served from the control drains, so a down site still
    /// answers.
    pub fn obs_snapshot(&mut self) -> radd_obs::ObsSnapshot {
        let mut machines = vec![self.client.obs_snapshot()];
        for s in 0..self.num_sites {
            let (tx, rx) = std::sync::mpsc::channel();
            let _ = self.control[s].send(Control::QueryObs(tx));
            machines
                .push(rx.recv_timeout(Duration::from_secs(5)).unwrap_or_else(|_| {
                    radd_obs::MachineObs::new().snapshot(&format!("site {s}"))
                }));
        }
        radd_obs::ObsSnapshot { machines }
    }

    /// Wait until no site holds an unacked parity update, polling for up
    /// to `timeout`. Partitioned sites cannot drain — heal them first.
    pub fn quiesce(&self, timeout: Duration) -> Result<(), String> {
        let deadline = Instant::now() + timeout;
        loop {
            let pending: Vec<(usize, usize)> = (0..self.num_sites)
                .map(|s| (s, self.pending_writes(s)))
                .filter(|&(_, n)| n > 0)
                .collect();
            if pending.is_empty() {
                return Ok(());
            }
            if Instant::now() >= deadline {
                return Err(format!(
                    "quiesce timed out; unacked parity updates remain: {pending:?}"
                ));
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// Stop every site thread and proxy and join them.
    pub fn shutdown(mut self) {
        for ctl in &self.control {
            let _ = ctl.send(Control::Shutdown);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        for p in &mut self.proxies {
            p.shutdown();
        }
    }
}

/// Drives a [`SocketCluster`] from a fault plan, tracking an oracle of
/// every acknowledged write — semantics identical to the threaded
/// driver's (see the module docs for the DES-only degradations).
pub struct SocketDriver {
    cluster: SocketCluster,
    block_size: usize,
    /// Logical content per `(site, index)` — every write the cluster
    /// acknowledged must read back exactly.
    oracle: HashMap<(usize, u64), Vec<u8>>,
    /// The one site currently failed or isolated (plans carry at most one
    /// failure at a time).
    impaired: Option<usize>,
    /// Whether a loss burst is active (suppresses invariant sweeps — they
    /// would pass anyway, but each dropped probe costs a retry timeout).
    lossy: bool,
    skipped_writes: u64,
}

impl SocketDriver {
    /// Spawn a fresh socket cluster sized for a plan shape.
    pub fn start(g: usize, rows: u64, block_size: usize) -> SocketDriver {
        SocketDriver {
            cluster: SocketCluster::start(g, rows, block_size),
            block_size,
            oracle: HashMap::new(),
            impaired: None,
            lossy: false,
            skipped_writes: 0,
        }
    }

    /// [`start`](SocketDriver::start) on durable storage: every site runs
    /// a WAL-backed `radd_storage::DiskBlocks` under `<dir>/site-<j>`, so
    /// plans containing [`FaultEvent::KillRestart`] actually crash the
    /// sites and recover them from disk.
    pub fn start_durable(
        g: usize,
        rows: u64,
        block_size: usize,
        dir: std::path::PathBuf,
    ) -> SocketDriver {
        let (cluster, _extra) = SocketCluster::start_durable(
            g,
            rows,
            block_size,
            1,
            CoalescePolicy::Merge,
            &StorageSpec::Disk { dir },
        );
        SocketDriver {
            cluster,
            block_size,
            oracle: HashMap::new(),
            impaired: None,
            lossy: false,
            skipped_writes: 0,
        }
    }

    /// The underlying cluster.
    pub fn cluster(&self) -> &SocketCluster {
        &self.cluster
    }

    /// Mutable access to the underlying cluster.
    pub fn cluster_mut(&mut self) -> &mut SocketCluster {
        &mut self.cluster
    }

    /// Writes skipped because the row's parity site was the failed site.
    pub fn skipped_writes(&self) -> u64 {
        self.skipped_writes
    }

    /// Acknowledged writes tracked by the oracle.
    pub fn oracle_len(&self) -> usize {
        self.oracle.len()
    }

    /// Stop the cluster threads.
    pub fn shutdown(self) {
        self.cluster.shutdown();
    }

    fn parity_site_of(&mut self, site: usize, index: u64) -> usize {
        let geo = self.cluster.client().geometry();
        let row = geo.data_to_physical(site, index);
        geo.parity_site(row)
    }
}

/// Protocol refusals a scenario makes legal (vs. broken guarantees).
fn is_refusal(e: &ClientError) -> bool {
    matches!(e, ClientError::MultipleFailure)
}

impl FaultDriver for SocketDriver {
    fn apply(&mut self, event: &FaultEvent) -> Result<(), String> {
        match *event {
            FaultEvent::Write { site, index, fill } => {
                let parity_site = self.parity_site_of(site, index);
                if self.impaired == Some(parity_site) {
                    self.skipped_writes += 1;
                    return Ok(());
                }
                let data = payload(fill, self.block_size);
                match self.cluster.client().write(site, index, &data) {
                    Ok(()) => {
                        self.oracle.insert((site, index), data);
                        Ok(())
                    }
                    Err(e) if is_refusal(&e) => Ok(()),
                    Err(e) => Err(format!("write(site {site}, index {index}): {e}")),
                }
            }
            FaultEvent::Read { site, index } => match self.cluster.client().read(site, index) {
                Ok(data) => match self.oracle.get(&(site, index)) {
                    Some(want) if *want != data => Err(format!(
                        "read(site {site}, index {index}) returned stale or \
                             corrupt data"
                    )),
                    _ => Ok(()),
                },
                Err(e) if is_refusal(&e) => Ok(()),
                Err(e) => Err(format!("read(site {site}, index {index}): {e}")),
            },
            // Disk failures are DES-only; the other §3.1 kinds quiesce
            // before killing — a site dying with an unacked parity update
            // is the §6 in-doubt problem.
            FaultEvent::Fail {
                kind: FailureKind::DiskFailure { .. },
                ..
            }
            | FaultEvent::ReplaceDisk { .. } => Ok(()),
            FaultEvent::Fail { site, .. } => {
                FaultDriver::quiesce(self)?;
                self.cluster.kill_site(site);
                self.impaired = Some(site);
                Ok(())
            }
            FaultEvent::RestoreSite { site } => {
                self.cluster.revive_site(site);
                // Stale until its spares are drained: keep the degraded
                // paths (which prefer the spare) until `Recover`.
                self.cluster.client().mark_down(site, true);
                Ok(())
            }
            FaultEvent::Recover { site } => match self.cluster.client().recover(site) {
                Ok(_) => {
                    self.cluster.client().mark_down(site, false);
                    self.impaired = None;
                    Ok(())
                }
                Err(e) => Err(format!("recovery of site {site}: {e}")),
            },
            FaultEvent::Isolate { site } => {
                FaultDriver::quiesce(self)?;
                self.cluster.isolate_site(site);
                self.impaired = Some(site);
                Ok(())
            }
            FaultEvent::Heal { site } => {
                self.cluster.heal_site(site);
                self.cluster.client().mark_down(site, true);
                Ok(())
            }
            FaultEvent::LossBurst { permille, seed } => {
                self.cluster.set_loss(permille, seed);
                self.lossy = true;
                Ok(())
            }
            FaultEvent::LossEnd => {
                self.cluster.set_loss(0, 0);
                self.lossy = false;
                Ok(())
            }
            FaultEvent::FlushParity => FaultDriver::quiesce(self),
            // §3.4 crash/restart: quiesce (same in-doubt rule as `Fail`),
            // then crash the site and let it recover from its WAL + block
            // file. Memory-backed clusters report `false` and change
            // nothing — a legitimate no-op.
            FaultEvent::KillRestart { site } => {
                FaultDriver::quiesce(self)?;
                self.cluster.kill_restart_site(site);
                Ok(())
            }
            // Checker-granularity events address the model checker's
            // explicit in-flight message vector; real TCP connections are
            // not event-addressable.
            FaultEvent::StepClient { .. }
            | FaultEvent::Deliver { .. }
            | FaultEvent::DropMsg { .. }
            | FaultEvent::DupMsg { .. }
            | FaultEvent::FireTimer { .. }
            | FaultEvent::EvictReplies { .. } => Ok(()),
        }
    }

    fn verify(&mut self) -> Result<bool, String> {
        // Mid-failure the stripe invariant cannot be swept (a site won't
        // answer); under loss it could be, but every dropped probe costs a
        // retry timeout, so sweeps wait for the burst to end.
        if self.impaired.is_some() || self.lossy {
            return Ok(false);
        }
        FaultDriver::quiesce(self)?;
        if !self.cluster.all_acked() {
            return Err("quiesced but a retransmission channel still holds unacked \
                 parity updates"
                .to_string());
        }
        self.cluster.client().verify_parity()?;
        let entries: Vec<((usize, u64), Vec<u8>)> =
            self.oracle.iter().map(|(&k, v)| (k, v.clone())).collect();
        for ((site, index), want) in entries {
            match self.cluster.client().read(site, index) {
                Ok(got) if got == want => {}
                Ok(_) => return Err(format!("oracle mismatch at site {site} index {index}")),
                Err(e) => {
                    return Err(format!(
                        "oracle read-back at site {site} index {index}: {e}"
                    ))
                }
            }
        }
        Ok(true)
    }

    fn quiesce(&mut self) -> Result<(), String> {
        self.cluster.quiesce(QUIESCE_TIMEOUT)
    }

    fn obs_snapshot(&mut self) -> Option<radd_obs::ObsSnapshot> {
        Some(self.cluster.obs_snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_kill_reconstruct_recover_round_trip() {
        let mut cluster = SocketCluster::start(4, 12, 64);
        let block = vec![7u8; 64];
        cluster.client().write(1, 0, &block).unwrap();

        cluster.kill_site(1); // the process stops answering
        let got = cluster.client().read(1, 0).unwrap(); // reconstructed
        assert_eq!(got, block);

        cluster.revive_site(1);
        cluster.client().recover(1).unwrap();
        assert_eq!(cluster.client().read(1, 0).unwrap(), block);
        cluster.quiesce(Duration::from_secs(5)).unwrap();
        assert!(cluster.all_acked());
        cluster.client().verify_parity().unwrap();
        cluster.shutdown();
    }

    #[test]
    fn loss_burst_converges_and_is_observable() {
        let mut cluster = SocketCluster::start(4, 12, 64);
        cluster.set_loss(200, 0xFEED);
        for i in 0..6 {
            let block = vec![i as u8 + 1; 64];
            cluster
                .client()
                .write((i % 4) as usize, (i / 4) as u64, &block)
                .unwrap();
        }
        cluster.set_loss(0, 0);
        cluster.quiesce(Duration::from_secs(10)).unwrap();
        assert!(cluster.all_acked());
        cluster.client().verify_parity().unwrap();
        let snap = cluster.obs_snapshot();
        assert_eq!(snap.machines.len(), 1 + cluster.num_sites());
        assert!(snap.machine("client").is_some());
        cluster.shutdown();
    }
}
