//! # radd-rt — the socket runtime for the sans-IO RADD core
//!
//! The third interpreter of the protocol machines. `radd-core` drives
//! [`radd_protocol::ClientMachine`]/[`radd_protocol::SiteMachine`] under a
//! deterministic discrete-event simulator; `radd-node` drives them over
//! in-process channels with real threads; this crate drives them over
//! **real TCP sockets** — one listener per site, a length-prefixed,
//! checksummed wire codec for the protocol vocabulary, reconnect with
//! backoff, and the same [`radd_net::RetryPolicy`] retransmission
//! schedules the threaded runtime uses. Because every runtime interprets
//! the same effect stream, the differential test can demand their
//! normalised traces match **byte for byte**.
//!
//! Layer map:
//!
//! * [`frame`] — the wire: `[len][checksum][payload]` frames over TCP,
//!   hardened against truncation, oversized prefixes and corruption; the
//!   payload vocabulary is `radd_protocol::codec`'s binary encoding plus a
//!   `Hello` handshake and a small admin control protocol.
//! * [`net`] — [`net::SocketEndpoint`]: connection management (dial on
//!   demand, Hello attribution, reconnect with backoff), one reader thread
//!   per connection feeding a single inbox.
//! * [`server`] / [`client`] — the site event loop and the client library,
//!   ported move-for-move from `radd-node` (any behavioural divergence is
//!   a differential-trace failure).
//! * [`proxy`] — [`proxy::FaultProxy`]: a frame-aware TCP relay that
//!   drops, partitions and duplicates *protocol* frames under a shared
//!   [`proxy::FaultState`], so fault plans run against real connections.
//! * [`cluster`] — [`cluster::SocketCluster`], a loopback harness with the
//!   `NodeCluster` control surface, and [`cluster::SocketDriver`], its
//!   [`radd_workload::faults::FaultDriver`] adapter.
//! * [`config`] — the static site-map format the standalone binaries
//!   (`radd-server`, `radd-client`, `radd-cli`) deploy from.
//!
//! ```
//! use radd_rt::SocketCluster;
//!
//! let mut cluster = SocketCluster::start(4, 12, 64); // G = 4, 12 rows, 64-B blocks
//! let block = vec![7u8; 64];
//! cluster.client().write(1, 0, &block).unwrap();
//! cluster.kill_site(1);
//! assert_eq!(cluster.client().read(1, 0).unwrap(), block); // reconstructed
//! cluster.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admin;
pub mod client;
pub mod cluster;
pub mod config;
pub mod frame;
pub mod net;
pub mod proxy;
pub mod server;

pub use admin::CtlClient;
pub use client::{ClientError, SocketClient};
pub use cluster::{SocketCluster, SocketDriver};
pub use config::{ClusterConfig, StorageKind};
pub use frame::{CtlRep, CtlReq, Frame, FrameDecoder, FrameError};
pub use net::{Inbound, SendOutcome, SocketEndpoint};
pub use proxy::{FaultProxy, FaultState};
pub use server::{Control, SiteConfig};
