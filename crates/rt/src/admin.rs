//! Wire control-plane client: what `radd-cli` speaks to a running
//! `radd-server`.
//!
//! The site event loop answers [`CtlReq`] frames from its normal inbox —
//! even while marked down (a down site is deaf to the protocol, not to
//! its operator). This client dials a site's *real* address (control
//! traffic does not traverse fault proxies), issues one request at a
//! time, and matches replies by request id.

use crate::frame::{read_frame, CtlRep, CtlReq, Frame, FrameDecoder};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// How long one control round-trip may take before it is declared lost.
const CTL_TIMEOUT: Duration = Duration::from_secs(5);

/// A control connection to one site.
pub struct CtlClient {
    stream: TcpStream,
    dec: FrameDecoder,
    next_rid: u64,
}

impl CtlClient {
    /// Dial the site at `addr`.
    pub fn connect(addr: SocketAddr) -> Result<CtlClient, String> {
        let stream = TcpStream::connect_timeout(&addr, CTL_TIMEOUT)
            .map_err(|e| format!("dialing {addr}: {e}"))?;
        let _ = stream.set_nodelay(true);
        stream
            .set_read_timeout(Some(CTL_TIMEOUT))
            .map_err(|e| format!("configuring {addr}: {e}"))?;
        Ok(CtlClient {
            stream,
            dec: FrameDecoder::new(),
            next_rid: 1,
        })
    }

    /// One request/reply round-trip. Stray frames (protocol messages, a
    /// reply to an abandoned request) are skipped; a reply to *this*
    /// request is returned.
    pub fn request(&mut self, req: CtlReq) -> Result<CtlRep, String> {
        let rid = self.next_rid;
        self.next_rid += 1;
        let frame = Frame::CtlReq { rid, req };
        crate::frame::write_frame(&mut self.stream, &frame)
            .map_err(|e| format!("control send failed: {e}"))?;
        let mut scratch = [0u8; 64 * 1024];
        loop {
            match read_frame(&mut self.stream, &mut self.dec, &mut scratch) {
                Ok(Some(Frame::CtlRep { rid: got, rep })) if got == rid => return Ok(rep),
                Ok(Some(_)) => {} // stray frame: skip
                Ok(None) => return Err("site closed the control connection".into()),
                Err(e) => return Err(format!("control receive failed: {e}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::SocketEndpoint;
    use crate::server::{run_site, SiteConfig};
    use radd_protocol::CoalescePolicy;
    use std::net::TcpListener;

    /// Spin up one standalone site (no proxies, no cluster harness) and
    /// administer it purely over the wire.
    #[test]
    fn wire_control_pings_downs_and_shuts_down_a_site() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let ep = SocketEndpoint::site(1, 1, vec![addr], listener);
        // Keep the mpsc control sender alive: dropping it stops the loop.
        let (_ctl_tx, ctl_rx) = std::sync::mpsc::channel();
        let cfg = SiteConfig {
            site: 0,
            group_size: 1,
            rows: 4,
            block_size: 64,
            ep_base: 1,
            coalesce: CoalescePolicy::Merge,
            storage: radd_storage::StorageSpec::Mem,
        };
        let handle = std::thread::spawn(move || run_site(cfg, &ep, &ctl_rx));

        let mut ctl = CtlClient::connect(addr).unwrap();
        assert_eq!(
            ctl.request(CtlReq::Ping).unwrap(),
            CtlRep::Pong { down: false }
        );
        assert_eq!(
            ctl.request(CtlReq::QueryPending).unwrap(),
            CtlRep::Pending(0)
        );
        assert_eq!(
            ctl.request(CtlReq::QueryAllAcked).unwrap(),
            CtlRep::AllAcked(true)
        );

        // Mark it down over the wire; control keeps answering.
        assert_eq!(ctl.request(CtlReq::SetDown(true)).unwrap(), CtlRep::Done);
        assert_eq!(
            ctl.request(CtlReq::Ping).unwrap(),
            CtlRep::Pong { down: true }
        );

        // Obs crosses the wire as JSON with the site's machine name.
        let CtlRep::ObsJson(json) = ctl.request(CtlReq::QueryObsJson).unwrap() else {
            panic!("expected an obs snapshot");
        };
        assert!(json.contains("\"site 0\""));

        assert_eq!(ctl.request(CtlReq::Shutdown).unwrap(), CtlRep::Done);
        handle.join().unwrap();
    }
}
