//! The per-site server thread for the socket runtime.
//!
//! Protocol behaviour is untouched from the threaded runtime: all of it —
//! W1–W4 deferred acks, the parity UID idempotence guard, stop-and-wait
//! per-row retransmission, spare slots, the at-most-once reply cache —
//! lives in [`radd_protocol::SiteMachine`], and the loop here mirrors
//! `radd_node::site::run_site` move for move (drain control, fire due
//! timers, feed one inbound message). What changes is the substrate: the
//! endpoint is a real [`SocketEndpoint`], and a second, *wire* control
//! plane answers [`CtlReq`] frames from `radd-cli` so a standalone
//! `radd-server` process can be inspected and administered remotely.
//!
//! Both control planes answer even while the site is marked down — a down
//! site is deaf to the protocol, not to its operator.

use crate::frame::{CtlRep, CtlReq, Frame};
use crate::net::{Inbound, SocketEndpoint};
use radd_net::RetryPolicy;
use radd_obs::{MachineObs, MachineSnapshot, ObsSnapshot};
use radd_protocol::{
    trace, CoalescePolicy, Dest, DurableSiteState, Effect, IoPurpose, SiteMachine, TraceEntry,
};
use radd_storage::{SiteStore, StorageSpec};
use std::collections::BTreeMap;
use std::sync::mpsc::Receiver;
use std::time::{Duration, Instant};

/// Retransmission schedule for unacked parity updates — the shared policy,
/// so the threaded and socket runtimes stay tuned together.
const RETRANSMIT: RetryPolicy = RetryPolicy::SITE_RETRANSMIT;

/// Control-plane commands (out of band, from an in-process harness). The
/// vocabulary matches `radd_node::site::Control` so the cluster harnesses
/// stay interchangeable; standalone processes speak [`CtlReq`] over the
/// wire instead.
#[derive(Debug)]
pub enum Control {
    /// Mark the site down (refuse protocol messages) or back up. The ack
    /// channel makes the transition synchronous: the harness knows the
    /// site has crossed the boundary before it issues further traffic.
    SetDown(bool, std::sync::mpsc::Sender<()>),
    /// Report how many writes are still waiting for a parity ack.
    QueryPending(std::sync::mpsc::Sender<usize>),
    /// Report whether no request of this site is awaiting an ack
    /// ([`SiteMachine::all_acked`]).
    QueryAllAcked(std::sync::mpsc::Sender<bool>),
    /// Start (`true`) or stop recording the site's normalised effect trace
    /// (for differential tests against the DES and threaded interpreters).
    RecordTrace(bool, std::sync::mpsc::Sender<()>),
    /// Hand over the recorded trace, clearing the buffer.
    TakeTrace(std::sync::mpsc::Sender<Vec<TraceEntry>>),
    /// Freeze and hand over the site's metrics + flight-recorder snapshot.
    QueryObs(std::sync::mpsc::Sender<MachineSnapshot>),
    /// Process crash + restart: drop the machine, the store, and every
    /// timer, then re-open from the site's durable storage. Replies `true`
    /// when the site actually restarted from disk; a memory-backed site
    /// replies `false` and keeps its state.
    KillRestart(std::sync::mpsc::Sender<bool>),
    /// Stop the thread.
    Shutdown,
}

/// Static site parameters (the socket twin of `radd_node`'s `SiteConfig`).
#[derive(Debug, Clone)]
pub struct SiteConfig {
    /// This site's id (0-based).
    pub site: usize,
    /// Group size `G`.
    pub group_size: usize,
    /// Block rows.
    pub rows: u64,
    /// Block size in bytes.
    pub block_size: usize,
    /// Endpoint id of site 0 (clients occupy the endpoints below it).
    pub ep_base: usize,
    /// Parity-update coalescing policy. Differential harnesses pass
    /// [`CoalescePolicy::Off`] to stay message-for-message identical to
    /// the DES interpreter; deployments default to `Merge`.
    pub coalesce: CoalescePolicy,
    /// Storage backend: volatile memory (default) or a durable
    /// [`radd_storage::DiskBlocks`] directory that survives
    /// [`Control::KillRestart`] — and, for a standalone `radd-server`
    /// process, a plain `kill -9` + restart.
    pub storage: StorageSpec,
}

struct SiteDriver {
    cfg: SiteConfig,
    machine: SiteMachine,
    store: SiteStore,
    down: bool,
    /// Retransmit deadlines by outstanding tag.
    timers: BTreeMap<u64, Instant>,
    trace: Option<Vec<TraceEntry>>,
    /// Always-on metrics + flight recorder, tapped off the effect stream.
    obs: MachineObs,
}

impl SiteDriver {
    fn interpret(&mut self, ep: &SocketEndpoint, out: Vec<Effect>) {
        let now = Instant::now();
        for eff in out {
            if let Some(buf) = &mut self.trace {
                if let Some(e) = trace(&eff) {
                    buf.push(e);
                }
            }
            self.obs.effect(&eff);
            match eff {
                Effect::Send { to, msg, .. } => {
                    let dst = match to {
                        Dest::Site(s) => self.cfg.ep_base + s,
                        Dest::Peer(p) => p,
                    };
                    let _ = ep.send(dst, &msg);
                }
                Effect::SetTimer { tag, step } => {
                    self.timers.insert(tag, now + RETRANSMIT.delay(step));
                }
                Effect::ClearTimer { tag } => {
                    self.timers.remove(&tag);
                }
                // The machine already performed the I/O on the store; the
                // receipts matter only to cost-accounting drivers.
                Effect::Read { .. } | Effect::Write { .. } | Effect::DeferAck { .. } => {}
                // Disk-fault escalations cannot happen here: the store
                // never faults in-range and this runtime injects no disk
                // failures.
                Effect::NeedParityRebuild { .. } | Effect::ParityUnservable { .. } => {
                    debug_assert!(false, "disk-fault escalation in a faultless runtime");
                }
            }
        }
    }

    /// Fire every retransmit timer whose deadline has passed. The resend
    /// may vanish in the fault proxy or a dead connection; the timer
    /// re-arms on the policy schedule, so convergence only needs loss to
    /// stay below certainty and partitions to eventually heal.
    fn fire_due_timers(&mut self, ep: &SocketEndpoint) {
        let now = Instant::now();
        let due: Vec<u64> = self
            .timers
            .iter()
            .filter(|&(_, &at)| at <= now)
            .map(|(&tag, _)| tag)
            .collect();
        for tag in due {
            self.timers.remove(&tag);
            let mut out = Vec::new();
            self.machine.on_timer(tag, &mut out);
            self.interpret(ep, out);
        }
    }

    /// Snapshot this site's obs state under its canonical machine name.
    fn obs_snapshot(&mut self) -> MachineSnapshot {
        let merges = self.machine.coalesced_merges();
        self.obs.metrics().set_coalesced_merges(merges);
        self.obs.snapshot(&format!("site {}", self.cfg.site))
    }

    /// Answer one wire control request. Returns `true` when the request
    /// asked the server to shut down.
    fn serve_ctl(&mut self, rid: u64, req: &CtlReq, reply: &crate::net::WriteHalf) -> bool {
        let (rep, stop) = match *req {
            CtlReq::Ping => (CtlRep::Pong { down: self.down }, false),
            CtlReq::QueryPending => (CtlRep::Pending(self.machine.pending_writes() as u64), false),
            CtlReq::QueryAllAcked => (CtlRep::AllAcked(self.machine.all_acked()), false),
            CtlReq::SetDown(d) => {
                self.down = d;
                (CtlRep::Done, false)
            }
            CtlReq::QueryObsJson => {
                let snap = ObsSnapshot {
                    machines: vec![self.obs_snapshot()],
                };
                (CtlRep::ObsJson(snap.to_json()), false)
            }
            CtlReq::Shutdown => (CtlRep::Done, true),
        };
        let _ = reply.write(&Frame::CtlRep { rid, rep });
        stop
    }
}

/// Open (or re-open) the site's storage and rebuild the machine from its
/// durable snapshot, if one exists. Rows replayed from the WAL surface to
/// `obs` as [`IoPurpose::LogReplay`] read receipts — the §3.4 recovery
/// work a restart performed.
fn open_store(cfg: &SiteConfig, obs: &mut MachineObs) -> (SiteStore, SiteMachine) {
    let store = cfg
        .storage
        .for_site(cfg.site)
        .open(cfg.rows, cfg.block_size)
        .unwrap_or_else(|e| panic!("site {}: cannot open durable store: {e}", cfg.site));
    let machine = match store.meta().map(DurableSiteState::decode) {
        Some(Ok(d)) => SiteMachine::restore_durable(&d),
        Some(Err(e)) => panic!("site {}: corrupt durable snapshot: {e}", cfg.site),
        None => SiteMachine::new(cfg.site, cfg.group_size, cfg.rows, cfg.block_size),
    };
    for row in store.replayed_rows() {
        obs.effect(&Effect::Read {
            row: *row,
            purpose: IoPurpose::LogReplay,
        });
    }
    (store, machine)
}

/// Run the site event loop until shutdown (by [`Control::Shutdown`], a
/// wire [`CtlReq::Shutdown`], or the control channel disconnecting).
pub fn run_site(cfg: SiteConfig, ep: &SocketEndpoint, control: &Receiver<Control>) {
    let mut obs = MachineObs::new();
    let (store, mut machine) = open_store(&cfg, &mut obs);
    machine.set_coalesce(cfg.coalesce);
    let mut st = SiteDriver {
        machine,
        store,
        down: false,
        timers: BTreeMap::new(),
        trace: None,
        obs,
        cfg,
    };
    loop {
        // Drain the whole control backlog first (non-blocking), then serve
        // protocol traffic.
        loop {
            match control.try_recv() {
                Ok(Control::SetDown(d, ack)) => {
                    st.down = d;
                    let _ = ack.send(());
                }
                Ok(Control::QueryPending(reply)) => {
                    let _ = reply.send(st.machine.pending_writes());
                }
                Ok(Control::QueryAllAcked(reply)) => {
                    let _ = reply.send(st.machine.all_acked());
                }
                Ok(Control::RecordTrace(on, ack)) => {
                    st.trace = if on { Some(Vec::new()) } else { None };
                    let _ = ack.send(());
                }
                Ok(Control::TakeTrace(reply)) => {
                    let buf = st.trace.replace(Vec::new()).unwrap_or_default();
                    let _ = reply.send(buf);
                }
                Ok(Control::QueryObs(reply)) => {
                    let snap = st.obs_snapshot();
                    let _ = reply.send(snap);
                }
                Ok(Control::KillRestart(reply)) => {
                    if st.store.is_durable() {
                        // Crash: the machine, the timer wheel and any
                        // uncommitted staged writes die. Restart: re-open
                        // from disk, replaying the committed WAL suffix
                        // and rebuilding the machine from the last
                        // durable snapshot (§3.4).
                        st.timers.clear();
                        let (store, mut machine) = open_store(&st.cfg, &mut st.obs);
                        machine.set_coalesce(st.cfg.coalesce);
                        st.store = store;
                        st.machine = machine;
                        st.down = false;
                        let _ = reply.send(true);
                    } else {
                        let _ = reply.send(false);
                    }
                }
                Ok(Control::Shutdown) => return,
                Err(std::sync::mpsc::TryRecvError::Disconnected) => return,
                Err(std::sync::mpsc::TryRecvError::Empty) => break,
            }
        }
        if !st.down {
            st.fire_due_timers(ep);
        }
        let Ok(inbound) = ep.recv_timeout(Duration::from_millis(20)) else {
            continue;
        };
        match inbound {
            // Wire control is served even while down — a down site is deaf
            // to the protocol, not to its operator.
            Inbound::Ctl { rid, req, reply } => {
                if st.serve_ctl(rid, &req, &reply) {
                    return;
                }
            }
            Inbound::Proto { src, msg } => {
                // A down site answers nothing, and its own pending acks
                // never arrive either — exactly a crashed process from the
                // network's point of view.
                if st.down {
                    continue;
                }
                let mut out = Vec::new();
                st.machine.handle(&mut st.store, src, msg, &mut out);
                // WAL rule: group-commit what the message staged *before*
                // interpreting the effects — no ack may leave the process
                // ahead of the log record that justifies it. A
                // memory-backed store makes this a no-op.
                if let Err(e) = st.store.commit(|| st.machine.durable_snapshot().encode()) {
                    panic!("site {}: durable commit failed: {e}", st.cfg.site);
                }
                st.interpret(ep, out);
            }
        }
    }
}
