//! Fault-injecting TCP relay: [`FaultPlan`]-style loss, partition and
//! duplication on *real* connections.
//!
//! [`FaultProxy`] fronts exactly one site: the site map handed to every
//! endpoint points at the proxies, so each protocol frame traverses
//! exactly one proxy — the destination site's — and is therefore subject
//! to at most one fault decision, just as each send in the threaded
//! runtime consults [`radd_net::ThreadedNet`]'s loss state exactly once.
//! (Replies ride the same connection back through the same proxy; frames
//! between two sites traverse the callee's proxy only, because the
//! caller's own listener is not on the path.)
//!
//! The proxy is *frame-aware*: it decodes the length-prefixed stream and
//! drops or duplicates whole frames, never bytes, so injected faults model
//! message loss without ever corrupting the framing of survivors. Only
//! protocol frames (`Frame::Proto`) are eligible — `Hello` handshakes and
//! control traffic pass untouched, mirroring the threaded runtime where
//! harness control is out of band.
//!
//! Endpoint attribution: a dialing endpoint announces itself with a
//! leading [`Frame::Hello`](crate::frame::Frame::Hello); the forward pump
//! snoops it and shares the id
//! with the reverse pump, so both directions can evaluate partitions
//! keyed by endpoint id (`drop` when either end is partitioned — the same
//! rule as `ThreadedNet::set_partitioned`).
//!
//! [`FaultPlan`]: radd_workload::FaultPlan

use crate::frame::{payload_hello_id, payload_is_proto, write_frame_payload, FrameDecoder};
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Salt separating the duplication decision stream from the loss stream:
/// both hash the same global counter, but a frame's dup verdict must not
/// be a deterministic function of its loss verdict.
const DUP_SALT: u64 = 0x00D0_00D0_00D0_00D0;

/// Shared fault switchboard for every proxy in a cluster — the socket
/// counterpart of `ThreadedNet`'s control plane.
pub struct FaultState {
    /// Loss probability per protocol frame, in 1/1000 units (0 = off).
    loss_permille: AtomicU64,
    /// Duplication probability per surviving frame, in 1/1000 units.
    dup_permille: AtomicU64,
    seed: AtomicU64,
    /// One global decision counter across all proxies, so a `(seed,
    /// permille)` pair drops a reproducible *fraction* of cluster traffic
    /// (the exact victims depend on interleaving — the reliable layers
    /// must converge for any loss pattern below certainty).
    counter: AtomicU64,
    dropped: AtomicU64,
    duplicated: AtomicU64,
    /// Partition flags by endpoint id; a frame drops when either end is
    /// partitioned.
    partitioned: Mutex<Vec<bool>>,
}

impl FaultState {
    /// A fault-free switchboard for a cluster of `endpoints` ids.
    pub fn new(endpoints: usize) -> Arc<FaultState> {
        Arc::new(FaultState {
            loss_permille: AtomicU64::new(0),
            dup_permille: AtomicU64::new(0),
            seed: AtomicU64::new(0),
            counter: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            duplicated: AtomicU64::new(0),
            partitioned: Mutex::new(vec![false; endpoints]),
        })
    }

    /// Start dropping roughly `permille`/1000 of protocol frames, seeded.
    /// Loss is *silent*: the sender's write succeeds, the frame never
    /// arrives — what timer-based retransmission must absorb.
    pub fn set_loss(&self, permille: u16, seed: u64) {
        assert!(
            permille < 1000,
            "loss probability must stay below certainty"
        );
        self.seed.store(seed, Ordering::Relaxed);
        self.loss_permille
            .store(u64::from(permille), Ordering::Relaxed);
    }

    /// Start duplicating roughly `permille`/1000 of surviving protocol
    /// frames — a stale retransmission arriving after the original, which
    /// the receiving machines must treat idempotently.
    pub fn set_duplication(&self, permille: u16, seed: u64) {
        assert!(permille < 1000, "duplicating every frame would livelock");
        self.seed.store(seed, Ordering::Relaxed);
        self.dup_permille
            .store(u64::from(permille), Ordering::Relaxed);
    }

    /// Cut endpoint `ep` off (frames to or from it drop at the proxy).
    pub fn set_partitioned(&self, ep: usize, partitioned: bool) {
        // Poison-tolerant: the vector is only ever resized/flag-flipped
        // under the lock, so a panicking holder cannot corrupt it.
        let mut p = self
            .partitioned
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if ep >= p.len() {
            p.resize(ep + 1, false);
        }
        p[ep] = partitioned;
    }

    /// Protocol frames dropped by loss injection so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Protocol frames duplicated so far.
    pub fn duplicated(&self) -> u64 {
        self.duplicated.load(Ordering::Relaxed)
    }

    fn is_partitioned(&self, ep: Option<usize>) -> bool {
        let Some(ep) = ep else { return false };
        self.partitioned
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(ep)
            .copied()
            .unwrap_or(false)
    }

    /// Verdict for one protocol frame from `src` to `dst` (`None` = not
    /// yet attributed): forward, drop, or forward twice.
    fn verdict(&self, src: Option<usize>, dst: Option<usize>) -> Verdict {
        if self.is_partitioned(src) || self.is_partitioned(dst) {
            return Verdict::Drop;
        }
        let loss = self.loss_permille.load(Ordering::Relaxed);
        let dup = self.dup_permille.load(Ordering::Relaxed);
        if loss == 0 && dup == 0 {
            return Verdict::Forward;
        }
        let seed = self.seed.load(Ordering::Relaxed);
        let n = self.counter.fetch_add(1, Ordering::Relaxed);
        if loss > 0 && splitmix64(seed ^ n) % 1000 < loss {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return Verdict::Drop;
        }
        if dup > 0 && splitmix64(seed ^ DUP_SALT ^ n) % 1000 < dup {
            self.duplicated.fetch_add(1, Ordering::Relaxed);
            return Verdict::Duplicate;
        }
        Verdict::Forward
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Verdict {
    Forward,
    Drop,
    Duplicate,
}

/// A fault-injecting relay fronting one site's listener.
pub struct FaultProxy {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl FaultProxy {
    /// Relay `127.0.0.1:0 → target`, attributing the far side of every
    /// connection to endpoint `site_ep` (the fronted site). Returns the
    /// proxy, whose [`addr`](FaultProxy::addr) goes into the site maps.
    pub fn spawn(target: SocketAddr, site_ep: usize, state: Arc<FaultState>) -> FaultProxy {
        let listener = TcpListener::bind("127.0.0.1:0").expect("proxy bind");
        let addr = listener.local_addr().expect("proxy addr");
        listener.set_nonblocking(true).expect("proxy nonblocking");
        let shutdown = Arc::new(AtomicBool::new(false));
        let accept_thread = {
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || {
                while !shutdown.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((inbound, _)) => {
                            relay(inbound, target, site_ep, Arc::clone(&state), &shutdown);
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => break,
                    }
                }
            })
        };
        FaultProxy {
            addr,
            shutdown,
            accept_thread: Some(accept_thread),
        }
    }

    /// The address endpoints should dial instead of the real site.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and wind down the pumps.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Wire one relayed connection: dial the real site and start a pump per
/// direction. The two pumps share the dialer's snooped endpoint id.
fn relay(
    inbound: TcpStream,
    target: SocketAddr,
    site_ep: usize,
    state: Arc<FaultState>,
    shutdown: &Arc<AtomicBool>,
) {
    let Ok(outbound) = TcpStream::connect_timeout(&target, Duration::from_millis(500)) else {
        return; // dialer sees a dead connection; its backoff handles it
    };
    let _ = inbound.set_nodelay(true);
    let _ = outbound.set_nodelay(true);
    // The dialing endpoint's id, learned from its leading Hello. `u64::MAX`
    // = not yet attributed.
    let peer = Arc::new(AtomicU64::new(u64::MAX));
    let (Ok(in_clone), Ok(out_clone)) = (inbound.try_clone(), outbound.try_clone()) else {
        return;
    };
    {
        let state = Arc::clone(&state);
        let peer = Arc::clone(&peer);
        let shutdown = Arc::clone(shutdown);
        std::thread::spawn(move || {
            pump(
                inbound,
                out_clone,
                &state,
                &peer,
                Direction::ToSite { site_ep },
                &shutdown,
            );
        });
    }
    let shutdown = Arc::clone(shutdown);
    std::thread::spawn(move || {
        pump(
            outbound,
            in_clone,
            &state,
            &peer,
            Direction::FromSite { site_ep },
            &shutdown,
        );
    });
}

#[derive(Debug, Clone, Copy)]
enum Direction {
    /// Dialer → fronted site: src is the snooped peer, dst the site.
    ToSite {
        /// The fronted site's endpoint id.
        site_ep: usize,
    },
    /// Fronted site → dialer (replies on the same connection).
    FromSite {
        /// The fronted site's endpoint id.
        site_ep: usize,
    },
}

/// Relay whole frames from `rd` to `wr`, snooping Hello frames for
/// attribution and applying the fault verdict to protocol frames only.
fn pump(
    rd: TcpStream,
    mut wr: TcpStream,
    state: &FaultState,
    peer: &AtomicU64,
    dir: Direction,
    shutdown: &AtomicBool,
) {
    let _ = rd.set_read_timeout(Some(Duration::from_millis(50)));
    let mut rd = rd;
    let mut dec = FrameDecoder::new();
    let mut scratch = [0u8; 64 * 1024];
    loop {
        if shutdown.load(Ordering::Relaxed) {
            return;
        }
        loop {
            let payload = match dec.next_payload() {
                Ok(Some(p)) => p,
                Ok(None) => break,
                Err(_) => return, // framing lost: kill the relay leg
            };
            if let Some(id) = payload_hello_id(&payload) {
                peer.store(id, Ordering::Relaxed);
            }
            let verdict = if payload_is_proto(&payload) {
                let snooped = match peer.load(Ordering::Relaxed) {
                    u64::MAX => None,
                    id => Some(id as usize),
                };
                let (src, dst) = match dir {
                    Direction::ToSite { site_ep } => (snooped, Some(site_ep)),
                    Direction::FromSite { site_ep } => (Some(site_ep), snooped),
                };
                state.verdict(src, dst)
            } else {
                Verdict::Forward
            };
            match verdict {
                Verdict::Drop => continue,
                Verdict::Forward => {
                    if write_frame_payload(&mut wr, &payload).is_err() {
                        return;
                    }
                }
                Verdict::Duplicate => {
                    if write_frame_payload(&mut wr, &payload).is_err()
                        || write_frame_payload(&mut wr, &payload).is_err()
                    {
                        return;
                    }
                }
            }
        }
        match rd.read(&mut scratch) {
            Ok(0) => return,
            Ok(n) => dec.feed(&scratch[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::{Inbound, SocketEndpoint};
    use radd_protocol::wire::Msg;

    /// A site endpoint fronted by a proxy; the client's site map points at
    /// the proxy.
    fn proxied_pair(state: &Arc<FaultState>) -> (SocketEndpoint, SocketEndpoint, FaultProxy) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let real = listener.local_addr().unwrap();
        let proxy = FaultProxy::spawn(real, 1, Arc::clone(state));
        let site = SocketEndpoint::site(1, 1, vec![proxy.addr()], listener);
        let client = SocketEndpoint::client(0, 1, vec![proxy.addr()]);
        (client, site, proxy)
    }

    fn recv_proto(ep: &SocketEndpoint, wait_ms: u64) -> Option<(usize, Msg)> {
        match ep.recv_timeout(Duration::from_millis(wait_ms)) {
            Ok(Inbound::Proto { src, msg }) => Some((src, msg)),
            _ => None,
        }
    }

    #[test]
    fn fault_free_proxy_is_transparent_both_ways() {
        let state = FaultState::new(2);
        let (client, site, _proxy) = proxied_pair(&state);
        client.send(1, &Msg::Read { index: 3, tag: 7 });
        let (src, msg) = recv_proto(&site, 2000).expect("request crosses the proxy");
        assert_eq!((src, msg), (0, Msg::Read { index: 3, tag: 7 }));
        site.send(0, &Msg::WriteOk { tag: 7 });
        let (src, msg) = recv_proto(&client, 2000).expect("reply crosses back");
        assert_eq!((src, msg), (1, Msg::WriteOk { tag: 7 }));
    }

    #[test]
    fn total_loss_silences_protocol_frames_but_counts_them() {
        let state = FaultState::new(2);
        let (client, site, _proxy) = proxied_pair(&state);
        state.set_loss(999, 0xBEEF);
        for tag in 0..20 {
            client.send(1, &Msg::Ack { tag });
        }
        // 99.9% loss: expect silence (a stray survivor is possible but
        // vanishingly unlikely across 20 frames; tolerate a couple).
        let mut got = 0;
        while recv_proto(&site, 200).is_some() {
            got += 1;
        }
        assert!(got <= 2, "{got} frames survived 999-permille loss");
        assert!(state.dropped() >= 18);
    }

    #[test]
    fn partition_cuts_an_endpoint_and_heals() {
        let state = FaultState::new(2);
        let (client, site, _proxy) = proxied_pair(&state);
        // Establish attribution first: the Hello must be snooped before
        // reverse-direction partitions can be evaluated against ep 0.
        client.send(1, &Msg::Ack { tag: 1 });
        assert!(recv_proto(&site, 2000).is_some());
        state.set_partitioned(0, true);
        client.send(1, &Msg::Ack { tag: 2 });
        assert!(
            recv_proto(&site, 300).is_none(),
            "frame crossed a partition"
        );
        state.set_partitioned(0, false);
        client.send(1, &Msg::Ack { tag: 3 });
        let (_, msg) = recv_proto(&site, 2000).expect("healed partition delivers");
        assert_eq!(msg, Msg::Ack { tag: 3 });
    }

    #[test]
    fn duplication_delivers_the_same_frame_twice() {
        let state = FaultState::new(2);
        let (client, site, _proxy) = proxied_pair(&state);
        state.set_duplication(999, 0xD00D);
        client.send(1, &Msg::Ack { tag: 9 });
        let first = recv_proto(&site, 2000).expect("original arrives");
        let second = recv_proto(&site, 2000).expect("duplicate arrives");
        assert_eq!(first, second);
        assert!(state.duplicated() >= 1);
    }
}
