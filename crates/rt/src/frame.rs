//! TCP framing: length prefix, checksum, and the frame vocabulary.
//!
//! A TCP stream is bytes with no boundaries, so every logical message rides
//! in a frame:
//!
//! ```text
//! [len: u32 LE] [check: u64 LE] [payload: len bytes]
//! ```
//!
//! `len` counts the payload only; `check` is the `FxHash64` of the payload
//! (the same multiply-rotate hash the protocol machines use for their
//! bookkeeping maps — these are sanity checksums against framing bugs and
//! truncated writes, not cryptographic integrity). The payload's first byte
//! is a frame type:
//!
//! * `0` — [`Frame::Hello`]: the dialer announces its endpoint id, once,
//!   immediately after connecting. Everything either side needs to route
//!   replies follows from it.
//! * `1` — [`Frame::Proto`]: one protocol [`Msg`], encoded with
//!   [`radd_protocol::codec`]. The only frame type subject to fault
//!   injection (see [`crate::proxy`]).
//! * `2`/`3` — [`Frame::CtlReq`]/[`Frame::CtlRep`]: the out-of-band control
//!   plane (`radd-cli` status/obs queries, administrative down/up), paired
//!   by a request id. Control frames bypass fault injection the same way
//!   the threaded runtime's control mpsc bypasses its lossy channels.
//!
//! [`FrameDecoder`] is incremental and hardened: bytes arrive in whatever
//! splits and coalescings the kernel chooses, length prefixes are validated
//! against [`MAX_FRAME`] *before* any buffer grows, and corrupt checksums
//! or unknown frame types are clean errors, never panics.

use bytes::Bytes;
use radd_protocol::codec::{decode_msg, encode_msg, CodecError};
use radd_protocol::fasthash::FxHasher;
use radd_protocol::Msg;
use std::fmt;
use std::hash::Hasher;
use std::io::{Read, Write};

/// Hard ceiling on a frame's payload. Generous next to real traffic (the
/// largest message is a block plus headers) while keeping a corrupt or
/// hostile length prefix from ballooning the receive buffer.
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// Bytes of frame header (`len` + `check`).
pub const FRAME_HEADER: usize = 4 + 8;

const FT_HELLO: u8 = 0;
const FT_PROTO: u8 = 1;
const FT_CTL_REQ: u8 = 2;
const FT_CTL_REP: u8 = 3;

/// `FxHash64` of a payload — the frame checksum.
pub fn checksum(payload: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(payload);
    h.finish()
}

/// Why a byte stream failed to frame or a payload failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// A length prefix exceeds [`MAX_FRAME`] — corrupt stream or attack.
    Oversized {
        /// The claimed payload length.
        claimed: u64,
    },
    /// The payload does not hash to the frame's checksum.
    BadChecksum,
    /// Empty payload, unknown frame-type byte, or a malformed body.
    Malformed(&'static str),
    /// The embedded protocol message failed to decode.
    Codec(CodecError),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Oversized { claimed } => {
                write!(f, "frame claims {claimed} bytes (max {MAX_FRAME})")
            }
            FrameError::BadChecksum => write!(f, "frame checksum mismatch"),
            FrameError::Malformed(what) => write!(f, "malformed frame: {what}"),
            FrameError::Codec(e) => write!(f, "protocol payload: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<CodecError> for FrameError {
    fn from(e: CodecError) -> FrameError {
        FrameError::Codec(e)
    }
}

/// Control-plane requests (`radd-cli`, deployment scripts).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CtlReq {
    /// Liveness probe.
    Ping,
    /// How many writes still await their parity ack.
    QueryPending,
    /// Whether no request of this site awaits an ack.
    QueryAllAcked,
    /// Administratively mark the site down (`true`) or back up.
    SetDown(bool),
    /// The site's metrics + flight-recorder snapshot, as JSON.
    QueryObsJson,
    /// Stop the server process's event loop.
    Shutdown,
}

/// Control-plane replies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CtlRep {
    /// Alive (and whether currently marked down).
    Pong {
        /// Administrative down flag.
        down: bool,
    },
    /// Pending-write count.
    Pending(u64),
    /// `all_acked` verdict.
    AllAcked(bool),
    /// Command applied.
    Done,
    /// JSON-rendered [`radd_obs::MachineSnapshot`].
    ObsJson(String),
}

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Connection handshake: the dialer's endpoint id.
    Hello {
        /// Endpoint id (clients `0..ep_base`, site `j` = `ep_base + j`).
        id: u64,
    },
    /// A protocol message.
    Proto(Msg),
    /// A control request, answered by a [`Frame::CtlRep`] echoing `rid`.
    CtlReq {
        /// Request id for pairing.
        rid: u64,
        /// The request.
        req: CtlReq,
    },
    /// A control reply.
    CtlRep {
        /// Echoed request id.
        rid: u64,
        /// The reply.
        rep: CtlRep,
    },
}

/// Frame type of a raw payload without decoding it — what the fault proxy
/// uses to exempt handshake and control traffic from injection.
pub fn payload_is_proto(payload: &[u8]) -> bool {
    payload.first() == Some(&FT_PROTO)
}

/// Endpoint id of a raw `Hello` payload, if it is one. The proxy snoops
/// this to attribute a relayed connection to its source endpoint.
pub fn payload_hello_id(payload: &[u8]) -> Option<u64> {
    if payload.len() == 9 && payload[0] == FT_HELLO {
        Some(u64::from_le_bytes(payload[1..9].try_into().ok()?))
    } else {
        None
    }
}

impl Frame {
    /// Encode this frame's payload (no length/checksum header).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(32);
        match self {
            Frame::Hello { id } => {
                buf.push(FT_HELLO);
                buf.extend_from_slice(&id.to_le_bytes());
            }
            Frame::Proto(msg) => {
                buf.push(FT_PROTO);
                encode_msg(msg, &mut buf);
            }
            Frame::CtlReq { rid, req } => {
                buf.push(FT_CTL_REQ);
                buf.extend_from_slice(&rid.to_le_bytes());
                match req {
                    CtlReq::Ping => buf.push(0),
                    CtlReq::QueryPending => buf.push(1),
                    CtlReq::QueryAllAcked => buf.push(2),
                    CtlReq::SetDown(d) => {
                        buf.push(3);
                        buf.push(u8::from(*d));
                    }
                    CtlReq::QueryObsJson => buf.push(4),
                    CtlReq::Shutdown => buf.push(5),
                }
            }
            Frame::CtlRep { rid, rep } => {
                buf.push(FT_CTL_REP);
                buf.extend_from_slice(&rid.to_le_bytes());
                match rep {
                    CtlRep::Pong { down } => {
                        buf.push(0);
                        buf.push(u8::from(*down));
                    }
                    CtlRep::Pending(n) => {
                        buf.push(1);
                        buf.extend_from_slice(&n.to_le_bytes());
                    }
                    CtlRep::AllAcked(b) => {
                        buf.push(2);
                        buf.push(u8::from(*b));
                    }
                    CtlRep::Done => buf.push(3),
                    CtlRep::ObsJson(s) => {
                        buf.push(4);
                        buf.extend_from_slice(
                            &u32::try_from(s.len())
                                .expect("snapshot fits in u32")
                                .to_le_bytes(),
                        );
                        buf.extend_from_slice(s.as_bytes());
                    }
                }
            }
        }
        buf
    }

    /// Decode a frame from its raw payload.
    pub fn decode(payload: &Bytes) -> Result<Frame, FrameError> {
        let Some(&ftype) = payload.first() else {
            return Err(FrameError::Malformed("empty payload"));
        };
        let body = payload.slice(1..payload.len());
        match ftype {
            FT_HELLO => {
                if body.len() != 8 {
                    return Err(FrameError::Malformed("hello body must be 8 bytes"));
                }
                Ok(Frame::Hello {
                    id: u64::from_le_bytes(body[..].try_into().expect("8-byte slice")),
                })
            }
            FT_PROTO => Ok(Frame::Proto(decode_msg(&body)?)),
            FT_CTL_REQ => {
                let (rid, rest) = split_rid(&body)?;
                let req = match rest {
                    [0] => CtlReq::Ping,
                    [1] => CtlReq::QueryPending,
                    [2] => CtlReq::QueryAllAcked,
                    [3, d @ (0 | 1)] => CtlReq::SetDown(*d == 1),
                    [4] => CtlReq::QueryObsJson,
                    [5] => CtlReq::Shutdown,
                    _ => return Err(FrameError::Malformed("bad control request body")),
                };
                Ok(Frame::CtlReq { rid, req })
            }
            FT_CTL_REP => {
                let (rid, rest) = split_rid(&body)?;
                let rep = match rest {
                    [0, d @ (0 | 1)] => CtlRep::Pong { down: *d == 1 },
                    [1, n @ ..] if n.len() == 8 => {
                        CtlRep::Pending(u64::from_le_bytes(n.try_into().expect("8 bytes")))
                    }
                    [2, b @ (0 | 1)] => CtlRep::AllAcked(*b == 1),
                    [3] => CtlRep::Done,
                    [4, rest @ ..] if rest.len() >= 4 => {
                        let len =
                            u32::from_le_bytes(rest[..4].try_into().expect("4 bytes")) as usize;
                        if rest.len() - 4 != len {
                            return Err(FrameError::Malformed("obs json length mismatch"));
                        }
                        let s = std::str::from_utf8(&rest[4..])
                            .map_err(|_| FrameError::Malformed("obs json is not utf-8"))?;
                        CtlRep::ObsJson(s.to_string())
                    }
                    _ => return Err(FrameError::Malformed("bad control reply body")),
                };
                Ok(Frame::CtlRep { rid, rep })
            }
            _ => Err(FrameError::Malformed("unknown frame type")),
        }
    }
}

fn split_rid(body: &[u8]) -> Result<(u64, &[u8]), FrameError> {
    if body.len() < 8 {
        return Err(FrameError::Malformed("control body shorter than rid"));
    }
    let rid = u64::from_le_bytes(body[..8].try_into().expect("8 bytes"));
    Ok((rid, &body[8..]))
}

/// Write one frame (header + `payload`) to `w`.
pub fn write_frame_payload(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    assert!(payload.len() <= MAX_FRAME, "oversized outbound frame");
    let mut head = [0u8; FRAME_HEADER];
    head[..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    head[4..].copy_from_slice(&checksum(payload).to_le_bytes());
    // One write per frame keeps a frame contiguous on the wire wherever
    // the kernel allows; the decoder tolerates any split regardless.
    let mut buf = Vec::with_capacity(FRAME_HEADER + payload.len());
    buf.extend_from_slice(&head);
    buf.extend_from_slice(payload);
    w.write_all(&buf)
}

/// Encode and write one [`Frame`].
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> std::io::Result<()> {
    write_frame_payload(w, &frame.encode())
}

/// Incremental frame decoder over an arbitrary byte stream.
///
/// Feed it whatever `read` returned — any split or coalescing of frames —
/// and pull complete payloads out. The internal buffer only ever holds
/// bytes actually received plus at most one frame, so a hostile length
/// prefix cannot cause over-allocation: it is rejected against
/// [`MAX_FRAME`] as soon as the 12-byte header is readable.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
}

impl FrameDecoder {
    /// A fresh decoder.
    pub fn new() -> FrameDecoder {
        FrameDecoder { buf: Vec::new() }
    }

    /// Append newly received bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// The next complete, checksum-verified payload, if one is buffered.
    /// After an error the stream is unrecoverable (framing is lost) — the
    /// caller must drop the connection.
    pub fn next_payload(&mut self) -> Result<Option<Bytes>, FrameError> {
        if self.buf.len() < FRAME_HEADER {
            return Ok(None);
        }
        let len = u32::from_le_bytes(self.buf[..4].try_into().expect("4 bytes")) as usize;
        if len > MAX_FRAME {
            return Err(FrameError::Oversized {
                claimed: len as u64,
            });
        }
        if self.buf.len() < FRAME_HEADER + len {
            return Ok(None);
        }
        let check = u64::from_le_bytes(self.buf[4..12].try_into().expect("8 bytes"));
        let payload = &self.buf[FRAME_HEADER..FRAME_HEADER + len];
        if checksum(payload) != check {
            return Err(FrameError::BadChecksum);
        }
        let out = Bytes::from(payload.to_vec());
        self.buf.drain(..FRAME_HEADER + len);
        Ok(Some(out))
    }

    /// The next complete [`Frame`], if one is buffered.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, FrameError> {
        match self.next_payload()? {
            Some(p) => Ok(Some(Frame::decode(&p)?)),
            None => Ok(None),
        }
    }
}

/// Blocking frame reader over a [`Read`]: feeds a [`FrameDecoder`] from a
/// fixed scratch buffer. Returns `Ok(None)` on clean EOF *between* frames;
/// EOF mid-frame is an error (the peer died mid-write).
pub fn read_frame(
    r: &mut impl Read,
    dec: &mut FrameDecoder,
    scratch: &mut [u8],
) -> Result<Option<Frame>, std::io::Error> {
    loop {
        if let Some(f) = dec
            .next_frame()
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?
        {
            return Ok(Some(f));
        }
        match r.read(scratch) {
            Ok(0) => {
                return if dec.buf.is_empty() {
                    Ok(None)
                } else {
                    Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "peer closed mid-frame",
                    ))
                }
            }
            Ok(n) => dec.feed(&scratch[..n]),
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip_through_the_decoder() {
        let frames = vec![
            Frame::Hello { id: 42 },
            Frame::Proto(Msg::Read { index: 3, tag: 9 }),
            Frame::CtlReq {
                rid: 1,
                req: CtlReq::SetDown(true),
            },
            Frame::CtlRep {
                rid: 1,
                rep: CtlRep::ObsJson("{\"x\":1}".to_string()),
            },
            Frame::CtlRep {
                rid: 2,
                rep: CtlRep::Pending(17),
            },
        ];
        let mut wire = Vec::new();
        for f in &frames {
            write_frame(&mut wire, f).unwrap();
        }
        // Feed one byte at a time: worst-case splitting.
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for b in &wire {
            dec.feed(std::slice::from_ref(b));
            while let Some(f) = dec.next_frame().unwrap() {
                got.push(f);
            }
        }
        assert_eq!(got, frames);
    }

    #[test]
    fn oversized_prefix_is_rejected_before_buffering() {
        let mut dec = FrameDecoder::new();
        let mut head = vec![];
        head.extend_from_slice(&(u32::MAX).to_le_bytes());
        head.extend_from_slice(&0u64.to_le_bytes());
        dec.feed(&head);
        assert!(matches!(
            dec.next_frame(),
            Err(FrameError::Oversized { .. })
        ));
    }

    #[test]
    fn corrupted_checksum_is_rejected() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &Frame::Hello { id: 7 }).unwrap();
        let last = wire.len() - 1;
        wire[last] ^= 0xFF;
        let mut dec = FrameDecoder::new();
        dec.feed(&wire);
        assert_eq!(dec.next_frame(), Err(FrameError::BadChecksum));
    }

    #[test]
    fn proxy_snoops_classify_payloads() {
        let hello = Frame::Hello { id: 5 }.encode();
        let proto = Frame::Proto(Msg::Ack { tag: 1 }).encode();
        assert_eq!(payload_hello_id(&hello), Some(5));
        assert!(!payload_is_proto(&hello));
        assert!(payload_is_proto(&proto));
        assert_eq!(payload_hello_id(&proto), None);
    }
}
