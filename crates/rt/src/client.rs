//! The socket client library: a [`ClientMachine`] bound to a TCP endpoint.
//!
//! All §3.2/§3.3 client logic — degraded reads via spare or validated
//! reconstruction, W1' redirected writes, the recovery drain — lives in
//! [`radd_protocol::ClientMachine`], shared with the DES and threaded
//! runtimes. This module is its [`ClientIo`] over real sockets: the same
//! attempt ladder ([`RetryPolicy::CLIENT_ATTEMPT`]), the same tag-keyed
//! reply stash, the same one-budget-per-site batch rule as the threaded
//! client — any divergence here would show up as a trace mismatch in the
//! differential socket test.
//!
//! The socket transport maps onto the same send outcomes the threaded
//! client classifies: a failed dial or an unreachable peer is *silent
//! loss* ([`SendOutcome::Sent`] — the retry ladder absorbs it, because
//! listeners outlive transient faults), while an out-of-range destination
//! or local shutdown is [`SendOutcome::Closed`] and fails fast. Every wire
//! attempt, retransmission, stash eviction and failed send is recorded in
//! a per-client [`radd_obs::MachineObs`].

use crate::net::{Inbound, SendOutcome, SocketEndpoint};
use radd_net::RetryPolicy;
use radd_obs::{MachineObs, MachineSnapshot};
use radd_parity::xor_in_place;
use radd_protocol::obs::ObsEvent;
use radd_protocol::wire::Msg;
use radd_protocol::{ClientErr, ClientIo, ClientMachine, Dest, SparePolicy, TraceEntry};
use std::collections::{HashMap, HashSet, VecDeque};
use std::time::{Duration, Instant};

/// §3.3 retry budget for inconsistent reconstruction reads.
const RECONSTRUCT_RETRIES: u32 = 20;
/// Replies stashed beyond this count have their oldest entries dropped.
const STASH_CAP: usize = 512;
/// Tag-space bit marking requests minted outside the protocol machine
/// (oracle sweeps like [`SocketClient::verify_parity`]).
const ORACLE_TAG_BIT: u64 = 1 << 46;
/// Client UID namespaces count *down* from `u16::MAX` while site machines
/// count *up* from their site id — same pool split as the threaded
/// runtime, so a socket client and a threaded client with the same
/// endpoint id mint identical UIDs (a precondition for byte-identical
/// differential traces).
const MAX_CLIENT_NAMESPACES: usize = 4096;

/// The UID namespace for the client on endpoint `ep_id`. Panics when the
/// endpoint id would not map injectively into the client pool.
fn client_uid_namespace(ep_id: usize) -> u16 {
    assert!(
        ep_id < MAX_CLIENT_NAMESPACES,
        "client endpoint id {ep_id} exceeds the {MAX_CLIENT_NAMESPACES}-entry \
         UID namespace pool; truncating it would alias another writer's \
         namespace and break §3.2 UID uniqueness"
    );
    u16::MAX - ep_id as u16
}

/// Client-side errors (the socket twin of `radd_node`'s `ClientError`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// Address out of range.
    OutOfRange,
    /// Payload size mismatch.
    BadSize,
    /// A needed peer did not answer (after all retries).
    Timeout {
        /// The unresponsive site.
        site: usize,
    },
    /// Two failures overlap (e.g. the spare already stands in for another
    /// site).
    MultipleFailure,
    /// Reconstruction kept failing §3.3 UID validation.
    Inconsistent,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::OutOfRange => write!(f, "address out of range"),
            ClientError::BadSize => write!(f, "payload size mismatch"),
            ClientError::Timeout { site } => write!(f, "site {site} did not answer"),
            ClientError::MultipleFailure => write!(f, "multiple overlapping failures"),
            ClientError::Inconsistent => {
                write!(f, "reconstruction stayed inconsistent after retries")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ClientErr> for ClientError {
    fn from(e: ClientErr) -> ClientError {
        match e {
            ClientErr::OutOfRange => ClientError::OutOfRange,
            ClientErr::BadSize => ClientError::BadSize,
            ClientErr::Timeout { site } => ClientError::Timeout { site },
            ClientErr::MultipleFailure { .. } | ClientErr::Unavailable { .. } => {
                ClientError::MultipleFailure
            }
            ClientErr::Inconsistent { .. } => ClientError::Inconsistent,
        }
    }
}

/// The machine's transport: request/reply over a socket endpoint with
/// retry and backoff.
struct SockIo {
    ep: SocketEndpoint,
    /// Replies that arrived while we were waiting for a different tag.
    stash: HashMap<u64, Msg>,
    stash_order: VecDeque<u64>,
    /// Attempt-ladder tuning — [`RetryPolicy::CLIENT_ATTEMPT`] in
    /// production; tests inject shrunken schedules.
    policy: RetryPolicy,
    stash_cap: usize,
    /// Per-client metrics + flight recorder.
    obs: MachineObs,
}

impl SockIo {
    fn new(ep: SocketEndpoint) -> SockIo {
        SockIo {
            ep,
            stash: HashMap::new(),
            stash_order: VecDeque::new(),
            policy: RetryPolicy::CLIENT_ATTEMPT,
            stash_cap: STASH_CAP,
            obs: MachineObs::new(),
        }
    }

    /// The wait window for a site's `k`-th attempt (0-based).
    fn attempt_window(&self, k: u32) -> Duration {
        self.policy.delay(k)
    }

    /// A stashed reply for `tag`, if one already arrived out of band.
    fn take_stashed(&mut self, tag: u64) -> Option<Msg> {
        self.stash.remove(&tag)
    }

    /// One wire attempt: record it, send it, classify the outcome.
    fn send_attempt(&mut self, site: usize, msg: &Msg, retransmit: bool) -> SendOutcome {
        self.obs.event(ObsEvent::Send {
            to: Dest::Site(site),
            kind: msg.kind(),
            tag: msg.tag(),
            wire: msg.wire_size() as u64,
            retransmit,
            replay: false,
        });
        let out = self.ep.send(self.ep.ep_base() + site, msg);
        if out == SendOutcome::Closed {
            self.obs.metrics().send_failure();
        }
        out
    }

    /// Wait for the reply carrying `tag`, stashing replies to other
    /// outstanding requests for their own `wait` calls.
    fn wait(&mut self, tag: u64, timeout: Duration) -> Option<Msg> {
        if let Some(m) = self.stash.remove(&tag) {
            return Some(m);
        }
        let deadline = Instant::now() + timeout;
        loop {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return None;
            }
            let msg = match self.ep.recv_timeout(left) {
                Ok(Inbound::Proto { msg, .. }) => msg,
                // Clients never listen, so a control request can only be a
                // stray — drop it rather than letting it eat the window.
                Ok(Inbound::Ctl { .. }) => continue,
                Err(_) => return None,
            };
            if msg.tag() == tag {
                return Some(msg);
            }
            let t = msg.tag();
            if self.stash.insert(t, msg).is_none() {
                self.stash_order.push_back(t);
                if self.stash_order.len() > self.stash_cap {
                    if let Some(old) = self.stash_order.pop_front() {
                        self.stash.remove(&old);
                        self.obs.metrics().stash_eviction();
                    }
                }
            }
        }
    }

    /// Send `msg` to `site`, retrying with exponential backoff until a
    /// reply arrives or the attempt budget is spent. All retried requests
    /// are idempotent at the receiver. A closed channel fails immediately.
    fn request(&mut self, site: usize, msg: &Msg) -> Option<Msg> {
        let tag = msg.tag();
        for k in 0..self.policy.attempts {
            if self.send_attempt(site, msg, k > 0) == SendOutcome::Closed {
                return self.take_stashed(tag);
            }
            if let Some(reply) = self.wait(tag, self.attempt_window(k)) {
                return Some(reply);
            }
        }
        None
    }
}

impl ClientIo for SockIo {
    fn exchange(&mut self, site: usize, msg: Msg, _background: bool) -> Result<Msg, ClientErr> {
        self.request(site, &msg).ok_or(ClientErr::Timeout { site })
    }

    /// Pipelined batch with one attempt budget per site — structurally
    /// identical to the threaded client's `exchange_batch`; see its docs
    /// for the rationale.
    fn exchange_batch(
        &mut self,
        reqs: Vec<(usize, Msg)>,
        _background: bool,
    ) -> Vec<Result<Msg, ClientErr>> {
        let mut used: HashMap<usize, u32> = HashMap::new();
        let mut dead: HashSet<usize> = HashSet::new();
        for (site, msg) in &reqs {
            if dead.contains(site) {
                continue;
            }
            if self.send_attempt(*site, msg, false) == SendOutcome::Closed {
                dead.insert(*site);
            }
        }
        reqs.into_iter()
            .map(|(site, msg)| {
                let tag = msg.tag();
                // Served while an earlier entry was waiting?
                if let Some(reply) = self.take_stashed(tag) {
                    return Ok(reply);
                }
                if dead.contains(&site) {
                    return Err(ClientErr::Timeout { site });
                }
                loop {
                    let attempts = used.entry(site).or_insert(0);
                    let k = *attempts;
                    if k >= self.policy.attempts {
                        dead.insert(site);
                        return Err(ClientErr::Timeout { site });
                    }
                    *attempts += 1;
                    // The first window rides on the pipelined send above;
                    // later windows resend (idempotent at the receiver).
                    if k > 0 && self.send_attempt(site, &msg, true) == SendOutcome::Closed {
                        dead.insert(site);
                        return self.take_stashed(tag).ok_or(ClientErr::Timeout { site });
                    }
                    let window = self.attempt_window(k);
                    if let Some(reply) = self.wait(tag, window) {
                        return Ok(reply);
                    }
                }
            })
            .collect()
    }
    // old_value stays `None`: this runtime has no buffer-pool oracle, so
    // degraded writes fetch the old value through the protocol.
}

/// The cluster client over TCP.
pub struct SocketClient {
    machine: ClientMachine,
    io: SockIo,
    block_size: usize,
    /// Tag counter for oracle sweeps issued outside the machine.
    next_oracle_tag: u64,
}

impl SocketClient {
    /// Bind a client to `ep` for a `g`-site cluster with `rows` block rows
    /// of `block_size` bytes.
    pub fn new(ep: SocketEndpoint, g: usize, rows: u64, block_size: usize) -> SocketClient {
        // Every client mints UIDs from its own namespace keyed by its
        // endpoint id, so concurrent clients (and the threaded twin in the
        // differential test) never collide and always agree.
        let uid_namespace = client_uid_namespace(ep.id());
        SocketClient {
            machine: ClientMachine::new(
                g,
                rows,
                block_size,
                SparePolicy::OnePerParity,
                true,
                uid_namespace,
            ),
            io: SockIo::new(ep),
            block_size,
            next_oracle_tag: 0,
        }
    }

    /// Salt request tags with a restart incarnation (see
    /// [`ClientMachine::set_incarnation`]): standalone client processes
    /// must call this with something unique per start, or a site's
    /// at-most-once reply cache will replay answers meant for the previous
    /// process on the same endpoint id. Cluster harnesses, whose clients
    /// live as long as the sites, keep the default incarnation 0.
    pub fn set_incarnation(&mut self, incarnation: u64) {
        self.machine.set_incarnation(incarnation);
    }

    /// Tell the machine `site` is believed down (or back up). In a real
    /// deployment this input comes from a failure detector; tests and the
    /// fault driver set it explicitly.
    pub fn mark_down(&mut self, site: usize, down: bool) {
        self.machine.set_down(site, down);
    }

    /// Whether this client currently believes `site` is down.
    pub fn is_marked_down(&self, site: usize) -> bool {
        self.machine.is_down(site)
    }

    /// The cluster geometry.
    pub fn geometry(&self) -> &radd_layout::Geometry {
        self.machine.geometry()
    }

    /// Start recording this client's normalised request trace.
    pub fn record_trace(&mut self) {
        self.machine.record_trace();
    }

    /// Take the recorded trace, leaving recording enabled.
    pub fn take_trace(&mut self) -> Vec<TraceEntry> {
        self.machine.take_trace()
    }

    /// Freeze this client's metrics and flight recorder.
    pub fn obs_snapshot(&self) -> MachineSnapshot {
        self.io.obs.snapshot("client")
    }

    /// Read the `index`-th data block of `site`.
    pub fn read(&mut self, site: usize, index: u64) -> Result<Vec<u8>, ClientError> {
        let started = Instant::now();
        // §3.3: an inconsistent reconstruction means a parity update is in
        // flight; back off and retry the whole degraded read.
        for _ in 0..RECONSTRUCT_RETRIES {
            match self.machine.read(&mut self.io, site, index) {
                Err(ClientErr::Inconsistent { .. }) => std::thread::sleep(Duration::from_millis(5)),
                Ok(b) => {
                    self.io
                        .obs
                        .metrics()
                        .record_read_latency(started.elapsed().as_nanos() as u64);
                    return Ok(b.to_vec());
                }
                Err(e) => return Err(ClientError::from(e)),
            }
        }
        Err(ClientError::Inconsistent)
    }

    /// Write the `index`-th data block of `site`.
    pub fn write(&mut self, site: usize, index: u64, data: &[u8]) -> Result<(), ClientError> {
        let started = Instant::now();
        for _ in 0..RECONSTRUCT_RETRIES {
            match self.machine.write(&mut self.io, site, index, data) {
                Err(ClientErr::Inconsistent { .. }) => std::thread::sleep(Duration::from_millis(5)),
                Ok(()) => {
                    self.io
                        .obs
                        .metrics()
                        .record_write_latency(started.elapsed().as_nanos() as u64);
                    return Ok(());
                }
                Err(e) => return Err(ClientError::from(e)),
            }
        }
        Err(ClientError::Inconsistent)
    }

    /// Recovery drain for a revived site (§3.2's background process):
    /// restore first, then invalidate the spare, so every step is safe to
    /// retry. Returns the number of blocks drained.
    pub fn recover(&mut self, site: usize) -> Result<u64, ClientError> {
        let drained = self
            .machine
            .recover(&mut self.io, site)
            .map_err(ClientError::from)?;
        let m = self.io.obs.metrics();
        m.recovery_run();
        m.set_recovery_progress(drained, 0);
        Ok(drained)
    }

    /// Bulk-rebuild every data block a believed-down `site` owns into the
    /// row spares, `wave_rows` rows per pipelined wave (the socket twin of
    /// `radd_node::NodeClient::rebuild`). Idempotent: rows already
    /// absorbed are skipped, so an `Inconsistent` fold retries the whole
    /// pass cheaply.
    pub fn rebuild(
        &mut self,
        site: usize,
        wave_rows: usize,
    ) -> Result<radd_protocol::RebuildReport, ClientError> {
        for _ in 0..RECONSTRUCT_RETRIES {
            match self.machine.rebuild_member(&mut self.io, site, wave_rows) {
                Err(ClientErr::Inconsistent { .. }) => std::thread::sleep(Duration::from_millis(5)),
                Ok(report) => {
                    let m = self.io.obs.metrics();
                    m.rebuild_run();
                    m.add_rebuild(report.blocks_rebuilt, report.bytes_xored);
                    m.set_rebuild_fanout(
                        report.peer_reads.iter().filter(|&&n| n > 0).count() as u64
                    );
                    return Ok(report);
                }
                Err(e) => return Err(ClientError::from(e)),
            }
        }
        Err(ClientError::Inconsistent)
    }

    fn oracle_tag(&mut self) -> u64 {
        self.next_oracle_tag += 1;
        ORACLE_TAG_BIT | self.next_oracle_tag
    }

    /// Verify the stripe invariant over every row by reading all blocks
    /// (requires every site up). Returns the first violated row.
    pub fn verify_parity(&mut self) -> Result<(), String> {
        let geo = *self.machine.geometry();
        for row in 0..geo.rows() {
            let parity_site = geo.parity_site(row);
            let spare_site = geo.spare_site(row);
            let mut acc = vec![0u8; self.block_size];
            let mut parity = vec![0u8; self.block_size];
            for s in 0..geo.num_sites() {
                if s == spare_site {
                    continue;
                }
                let tag = self.oracle_tag();
                match self.io.request(s, &Msg::BlockRead { row, tag }) {
                    Some(Msg::BlockData { data, .. }) => {
                        if s == parity_site {
                            parity = data.to_vec();
                        } else {
                            xor_in_place(&mut acc, &data);
                        }
                    }
                    _ => return Err(format!("site {s} did not answer for row {row}")),
                }
            }
            if acc != parity {
                return Err(format!("parity mismatch in row {row}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn client_uid_namespaces_match_the_threaded_runtime() {
        // The differential test needs socket and threaded clients on the
        // same endpoint id to mint from the same namespace.
        assert_eq!(client_uid_namespace(0), u16::MAX);
        assert_eq!(client_uid_namespace(1), u16::MAX - 1);
        let mut seen = HashSet::new();
        for ep_id in 0..64 {
            let ns = client_uid_namespace(ep_id);
            assert!(seen.insert(ns), "namespace collision at endpoint {ep_id}");
            assert!(
                (ns as usize) >= MAX_CLIENT_NAMESPACES,
                "client namespace {ns} would collide with a site namespace"
            );
        }
    }

    #[test]
    #[should_panic(expected = "UID namespace")]
    fn endpoint_ids_beyond_the_pool_are_refused() {
        let _ = client_uid_namespace(MAX_CLIENT_NAMESPACES);
    }

    #[test]
    fn request_fails_fast_on_an_out_of_range_destination() {
        // A 1-site map: site index 3 maps to endpoint 4, which is beyond
        // the site table — SendOutcome::Closed, no ladder burned.
        let dead = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = dead.local_addr().unwrap();
        let ep = SocketEndpoint::client(0, 1, vec![addr]);
        let mut io = SockIo::new(ep);
        io.policy.base_ms = 500;
        let started = Instant::now();
        let reply = io.request(3, &Msg::BlockRead { row: 0, tag: 1 });
        assert!(reply.is_none());
        assert!(
            started.elapsed() < Duration::from_millis(200),
            "out-of-range destination burned the timeout ladder"
        );
        assert_eq!(io.obs.snapshot("client").metrics.send_failures, 1);
    }
}
