//! Seeded randomness for workloads and reliability simulation.
//!
//! [`SimRng`] is a self-contained xoshiro256++ generator (Blackman & Vigna)
//! whose 256-bit state is expanded from a `u64` seed with splitmix64 — the
//! same seeding scheme the reference implementation recommends. Keeping the
//! generator in-tree (rather than depending on `rand`) makes every stream a
//! pure function of the seed across toolchains and platforms, which the
//! fault-plan engine relies on for replayable failures. The distribution
//! samplers the testbed needs (uniform, Bernoulli, exponential) are
//! implemented directly on top of the raw stream.

use crate::time::SimDuration;

/// Deterministic random source.
///
/// ```
/// use radd_sim::SimRng;
/// let mut a = SimRng::seed_from_u64(7);
/// let mut b = SimRng::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    state: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Create a generator from a 64-bit seed. The same seed always yields the
    /// same stream.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        SimRng {
            state: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Derive an independent child generator; used to give each site or each
    /// Monte-Carlo trial its own stream without correlation.
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed_from_u64(self.next_u64())
    }

    /// Next raw 64-bit value (xoshiro256++ step).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)`.
    pub fn uniform_f64(&mut self) -> f64 {
        // 53 high bits → the standard dyadic-rational construction.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        // Lemire's multiply-shift rejection method: unbiased for every n.
        let mut x = self.next_u64();
        let mut m = x as u128 * n as u128;
        let mut lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                x = self.next_u64();
                m = x as u128 * n as u128;
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform usize index in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        self.uniform_f64() < p
    }

    /// Exponentially distributed value with the given `mean` (inverse
    /// transform: `-mean * ln(1 - u)`). This is the distribution the paper's
    /// reliability analysis assumes for failure and repair processes
    /// ("the standard assumptions of exponential distributions").
    pub fn exponential(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0, "exponential mean must be positive");
        let u: f64 = self.uniform_f64(); // in [0, 1)
        -mean * (1.0 - u).ln()
    }

    /// Exponentially distributed duration with the given mean.
    pub fn exponential_duration(&mut self, mean: SimDuration) -> SimDuration {
        let sampled = self.exponential(mean.as_micros() as f64);
        SimDuration::from_micros(sampled.round() as u64)
    }

    /// Fill a byte buffer with random data (used to generate block payloads).
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        let mut chunks = buf.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&word[..rest.len()]);
        }
    }

    /// A random byte vector of length `len`.
    pub fn bytes(&mut self, len: usize) -> Vec<u8> {
        let mut v = vec![0u8; len];
        self.fill_bytes(&mut v);
        v
    }

    /// Shuffle a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn fork_is_deterministic_and_independent() {
        let mut parent1 = SimRng::seed_from_u64(9);
        let mut parent2 = SimRng::seed_from_u64(9);
        let mut c1 = parent1.fork();
        let mut c2 = parent2.fork();
        assert_eq!(c1.next_u64(), c2.next_u64());
        // The parent stream continues past the fork identically.
        assert_eq!(parent1.next_u64(), parent2.next_u64());
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = SimRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }

    #[test]
    fn below_covers_all_residues() {
        let mut r = SimRng::seed_from_u64(77);
        let mut seen = [0u32; 5];
        for _ in 0..5000 {
            seen[r.below(5) as usize] += 1;
        }
        // Uniformity sanity check: every residue appears a reasonable number
        // of times (expected 1000 each).
        assert!(seen.iter().all(|&c| c > 700), "skewed counts {seen:?}");
    }

    #[test]
    fn exponential_mean_is_close() {
        // Law of large numbers check: the sample mean of 100k draws must be
        // within a few percent of the configured mean.
        let mut r = SimRng::seed_from_u64(1234);
        let mean = 150.0;
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.exponential(mean)).sum();
        let sample_mean = sum / n as f64;
        assert!(
            (sample_mean - mean).abs() / mean < 0.02,
            "sample mean {sample_mean} too far from {mean}"
        );
    }

    #[test]
    fn exponential_is_nonnegative() {
        let mut r = SimRng::seed_from_u64(5);
        for _ in 0..10_000 {
            assert!(r.exponential(1.0) >= 0.0);
        }
    }

    #[test]
    fn exponential_duration_scales() {
        let mut r = SimRng::seed_from_u64(8);
        let mean = SimDuration::from_hours(150);
        let n = 20_000u64;
        let total: u64 = (0..n)
            .map(|_| r.exponential_duration(mean).as_micros())
            .sum();
        let sample_mean = total as f64 / n as f64;
        let expect = mean.as_micros() as f64;
        assert!((sample_mean - expect).abs() / expect < 0.03);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from_u64(11);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn fill_bytes_handles_unaligned_lengths() {
        let mut r = SimRng::seed_from_u64(13);
        for len in [0usize, 1, 7, 8, 9, 64, 65] {
            let v = r.bytes(len);
            assert_eq!(v.len(), len);
        }
        // Non-trivial payloads should not be all zeros.
        let v = SimRng::seed_from_u64(14).bytes(64);
        assert!(v.iter().any(|&b| b != 0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::seed_from_u64(20);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not stay sorted");
    }
}
