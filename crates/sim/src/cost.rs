//! The paper's cost model (Table 1 / Figures 3 and 4).
//!
//! Every I/O an algorithm performs is one of four kinds: a **local read**
//! (`R`), **local write** (`W`), **remote read** (`RR`) or **remote write**
//! (`RW`). Section 7.3 evaluates all schemes by counting these per operation
//! (Figure 3) and then pricing them with `R = W = 30 ms` and
//! `RR = RW = 75 ms` (Figure 4, constants from \[LAZO86\]).
//!
//! [`OpCounts`] accumulates the four counters and can render itself both as
//! the paper's symbolic formulas (`"W+RW"`, `"8*RR"`) and as priced
//! latencies, which is how the bench harness checks measured behaviour
//! against the published rows.

use crate::time::SimDuration;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign};

/// The four I/O kinds of the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// `R` — a block read on a disk attached to the acting site.
    LocalRead,
    /// `W` — a block write on a disk attached to the acting site.
    LocalWrite,
    /// `RR` — a block read served by another site over the network.
    RemoteRead,
    /// `RW` — a block write performed at another site over the network
    /// (including the parity read-modify-write, which the paper prices as a
    /// single `RW` thanks to old-value buffering and parity prefetch).
    RemoteWrite,
}

impl OpKind {
    /// The paper's symbol for this kind.
    pub fn symbol(self) -> &'static str {
        match self {
            OpKind::LocalRead => "R",
            OpKind::LocalWrite => "W",
            OpKind::RemoteRead => "RR",
            OpKind::RemoteWrite => "RW",
        }
    }
}

/// Latency assigned to each [`OpKind`] (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostParams {
    /// Cost of a local read (`R`).
    pub local_read: SimDuration,
    /// Cost of a local write (`W`).
    pub local_write: SimDuration,
    /// Cost of a remote read (`RR`).
    pub remote_read: SimDuration,
    /// Cost of a remote write (`RW`).
    pub remote_write: SimDuration,
}

impl CostParams {
    /// The constants Section 7.3 uses for Figure 4: `R = W = 30 ms`, remote
    /// operations 2.5× more costly (`RR = RW = 75 ms`).
    pub fn paper_defaults() -> Self {
        CostParams {
            local_read: SimDuration::from_millis(30),
            local_write: SimDuration::from_millis(30),
            remote_read: SimDuration::from_millis(75),
            remote_write: SimDuration::from_millis(75),
        }
    }

    /// Uniform symbolic costs (`R = W = 1`, `RR = RW = 1`); with these, a
    /// priced [`OpCounts`] equals the total op count — handy in tests.
    pub fn unit() -> Self {
        let one = SimDuration::from_millis(1);
        CostParams {
            local_read: one,
            local_write: one,
            remote_read: one,
            remote_write: one,
        }
    }

    /// Latency of one operation of the given kind.
    pub fn cost_of(&self, kind: OpKind) -> SimDuration {
        match kind {
            OpKind::LocalRead => self.local_read,
            OpKind::LocalWrite => self.local_write,
            OpKind::RemoteRead => self.remote_read,
            OpKind::RemoteWrite => self.remote_write,
        }
    }
}

impl Default for CostParams {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

/// Counts of the four operation kinds, the currency of Figure 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct OpCounts {
    /// Number of local reads (`R`).
    pub local_reads: u64,
    /// Number of local writes (`W`).
    pub local_writes: u64,
    /// Number of remote reads (`RR`).
    pub remote_reads: u64,
    /// Number of remote writes (`RW`).
    pub remote_writes: u64,
}

impl OpCounts {
    /// All-zero counts.
    pub const ZERO: OpCounts = OpCounts {
        local_reads: 0,
        local_writes: 0,
        remote_reads: 0,
        remote_writes: 0,
    };

    /// Shorthand constructor in the paper's `(R, W, RR, RW)` order.
    pub fn new(r: u64, w: u64, rr: u64, rw: u64) -> Self {
        OpCounts {
            local_reads: r,
            local_writes: w,
            remote_reads: rr,
            remote_writes: rw,
        }
    }

    /// Record one operation of the given kind.
    pub fn record(&mut self, kind: OpKind) {
        match kind {
            OpKind::LocalRead => self.local_reads += 1,
            OpKind::LocalWrite => self.local_writes += 1,
            OpKind::RemoteRead => self.remote_reads += 1,
            OpKind::RemoteWrite => self.remote_writes += 1,
        }
    }

    /// Record `n` operations of the given kind.
    pub fn record_n(&mut self, kind: OpKind, n: u64) {
        match kind {
            OpKind::LocalRead => self.local_reads += n,
            OpKind::LocalWrite => self.local_writes += n,
            OpKind::RemoteRead => self.remote_reads += n,
            OpKind::RemoteWrite => self.remote_writes += n,
        }
    }

    /// Total number of operations of all kinds.
    pub fn total(&self) -> u64 {
        self.local_reads + self.local_writes + self.remote_reads + self.remote_writes
    }

    /// Price these counts under the given parameters — this is how a Figure 3
    /// row becomes a Figure 4 row.
    pub fn priced(&self, params: &CostParams) -> SimDuration {
        params.cost_of(OpKind::LocalRead) * self.local_reads
            + params.cost_of(OpKind::LocalWrite) * self.local_writes
            + params.cost_of(OpKind::RemoteRead) * self.remote_reads
            + params.cost_of(OpKind::RemoteWrite) * self.remote_writes
    }

    /// Render in the paper's formula notation, e.g. `W+RW`, `8*RR`, `2*RW`.
    /// Zero counts are omitted; all-zero renders as `0`.
    pub fn formula(&self) -> String {
        let mut parts = Vec::with_capacity(4);
        for (count, sym) in [
            (self.local_reads, "R"),
            (self.local_writes, "W"),
            (self.remote_reads, "RR"),
            (self.remote_writes, "RW"),
        ] {
            match count {
                0 => {}
                1 => parts.push(sym.to_string()),
                n => parts.push(format!("{n}*{sym}")),
            }
        }
        if parts.is_empty() {
            "0".to_string()
        } else {
            parts.join("+")
        }
    }

    /// Mean counts over `n` operations (for reporting averages of measured
    /// runs). Returns per-kind floating means in `(R, W, RR, RW)` order.
    pub fn mean_over(&self, n: u64) -> [f64; 4] {
        let d = n.max(1) as f64;
        [
            self.local_reads as f64 / d,
            self.local_writes as f64 / d,
            self.remote_reads as f64 / d,
            self.remote_writes as f64 / d,
        ]
    }
}

impl Add for OpCounts {
    type Output = OpCounts;
    fn add(self, o: OpCounts) -> OpCounts {
        OpCounts {
            local_reads: self.local_reads + o.local_reads,
            local_writes: self.local_writes + o.local_writes,
            remote_reads: self.remote_reads + o.remote_reads,
            remote_writes: self.remote_writes + o.remote_writes,
        }
    }
}

impl AddAssign for OpCounts {
    fn add_assign(&mut self, o: OpCounts) {
        *self = *self + o;
    }
}

impl fmt::Display for OpCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.formula())
    }
}

/// Accumulates operation counts and priced latency for a whole experiment
/// run, with **foreground** (on the critical path of a client operation, what
/// Figures 3/4 report) and **background** (recovery daemons, side-effect
/// spare installs) kept separate — the paper prices only the former into
/// response times.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CostLedger {
    /// Cost parameters used for pricing.
    pub params: CostParams,
    /// Counts charged on operation critical paths.
    pub foreground: OpCounts,
    /// Counts charged to background/recovery activity.
    pub background: OpCounts,
    /// Total priced foreground latency.
    pub latency: SimDuration,
}

impl CostLedger {
    /// A ledger pricing with the given parameters.
    pub fn new(params: CostParams) -> Self {
        CostLedger {
            params,
            ..Default::default()
        }
    }

    /// Charge one foreground operation; returns its latency so callers can
    /// advance their virtual clock.
    pub fn charge(&mut self, kind: OpKind) -> SimDuration {
        self.foreground.record(kind);
        let d = self.params.cost_of(kind);
        self.latency += d;
        d
    }

    /// Charge one background operation (not added to foreground latency).
    pub fn charge_background(&mut self, kind: OpKind) {
        self.background.record(kind);
    }

    /// Counts of everything charged, foreground plus background.
    pub fn total_counts(&self) -> OpCounts {
        self.foreground + self.background
    }

    /// Reset all counters, keeping the parameters.
    pub fn reset(&mut self) {
        self.foreground = OpCounts::ZERO;
        self.background = OpCounts::ZERO;
        self.latency = SimDuration::ZERO;
    }

    /// Take a snapshot of the foreground counters, for measuring a single
    /// operation: call before and after, subtract.
    pub fn snapshot(&self) -> (OpCounts, SimDuration) {
        (self.foreground, self.latency)
    }

    /// Difference between the current state and an earlier [`snapshot`].
    ///
    /// [`snapshot`]: CostLedger::snapshot
    pub fn since(&self, snap: (OpCounts, SimDuration)) -> (OpCounts, SimDuration) {
        let (c0, l0) = snap;
        (
            OpCounts {
                local_reads: self.foreground.local_reads - c0.local_reads,
                local_writes: self.foreground.local_writes - c0.local_writes,
                remote_reads: self.foreground.remote_reads - c0.remote_reads,
                remote_writes: self.foreground.remote_writes - c0.remote_writes,
            },
            self.latency - l0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_73() {
        let p = CostParams::paper_defaults();
        assert_eq!(p.local_read.as_millis(), 30);
        assert_eq!(p.local_write.as_millis(), 30);
        assert_eq!(p.remote_read.as_millis(), 75);
        assert_eq!(p.remote_write.as_millis(), 75);
    }

    #[test]
    fn radd_normal_write_prices_to_105ms() {
        // Figure 4, row "no failure write time", column RADD: W + RW = 105.
        let counts = OpCounts::new(0, 1, 0, 1);
        assert_eq!(
            counts.priced(&CostParams::paper_defaults()).as_millis(),
            105
        );
    }

    #[test]
    fn disk_failure_read_prices_to_600ms() {
        // Figure 4, RADD disk-failure read: G*RR with G = 8 → 600 ms.
        let counts = OpCounts::new(0, 0, 8, 0);
        assert_eq!(
            counts.priced(&CostParams::paper_defaults()).as_millis(),
            600
        );
    }

    #[test]
    fn formula_rendering() {
        assert_eq!(OpCounts::new(1, 0, 0, 0).formula(), "R");
        assert_eq!(OpCounts::new(0, 1, 0, 1).formula(), "W+RW");
        assert_eq!(OpCounts::new(0, 0, 8, 0).formula(), "8*RR");
        assert_eq!(OpCounts::new(0, 3, 0, 1).formula(), "3*W+RW");
        assert_eq!(OpCounts::new(1, 0, 1, 0).formula(), "R+RR");
        assert_eq!(OpCounts::ZERO.formula(), "0");
    }

    #[test]
    fn record_and_total() {
        let mut c = OpCounts::ZERO;
        c.record(OpKind::LocalRead);
        c.record(OpKind::RemoteWrite);
        c.record_n(OpKind::RemoteRead, 8);
        assert_eq!(c.total(), 10);
        assert_eq!(c, OpCounts::new(1, 0, 8, 1));
    }

    #[test]
    fn counts_add() {
        let a = OpCounts::new(1, 2, 3, 4);
        let b = OpCounts::new(10, 20, 30, 40);
        assert_eq!(a + b, OpCounts::new(11, 22, 33, 44));
    }

    #[test]
    fn ledger_charges_foreground_latency() {
        let mut l = CostLedger::new(CostParams::paper_defaults());
        let d1 = l.charge(OpKind::LocalWrite);
        let d2 = l.charge(OpKind::RemoteWrite);
        assert_eq!(d1.as_millis(), 30);
        assert_eq!(d2.as_millis(), 75);
        assert_eq!(l.latency.as_millis(), 105);
        assert_eq!(l.foreground, OpCounts::new(0, 1, 0, 1));
    }

    #[test]
    fn ledger_background_not_in_latency() {
        let mut l = CostLedger::new(CostParams::paper_defaults());
        l.charge_background(OpKind::RemoteWrite);
        assert_eq!(l.latency, SimDuration::ZERO);
        assert_eq!(l.background.remote_writes, 1);
        assert_eq!(l.total_counts().remote_writes, 1);
    }

    #[test]
    fn ledger_snapshot_diff() {
        let mut l = CostLedger::new(CostParams::paper_defaults());
        l.charge(OpKind::LocalRead);
        let snap = l.snapshot();
        l.charge(OpKind::RemoteRead);
        l.charge(OpKind::RemoteRead);
        let (counts, latency) = l.since(snap);
        assert_eq!(counts, OpCounts::new(0, 0, 2, 0));
        assert_eq!(latency.as_millis(), 150);
    }

    #[test]
    fn unit_params_count_ops() {
        let c = OpCounts::new(1, 2, 3, 4);
        assert_eq!(c.priced(&CostParams::unit()).as_millis(), 10);
    }

    #[test]
    fn mean_over_divides() {
        let c = OpCounts::new(10, 0, 80, 0);
        let m = c.mean_over(10);
        assert_eq!(m, [1.0, 0.0, 8.0, 0.0]);
    }
}
