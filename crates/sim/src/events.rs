//! Cancellable, deterministic event queue.
//!
//! [`EventQueue`] is the scheduling core shared by the simulated network
//! (message deliveries), the recovery daemons (background reconstruction
//! steps) and the Monte-Carlo reliability simulator (failure and repair
//! events). It is generic over the event payload so each subsystem defines
//! its own event enum.
//!
//! Two properties matter for reproducibility:
//!
//! * **Deterministic tie-breaking** — events scheduled for the same instant
//!   fire in the order they were scheduled (FIFO), regardless of heap
//!   internals.
//! * **O(log n) cancellation** — cancelled events are tombstoned and skipped
//!   on pop, so retransmission timers can be cancelled cheaply.

use crate::time::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

/// Handle for a scheduled event, usable to cancel it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

#[derive(Debug)]
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

// Order by (time, seq): seq gives FIFO among simultaneous events.
impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A priority queue of timestamped events with a built-in virtual clock.
///
/// Popping an event advances the clock to the event's timestamp. The clock
/// never moves backwards; scheduling in the past is rejected at debug time
/// and clamped to `now` in release builds.
///
/// ```
/// use radd_sim::{EventQueue, SimDuration};
///
/// let mut q: EventQueue<&str> = EventQueue::new();
/// q.schedule(SimDuration::from_millis(30), "disk done");
/// let timer = q.schedule(SimDuration::from_millis(10), "timeout");
/// q.cancel(timer);
/// let (t, e) = q.pop().unwrap();
/// assert_eq!(e, "disk done");
/// assert_eq!(t.as_millis(), 30);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Scheduled<E>>>,
    cancelled: HashSet<u64>,
    now: SimTime,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            now: SimTime::ZERO,
            next_seq: 0,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of live (non-cancelled) events still queued.
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// True if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedule `payload` to fire `delay` after the current time.
    pub fn schedule(&mut self, delay: SimDuration, payload: E) -> EventId {
        self.schedule_at(self.now + delay, payload)
    }

    /// Schedule `payload` at the absolute instant `at` (clamped to `now`).
    pub fn schedule_at(&mut self, at: SimTime, payload: E) -> EventId {
        debug_assert!(at >= self.now, "scheduling into the past");
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Scheduled { at, seq, payload }));
        EventId(seq)
    }

    /// Cancel a previously scheduled event. Returns `false` if the event has
    /// already fired or was already cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.next_seq {
            return false;
        }
        // Only mark if it is plausibly still queued; popped events have been
        // removed from the heap, and double-cancel is a no-op.
        self.cancelled.insert(id.0)
    }

    /// Pop the next live event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(Reverse(ev)) = self.heap.pop() {
            if self.cancelled.remove(&ev.seq) {
                continue;
            }
            self.now = ev.at;
            return Some((ev.at, ev.payload));
        }
        None
    }

    /// Peek the timestamp of the next live event without firing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Drop leading tombstones so peek is accurate.
        while let Some(Reverse(ev)) = self.heap.peek() {
            if self.cancelled.contains(&ev.seq) {
                let seq = ev.seq;
                self.heap.pop();
                self.cancelled.remove(&seq);
            } else {
                return Some(ev.at);
            }
        }
        None
    }

    /// Advance the clock to `at` without firing anything (used when an
    /// external actor, e.g. a synchronous client operation, consumes time).
    /// Panics in debug builds if this would skip over a queued event... it
    /// does not: events before `at` remain queued and fire with their
    /// original timestamps on the next `pop`.
    pub fn advance_to(&mut self, at: SimTime) {
        if at > self.now {
            self.now = at;
        }
    }

    /// Run events until the queue is empty or `deadline` is reached, calling
    /// `handler` for each. Events scheduled by the handler are processed too.
    /// Returns the number of events fired.
    pub fn run_until<F>(&mut self, deadline: SimTime, mut handler: F) -> usize
    where
        F: FnMut(&mut Self, SimTime, E),
    {
        let mut fired = 0;
        loop {
            match self.peek_time() {
                Some(t) if t <= deadline => {
                    let (at, ev) = self.pop().expect("peeked event vanished");
                    handler(self, at, ev);
                    fired += 1;
                }
                _ => break,
            }
        }
        if deadline > self.now {
            self.now = deadline;
        }
        fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> SimDuration {
        SimDuration::from_millis(n)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(ms(30), "c");
        q.schedule(ms(10), "a");
        q.schedule(ms(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn fifo_among_simultaneous_events() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(ms(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule(ms(42), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_millis(42));
    }

    #[test]
    fn cancel_skips_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(ms(10), "a");
        q.schedule(ms(20), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel is a no-op");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().1, "b");
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventId(99)));
    }

    #[test]
    fn peek_time_skips_tombstones() {
        let mut q = EventQueue::new();
        let a = q.schedule(ms(10), "a");
        q.schedule(ms(20), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(20)));
    }

    #[test]
    fn run_until_fires_cascading_events() {
        let mut q = EventQueue::new();
        q.schedule(ms(10), 1u32);
        let mut seen = Vec::new();
        let fired = q.run_until(SimTime::from_millis(100), |q, _t, e| {
            seen.push(e);
            if e < 3 {
                q.schedule(ms(10), e + 1);
            }
        });
        assert_eq!(fired, 3);
        assert_eq!(seen, vec![1, 2, 3]);
        assert_eq!(q.now(), SimTime::from_millis(100), "clock reaches deadline");
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut q = EventQueue::new();
        q.schedule(ms(10), "in");
        q.schedule(ms(200), "out");
        let mut seen = Vec::new();
        q.run_until(SimTime::from_millis(100), |_, _, e| seen.push(e));
        assert_eq!(seen, vec!["in"]);
        assert_eq!(q.len(), 1, "late event still queued");
    }

    #[test]
    fn advance_to_never_goes_backwards() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.advance_to(SimTime::from_millis(50));
        q.advance_to(SimTime::from_millis(10));
        assert_eq!(q.now(), SimTime::from_millis(50));
    }

    #[test]
    fn empty_queue_reports_empty() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        assert_eq!(q.peek_time(), None);
    }
}
