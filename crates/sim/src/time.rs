//! Virtual time.
//!
//! The simulation clock counts microseconds in a `u64`, which covers
//! ~585,000 simulated years — comfortably more than the multi-century MTTF
//! horizons of the paper's Figure 6. Milliseconds are the natural unit of the
//! paper's cost model (`R = W = 30 ms`), hours the natural unit of its
//! reliability model, and both convert losslessly.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the virtual clock, measured in microseconds since the start
/// of the simulation.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of virtual time, in microseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The beginning of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; no event is ever scheduled here.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Raw microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole milliseconds since simulation start (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Fractional milliseconds since simulation start.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Fractional hours since simulation start.
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / SimDuration::MICROS_PER_HOUR as f64
    }

    /// Duration elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    const MICROS_PER_HOUR: u64 = 3_600_000_000;

    /// Construct from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Construct from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Construct from whole hours (the paper's reliability constants are in
    /// hours).
    pub const fn from_hours(h: u64) -> Self {
        SimDuration(h * Self::MICROS_PER_HOUR)
    }

    /// Construct from fractional hours, rounding to the nearest microsecond.
    pub fn from_hours_f64(h: f64) -> Self {
        debug_assert!(h >= 0.0, "negative duration");
        SimDuration((h * Self::MICROS_PER_HOUR as f64).round() as u64)
    }

    /// Raw microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Fractional hours.
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / Self::MICROS_PER_HOUR as f64
    }

    /// Checked multiplication by an integer count.
    pub fn checked_mul(self, n: u64) -> Option<SimDuration> {
        self.0.checked_mul(n).map(SimDuration)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, other: SimTime) -> SimDuration {
        SimDuration(self.0 - other.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0 + other.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, other: SimDuration) {
        self.0 += other.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0 - other.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, other: SimDuration) {
        self.0 -= other.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, n: u64) -> SimDuration {
        SimDuration(self.0 * n)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, n: u64) -> SimDuration {
        SimDuration(self.0 / n)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn millis_roundtrip() {
        let t = SimTime::from_millis(30);
        assert_eq!(t.as_millis(), 30);
        assert_eq!(t.as_micros(), 30_000);
    }

    #[test]
    fn add_duration_to_time() {
        let t = SimTime::from_millis(10) + SimDuration::from_millis(20);
        assert_eq!(t, SimTime::from_millis(30));
    }

    #[test]
    fn time_difference() {
        let a = SimTime::from_millis(100);
        let b = SimTime::from_millis(75);
        assert_eq!(a - b, SimDuration::from_millis(25));
        assert_eq!(b.since(a), SimDuration::ZERO, "since saturates");
    }

    #[test]
    fn hours_conversion() {
        let d = SimDuration::from_hours(150);
        assert_eq!(d.as_hours_f64(), 150.0);
        let d2 = SimDuration::from_hours_f64(0.5);
        assert_eq!(d2, SimDuration::from_secs(1800));
    }

    #[test]
    fn duration_arithmetic() {
        let d = SimDuration::from_millis(30) * 8;
        assert_eq!(d.as_millis(), 240);
        assert_eq!(d / 8, SimDuration::from_millis(30));
        let sum: SimDuration = (0..4).map(|_| SimDuration::from_millis(75)).sum();
        assert_eq!(sum.as_millis(), 300);
    }

    #[test]
    fn max_covers_mttf_horizon() {
        // Figure 6 talks about >500 year MTTFs; the clock must not overflow
        // well past that.
        let five_thousand_years = SimDuration::from_hours(5_000 * 8_766);
        let t = SimTime::ZERO + five_thousand_years;
        assert!(t < SimTime::MAX);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_millis(5).to_string(), "t=5.000ms");
        assert_eq!(SimDuration::from_micros(1500).to_string(), "1.500ms");
    }
}
