//! Lightweight structured tracing for simulation runs.
//!
//! Protocol code emits [`TraceEvent`]s into a [`Tracer`]; tests assert on the
//! recorded sequence (e.g. "a down-site read really did touch G other
//! sites"), and debug runs can dump it. Tracing is off by default and costs
//! one branch per emission when disabled.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One recorded protocol step.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Virtual time at which the step happened.
    pub at: SimTime,
    /// Acting entity, e.g. `site:3` or `client`.
    pub actor: String,
    /// Step kind, e.g. `parity_update`, `reconstruct`, `spare_write`.
    pub kind: String,
    /// Free-form detail (block numbers, UIDs, …).
    pub detail: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} {}: {}",
            self.at, self.actor, self.kind, self.detail
        )
    }
}

/// Collector of [`TraceEvent`]s.
#[derive(Debug, Default, Clone)]
pub struct Tracer {
    enabled: bool,
    events: Vec<TraceEvent>,
}

impl Tracer {
    /// A disabled tracer (emissions are dropped).
    pub fn disabled() -> Self {
        Tracer::default()
    }

    /// An enabled tracer that records everything.
    pub fn enabled() -> Self {
        Tracer {
            enabled: true,
            events: Vec::new(),
        }
    }

    /// Whether events are currently being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record an event (no-op when disabled).
    pub fn emit(
        &mut self,
        at: SimTime,
        actor: impl Into<String>,
        kind: impl Into<String>,
        detail: impl fmt::Display,
    ) {
        if self.enabled {
            self.events.push(TraceEvent {
                at,
                actor: actor.into(),
                kind: kind.into(),
                detail: detail.to_string(),
            });
        }
    }

    /// All recorded events in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events whose kind matches `kind`.
    pub fn of_kind<'a>(&'a self, kind: &'a str) -> impl Iterator<Item = &'a TraceEvent> + 'a {
        self.events.iter().filter(move |e| e.kind == kind)
    }

    /// Count of events of the given kind.
    pub fn count_kind(&self, kind: &str) -> usize {
        self.of_kind(kind).count()
    }

    /// Clear the recorded events, keeping the enabled state.
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::disabled();
        t.emit(SimTime::ZERO, "site:0", "write", "block 5");
        assert!(t.events().is_empty());
    }

    #[test]
    fn enabled_tracer_records_in_order() {
        let mut t = Tracer::enabled();
        t.emit(SimTime::from_millis(1), "site:0", "write", "block 5");
        t.emit(
            SimTime::from_millis(2),
            "site:1",
            "parity_update",
            "block 5",
        );
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.events()[0].kind, "write");
        assert_eq!(t.events()[1].actor, "site:1");
    }

    #[test]
    fn filter_by_kind() {
        let mut t = Tracer::enabled();
        for i in 0..3 {
            t.emit(SimTime::ZERO, "x", "reconstruct", i);
        }
        t.emit(SimTime::ZERO, "x", "write", 0);
        assert_eq!(t.count_kind("reconstruct"), 3);
        assert_eq!(t.count_kind("write"), 1);
        assert_eq!(t.count_kind("nope"), 0);
    }

    #[test]
    fn clear_keeps_enabled() {
        let mut t = Tracer::enabled();
        t.emit(SimTime::ZERO, "x", "k", "");
        t.clear();
        assert!(t.events().is_empty());
        assert!(t.is_enabled());
    }

    #[test]
    fn display_format() {
        let e = TraceEvent {
            at: SimTime::from_millis(5),
            actor: "site:2".into(),
            kind: "spare_write".into(),
            detail: "block 7".into(),
        };
        assert_eq!(e.to_string(), "[t=5.000ms] site:2 spare_write: block 7");
    }
}
