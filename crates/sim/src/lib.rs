//! # radd-sim — deterministic discrete-event simulation kernel
//!
//! The RADD testbed reproduces the evaluation of Stonebraker's *Distributed
//! RAID* paper on a laptop. Everything the paper measures — operation
//! latencies, network traffic, failure processes spanning simulated decades —
//! runs on top of this kernel:
//!
//! * [`SimTime`] / [`SimDuration`] — a virtual clock with microsecond
//!   resolution (the paper's cost constants are milliseconds).
//! * [`EventQueue`] — a cancellable priority queue of timestamped events,
//!   generic over the event payload, with deterministic FIFO tie-breaking.
//! * [`SimRng`] — a seeded random source with the exponential sampling the
//!   reliability models need (`rand_distr` is intentionally not a dependency).
//! * [`cost`] — the paper's Table-1 cost parameters (`R`, `W`, `RR`, `RW`)
//!   and the operation counters that Figures 3 and 4 are built from.
//!
//! Determinism is a hard requirement: two runs with the same seed must
//! produce byte-identical traces, so every source of ordering (the event
//! queue, the RNG) is fully specified.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod events;
pub mod rng;
pub mod time;
pub mod trace;

pub use cost::{CostLedger, CostParams, OpCounts, OpKind};
pub use events::{EventId, EventQueue};
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
pub use trace::{TraceEvent, Tracer};
