//! Property tests for the event kernel: ordering, cancellation, and clock
//! monotonicity under arbitrary schedules.

use proptest::prelude::*;
use radd_sim::{EventQueue, SimDuration, SimTime};

proptest! {
    /// Events always pop in non-decreasing time order, FIFO within ties,
    /// and the clock never runs backwards.
    #[test]
    fn pops_are_time_ordered_and_fifo(
        delays in proptest::collection::vec(0u64..1000, 1..200),
    ) {
        let mut q = EventQueue::new();
        for (i, &d) in delays.iter().enumerate() {
            q.schedule(SimDuration::from_millis(d), (d, i));
        }
        let mut last_time = SimTime::ZERO;
        let mut last_seq_at_time: Option<(u64, usize)> = None;
        while let Some((t, (d, seq))) = q.pop() {
            prop_assert!(t >= last_time, "clock went backwards");
            prop_assert_eq!(t, SimTime::from_millis(d));
            if t == last_time {
                if let Some((ld, ls)) = last_seq_at_time {
                    if ld == d {
                        prop_assert!(seq > ls, "FIFO violated within a tie");
                    }
                }
            }
            last_time = t;
            last_seq_at_time = Some((d, seq));
        }
    }

    /// Cancelled events never fire; everything else fires exactly once.
    #[test]
    fn cancellation_is_exact(
        delays in proptest::collection::vec(0u64..500, 1..100),
        cancel_mask in proptest::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut q = EventQueue::new();
        let mut ids = Vec::new();
        for (i, &d) in delays.iter().enumerate() {
            ids.push(q.schedule(SimDuration::from_millis(d), i));
        }
        let mut cancelled = Vec::new();
        for (i, id) in ids.iter().enumerate() {
            if *cancel_mask.get(i).unwrap_or(&false) {
                prop_assert!(q.cancel(*id));
                cancelled.push(i);
            }
        }
        let mut fired: Vec<usize> = Vec::new();
        while let Some((_, i)) = q.pop() {
            fired.push(i);
        }
        fired.sort_unstable();
        let expected: Vec<usize> =
            (0..delays.len()).filter(|i| !cancelled.contains(i)).collect();
        prop_assert_eq!(fired, expected);
    }

    /// run_until fires exactly the events at or before the deadline.
    #[test]
    fn run_until_respects_deadline_exactly(
        delays in proptest::collection::vec(1u64..1000, 1..100),
        deadline in 1u64..1000,
    ) {
        let mut q = EventQueue::new();
        for &d in &delays {
            q.schedule(SimDuration::from_millis(d), d);
        }
        let mut fired = Vec::new();
        q.run_until(SimTime::from_millis(deadline), |_, _, d| fired.push(d));
        let expect = delays.iter().filter(|&&d| d <= deadline).count();
        prop_assert_eq!(fired.len(), expect);
        prop_assert!(fired.iter().all(|&d| d <= deadline));
        prop_assert_eq!(q.len(), delays.len() - expect);
        prop_assert_eq!(q.now(), SimTime::from_millis(deadline));
    }
}
