//! Binary wire codec for the protocol [`Msg`] vocabulary.
//!
//! The socket runtime (`radd-rt`) ships messages over TCP; the vendored
//! serde shim serialises one way only (to JSON, for snapshots and dumps),
//! so real transport needs an explicit, versioned binary encoding. It lives
//! here — next to the message definitions it must stay in lockstep with —
//! and stays sans-IO: bytes in, bytes out, no framing, no checksums (the
//! transport layer owns those; see `radd-rt`'s frame module).
//!
//! Layout rules (all integers little-endian):
//!
//! * a message is one kind byte ([`MsgKind::index`]) followed by its fields
//!   in declaration order;
//! * `u64` fields are 8 bytes; site ids are `u32` (a cluster with 4 billion
//!   sites is not this codec's problem);
//! * block payloads are a `u32` length prefix plus raw bytes — decoding
//!   *slices* the refcounted input buffer, so a decoded block body shares
//!   the receive buffer with zero copies, exactly like the in-process
//!   runtimes share their `Bytes`;
//! * enums ([`SpareContent`], [`NackReason`], `Option`s) are one tag byte
//!   plus the selected variant's fields.
//!
//! Decoding is hardened against hostile or corrupt input: every read is
//! bounds-checked, length prefixes are validated against the *remaining*
//! input before any allocation (a 4 GiB length prefix on a 40-byte frame
//! errors immediately instead of attempting the allocation), unknown tags
//! are errors, and trailing bytes after a complete message are rejected.
//! `decode_msg(encode_msg(m)) == m` for every message — pinned by the
//! `radd-rt` codec property tests.

use crate::wire::{Msg, MsgKind, NackReason, SpareContent, SpareSlotWire};
use bytes::Bytes;
use radd_parity::Uid;
use std::fmt;

/// Why a byte sequence failed to decode as a [`Msg`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before the message did.
    Truncated {
        /// What was being read when the input ran out.
        field: &'static str,
    },
    /// The kind byte names no [`MsgKind`].
    UnknownKind(u8),
    /// An enum tag byte names no variant.
    UnknownTag {
        /// Which enum.
        what: &'static str,
        /// The offending tag.
        tag: u8,
    },
    /// A length prefix exceeds the bytes actually present — corrupt, or an
    /// over-allocation attempt.
    BadLength {
        /// Which field.
        field: &'static str,
        /// The claimed length.
        claimed: u64,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// Bytes left over after a complete message.
    Trailing {
        /// How many.
        extra: usize,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { field } => write!(f, "input truncated while reading {field}"),
            CodecError::UnknownKind(k) => write!(f, "unknown message kind byte {k:#04x}"),
            CodecError::UnknownTag { what, tag } => {
                write!(f, "unknown {what} tag byte {tag:#04x}")
            }
            CodecError::BadLength {
                field,
                claimed,
                remaining,
            } => write!(
                f,
                "{field} claims {claimed} bytes but only {remaining} remain"
            ),
            CodecError::Trailing { extra } => {
                write!(f, "{extra} trailing bytes after a complete message")
            }
        }
    }
}

impl std::error::Error for CodecError {}

// ---- encoding ---------------------------------------------------------

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_site(buf: &mut Vec<u8>, site: usize) {
    put_u32(buf, u32::try_from(site).expect("site id fits in u32"));
}

fn put_bytes(buf: &mut Vec<u8>, data: &[u8]) {
    put_u32(buf, u32::try_from(data.len()).expect("block fits in u32"));
    buf.extend_from_slice(data);
}

fn put_uid(buf: &mut Vec<u8>, uid: Uid) {
    put_u64(buf, uid.as_raw());
}

fn put_uid_vec(buf: &mut Vec<u8>, uids: &[Uid]) {
    put_u32(
        buf,
        u32::try_from(uids.len()).expect("uid array fits in u32"),
    );
    for &u in uids {
        put_uid(buf, u);
    }
}

fn put_content(buf: &mut Vec<u8>, content: &SpareContent) {
    match content {
        SpareContent::Data { uid } => {
            buf.push(0);
            put_uid(buf, *uid);
        }
        SpareContent::Parity { uids } => {
            buf.push(1);
            put_uid_vec(buf, uids);
        }
    }
}

const fn nack_tag(reason: NackReason) -> u8 {
    match reason {
        NackReason::Down => 0,
        NackReason::OutOfRange => 1,
        NackReason::BadSize => 2,
        NackReason::Unavailable => 3,
        NackReason::Conflict => 4,
    }
}

/// Append the binary encoding of `msg` to `buf`.
pub fn encode_msg(msg: &Msg, buf: &mut Vec<u8>) {
    buf.push(msg.kind().index() as u8);
    match msg {
        Msg::Read { index, tag } => {
            put_u64(buf, *index);
            put_u64(buf, *tag);
        }
        Msg::Write { index, data, tag } => {
            put_u64(buf, *index);
            put_bytes(buf, data);
            put_u64(buf, *tag);
        }
        Msg::ParityUpdate {
            row,
            mask_wire,
            uid,
            from_site,
            tag,
        } => {
            put_u64(buf, *row);
            put_bytes(buf, mask_wire);
            put_uid(buf, *uid);
            put_site(buf, *from_site);
            put_u64(buf, *tag);
        }
        Msg::SpareProbe {
            row,
            want_data,
            tag,
        } => {
            put_u64(buf, *row);
            buf.push(u8::from(*want_data));
            put_u64(buf, *tag);
        }
        Msg::SpareInstall {
            row,
            for_site,
            data,
            content,
            tag,
        } => {
            put_u64(buf, *row);
            put_site(buf, *for_site);
            put_bytes(buf, data);
            put_content(buf, content);
            put_u64(buf, *tag);
        }
        Msg::BlockRead { row, tag } => {
            put_u64(buf, *row);
            put_u64(buf, *tag);
        }
        Msg::SpareDrainList { for_site, tag } => {
            put_site(buf, *for_site);
            put_u64(buf, *tag);
        }
        Msg::SpareTake { row, tag } => {
            put_u64(buf, *row);
            put_u64(buf, *tag);
        }
        Msg::RestoreBlock {
            row,
            data,
            content,
            tag,
        } => {
            put_u64(buf, *row);
            put_bytes(buf, data);
            put_content(buf, content);
            put_u64(buf, *tag);
        }
        Msg::ReadOk { tag, data } => {
            put_u64(buf, *tag);
            put_bytes(buf, data);
        }
        Msg::WriteOk { tag } => put_u64(buf, *tag),
        Msg::Ack { tag } => put_u64(buf, *tag),
        Msg::Nack { tag, reason } => {
            put_u64(buf, *tag);
            buf.push(nack_tag(*reason));
        }
        Msg::BlockData {
            tag,
            data,
            uid,
            parity_uids,
        } => {
            put_u64(buf, *tag);
            put_bytes(buf, data);
            put_uid(buf, *uid);
            match parity_uids {
                None => buf.push(0),
                Some(uids) => {
                    buf.push(1);
                    put_uid_vec(buf, uids);
                }
            }
        }
        Msg::SpareState { tag, slot } => {
            put_u64(buf, *tag);
            match slot {
                None => buf.push(0),
                Some(SpareSlotWire {
                    for_site,
                    data,
                    content,
                }) => {
                    buf.push(1);
                    put_site(buf, *for_site);
                    put_bytes(buf, data);
                    put_content(buf, content);
                }
            }
        }
        Msg::SpareRows { tag, rows } => {
            put_u64(buf, *tag);
            put_u32(
                buf,
                u32::try_from(rows.len()).expect("row list fits in u32"),
            );
            for &r in rows {
                put_u64(buf, r);
            }
        }
    }
}

/// [`encode_msg`] into a fresh buffer.
pub fn encode_msg_vec(msg: &Msg) -> Vec<u8> {
    let mut buf = Vec::with_capacity(msg.wire_size() + 16);
    encode_msg(msg, &mut buf);
    buf
}

// ---- decoding ---------------------------------------------------------

/// Bounds-checked cursor over a refcounted input buffer. Block payloads are
/// *sliced*, not copied, so the decoded message shares the receive buffer.
struct Cursor<'a> {
    input: &'a Bytes,
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn remaining(&self) -> usize {
        self.input.len() - self.pos
    }

    fn take(&mut self, n: usize, field: &'static str) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated { field });
        }
        let s = &self.input[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self, field: &'static str) -> Result<u8, CodecError> {
        Ok(self.take(1, field)?[0])
    }

    fn u32(&mut self, field: &'static str) -> Result<u32, CodecError> {
        let s = self.take(4, field)?;
        Ok(u32::from_le_bytes(s.try_into().expect("4-byte slice")))
    }

    fn u64(&mut self, field: &'static str) -> Result<u64, CodecError> {
        let s = self.take(8, field)?;
        Ok(u64::from_le_bytes(s.try_into().expect("8-byte slice")))
    }

    fn site(&mut self, field: &'static str) -> Result<usize, CodecError> {
        Ok(self.u32(field)? as usize)
    }

    fn bool(&mut self, field: &'static str) -> Result<bool, CodecError> {
        match self.u8(field)? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(CodecError::UnknownTag { what: field, tag }),
        }
    }

    fn uid(&mut self, field: &'static str) -> Result<Uid, CodecError> {
        Ok(Uid::from_raw(self.u64(field)?))
    }

    /// A length-prefixed payload, validated against the remaining input
    /// *before* anything is allocated, then sliced zero-copy.
    fn bytes(&mut self, field: &'static str) -> Result<Bytes, CodecError> {
        let len = self.u32(field)? as usize;
        if self.remaining() < len {
            return Err(CodecError::BadLength {
                field,
                claimed: len as u64,
                remaining: self.remaining(),
            });
        }
        let b = self.input.slice(self.pos..self.pos + len);
        self.pos += len;
        Ok(b)
    }

    fn uid_vec(&mut self, field: &'static str) -> Result<Vec<Uid>, CodecError> {
        let count = self.u32(field)? as usize;
        // 8 bytes per UID must already be present; checked before the
        // allocation so a corrupt count cannot balloon memory.
        if self.remaining() < count.saturating_mul(8) {
            return Err(CodecError::BadLength {
                field,
                claimed: count as u64 * 8,
                remaining: self.remaining(),
            });
        }
        let mut uids = Vec::with_capacity(count);
        for _ in 0..count {
            uids.push(self.uid(field)?);
        }
        Ok(uids)
    }

    fn content(&mut self) -> Result<SpareContent, CodecError> {
        match self.u8("spare content tag")? {
            0 => Ok(SpareContent::Data {
                uid: self.uid("spare data uid")?,
            }),
            1 => Ok(SpareContent::Parity {
                uids: self.uid_vec("spare parity uids")?,
            }),
            tag => Err(CodecError::UnknownTag {
                what: "SpareContent",
                tag,
            }),
        }
    }
}

fn decode_body(kind: MsgKind, c: &mut Cursor<'_>) -> Result<Msg, CodecError> {
    Ok(match kind {
        MsgKind::Read => Msg::Read {
            index: c.u64("read index")?,
            tag: c.u64("read tag")?,
        },
        MsgKind::Write => Msg::Write {
            index: c.u64("write index")?,
            data: c.bytes("write data")?,
            tag: c.u64("write tag")?,
        },
        MsgKind::ParityUpdate => Msg::ParityUpdate {
            row: c.u64("parity row")?,
            mask_wire: c.bytes("parity mask")?,
            uid: c.uid("parity uid")?,
            from_site: c.site("parity from_site")?,
            tag: c.u64("parity tag")?,
        },
        MsgKind::SpareProbe => Msg::SpareProbe {
            row: c.u64("probe row")?,
            want_data: c.bool("probe want_data")?,
            tag: c.u64("probe tag")?,
        },
        MsgKind::SpareInstall => Msg::SpareInstall {
            row: c.u64("install row")?,
            for_site: c.site("install for_site")?,
            data: c.bytes("install data")?,
            content: c.content()?,
            tag: c.u64("install tag")?,
        },
        MsgKind::BlockRead => Msg::BlockRead {
            row: c.u64("block-read row")?,
            tag: c.u64("block-read tag")?,
        },
        MsgKind::SpareDrainList => Msg::SpareDrainList {
            for_site: c.site("drain-list for_site")?,
            tag: c.u64("drain-list tag")?,
        },
        MsgKind::SpareTake => Msg::SpareTake {
            row: c.u64("take row")?,
            tag: c.u64("take tag")?,
        },
        MsgKind::RestoreBlock => Msg::RestoreBlock {
            row: c.u64("restore row")?,
            data: c.bytes("restore data")?,
            content: c.content()?,
            tag: c.u64("restore tag")?,
        },
        MsgKind::ReadOk => Msg::ReadOk {
            tag: c.u64("read-ok tag")?,
            data: c.bytes("read-ok data")?,
        },
        MsgKind::WriteOk => Msg::WriteOk {
            tag: c.u64("write-ok tag")?,
        },
        MsgKind::Ack => Msg::Ack {
            tag: c.u64("ack tag")?,
        },
        MsgKind::Nack => Msg::Nack {
            tag: c.u64("nack tag")?,
            reason: match c.u8("nack reason")? {
                0 => NackReason::Down,
                1 => NackReason::OutOfRange,
                2 => NackReason::BadSize,
                3 => NackReason::Unavailable,
                4 => NackReason::Conflict,
                tag => {
                    return Err(CodecError::UnknownTag {
                        what: "NackReason",
                        tag,
                    })
                }
            },
        },
        MsgKind::BlockData => Msg::BlockData {
            tag: c.u64("block-data tag")?,
            data: c.bytes("block-data data")?,
            uid: c.uid("block-data uid")?,
            parity_uids: match c.u8("block-data parity option")? {
                0 => None,
                1 => Some(c.uid_vec("block-data parity uids")?),
                tag => {
                    return Err(CodecError::UnknownTag {
                        what: "Option<parity uids>",
                        tag,
                    })
                }
            },
        },
        MsgKind::SpareState => Msg::SpareState {
            tag: c.u64("spare-state tag")?,
            slot: match c.u8("spare-state option")? {
                0 => None,
                1 => Some(SpareSlotWire {
                    for_site: c.site("spare-state for_site")?,
                    data: c.bytes("spare-state data")?,
                    content: c.content()?,
                }),
                tag => {
                    return Err(CodecError::UnknownTag {
                        what: "Option<SpareSlotWire>",
                        tag,
                    })
                }
            },
        },
        MsgKind::SpareRows => {
            let tag = c.u64("spare-rows tag")?;
            let count = c.u32("spare-rows count")? as usize;
            if c.remaining() < count.saturating_mul(8) {
                return Err(CodecError::BadLength {
                    field: "spare-rows list",
                    claimed: count as u64 * 8,
                    remaining: c.remaining(),
                });
            }
            let mut rows = Vec::with_capacity(count);
            for _ in 0..count {
                rows.push(c.u64("spare-rows entry")?);
            }
            Msg::SpareRows { tag, rows }
        }
    })
}

/// Decode one complete [`Msg`] from `input`. Block payloads are zero-copy
/// slices of `input`; the whole input must be consumed exactly.
pub fn decode_msg(input: &Bytes) -> Result<Msg, CodecError> {
    let mut c = Cursor { input, pos: 0 };
    let kind_byte = c.u8("kind byte")?;
    let kind = *MsgKind::ALL
        .iter()
        .find(|k| k.index() == kind_byte as usize)
        .ok_or(CodecError::UnknownKind(kind_byte))?;
    let msg = decode_body(kind, &mut c)?;
    if c.remaining() > 0 {
        return Err(CodecError::Trailing {
            extra: c.remaining(),
        });
    }
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: &Msg) {
        let enc = encode_msg_vec(msg);
        let got = decode_msg(&Bytes::from(enc)).unwrap_or_else(|e| {
            panic!("decode of {:?} failed: {e}", msg.kind());
        });
        assert_eq!(&got, msg, "{:?}", msg.kind());
    }

    #[test]
    fn every_kind_roundtrips() {
        let msgs = vec![
            Msg::Read { index: 3, tag: 7 },
            Msg::Write {
                index: 1,
                data: Bytes::from(vec![9; 64]),
                tag: 8,
            },
            Msg::ParityUpdate {
                row: 5,
                mask_wire: Bytes::from(vec![1, 2, 3]),
                uid: Uid::from_raw(42),
                from_site: 2,
                tag: 9,
            },
            Msg::SpareProbe {
                row: 4,
                want_data: true,
                tag: 10,
            },
            Msg::SpareInstall {
                row: 4,
                for_site: 1,
                data: Bytes::from(vec![7; 16]),
                content: SpareContent::Parity {
                    uids: vec![Uid::INVALID, Uid::from_raw(3)],
                },
                tag: 11,
            },
            Msg::BlockRead { row: 2, tag: 12 },
            Msg::SpareDrainList {
                for_site: 0,
                tag: 13,
            },
            Msg::SpareTake { row: 1, tag: 14 },
            Msg::RestoreBlock {
                row: 0,
                data: Bytes::from(vec![5; 8]),
                content: SpareContent::Data {
                    uid: Uid::from_raw(77),
                },
                tag: 15,
            },
            Msg::ReadOk {
                tag: 16,
                data: Bytes::from(vec![1; 32]),
            },
            Msg::WriteOk { tag: 17 },
            Msg::Ack { tag: 18 },
            Msg::Nack {
                tag: 19,
                reason: NackReason::Conflict,
            },
            Msg::BlockData {
                tag: 20,
                data: Bytes::from(vec![2; 4]),
                uid: Uid::from_raw(1),
                parity_uids: Some(vec![Uid::from_raw(2)]),
            },
            Msg::SpareState {
                tag: 21,
                slot: Some(SpareSlotWire {
                    for_site: 3,
                    data: Bytes::from(vec![3; 4]),
                    content: SpareContent::Data { uid: Uid::INVALID },
                }),
            },
            Msg::SpareState {
                tag: 22,
                slot: None,
            },
            Msg::SpareRows {
                tag: 23,
                rows: vec![0, 9, 11],
            },
        ];
        for m in &msgs {
            roundtrip(m);
        }
    }

    #[test]
    fn decoded_payload_shares_the_input_buffer() {
        let msg = Msg::Write {
            index: 0,
            data: Bytes::from(vec![0xAB; 128]),
            tag: 1,
        };
        let input = Bytes::from(encode_msg_vec(&msg));
        let Msg::Write { data, .. } = decode_msg(&input).unwrap() else {
            panic!("wrong kind");
        };
        // The shim's slice() shares the Arc; equal content proves the right
        // window, and no copy is observable through len/capacity tricks —
        // the zero-copy property is structural (Bytes::slice never copies).
        assert_eq!(&data[..], &[0xAB; 128][..]);
    }

    #[test]
    fn oversized_length_prefix_errors_before_allocating() {
        // A Write whose data length claims 4 GiB on a tiny input.
        let mut buf = vec![MsgKind::Write.index() as u8];
        buf.extend_from_slice(&0u64.to_le_bytes());
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&[0; 4]);
        let err = decode_msg(&Bytes::from(buf)).unwrap_err();
        assert!(matches!(err, CodecError::BadLength { .. }), "got {err:?}");
    }

    #[test]
    fn truncation_and_trailing_are_rejected() {
        let enc = encode_msg_vec(&Msg::Ack { tag: 5 });
        for cut in 0..enc.len() {
            let err = decode_msg(&Bytes::from(enc[..cut].to_vec())).unwrap_err();
            assert!(
                matches!(
                    err,
                    CodecError::Truncated { .. } | CodecError::UnknownKind(_)
                ),
                "cut at {cut}: {err:?}"
            );
        }
        let mut padded = enc;
        padded.push(0);
        assert!(matches!(
            decode_msg(&Bytes::from(padded)).unwrap_err(),
            CodecError::Trailing { extra: 1 }
        ));
    }

    #[test]
    fn unknown_kind_and_tags_are_rejected() {
        assert_eq!(
            decode_msg(&Bytes::from(vec![0xEE])).unwrap_err(),
            CodecError::UnknownKind(0xEE)
        );
        let mut nack = vec![MsgKind::Nack.index() as u8];
        nack.extend_from_slice(&1u64.to_le_bytes());
        nack.push(99);
        assert!(matches!(
            decode_msg(&Bytes::from(nack)).unwrap_err(),
            CodecError::UnknownTag {
                what: "NackReason",
                ..
            }
        ));
    }
}
