//! Output effects emitted by the protocol machines.
//!
//! The machines never touch a socket, a clock, or a cost ledger. Instead
//! every externally visible action is described by an [`Effect`] pushed into
//! the caller's buffer, and the surrounding *driver* interprets it:
//!
//! * the DES cluster turns `Send` into synchronous in-memory delivery and
//!   `Io` into Figure-3 cost-ledger charges,
//! * the threaded runtime turns `Send` into endpoint sends and `SetTimer`
//!   into retransmission deadlines.

use crate::wire::Msg;
use bytes::Bytes;
use serde::{Deserialize, Serialize};

/// Where a message goes: a protocol site (routable by site id) or an opaque
/// peer endpoint (whoever sent us the request — typically a client).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Dest {
    /// Protocol site `s`; the driver maps this to that site's address.
    Site(usize),
    /// Opaque peer id, echoed from the incoming event's `src`.
    Peer(usize),
}

/// Why a machine touched local stable storage. Drivers use this to decide
/// what a block access costs (Figure 3) and which traffic bucket it fills.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IoPurpose {
    /// Foreground data read serving a client `Read`.
    Data,
    /// W2: read of the old value before an overwrite (served from the
    /// buffer pool in the paper's costing — drivers charge nothing).
    OldValue,
    /// W1: the new data block hitting stable storage.
    WriteData,
    /// W4: parity read-modify-write (charged once at send time by the
    /// paper's convention — drivers charge nothing here).
    ParityApply,
    /// Read of a spare slot's payload.
    SpareRead,
    /// Write installing a block into a spare slot.
    SpareInstall,
    /// Source-block read feeding an XOR reconstruction.
    Reconstruct,
    /// Write of a drained/reconstructed block back onto a recovered disk.
    Restore,
    /// Read replaying a committed log suffix while a crashed site reopens
    /// its durable store (§3.4 WAL recovery; always background).
    LogReplay,
}

impl IoPurpose {
    /// Number of purposes; sizes dense per-purpose counter arrays.
    pub const COUNT: usize = 9;

    /// Every purpose, in [`IoPurpose::index`] order.
    pub const ALL: [IoPurpose; IoPurpose::COUNT] = [
        IoPurpose::Data,
        IoPurpose::OldValue,
        IoPurpose::WriteData,
        IoPurpose::ParityApply,
        IoPurpose::SpareRead,
        IoPurpose::SpareInstall,
        IoPurpose::Reconstruct,
        IoPurpose::Restore,
        IoPurpose::LogReplay,
    ];

    /// Dense index into a `[_; IoPurpose::COUNT]` counter array.
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Short stable name, used as a metrics key and in text snapshots.
    pub const fn name(self) -> &'static str {
        match self {
            IoPurpose::Data => "data",
            IoPurpose::OldValue => "old_value",
            IoPurpose::WriteData => "write_data",
            IoPurpose::ParityApply => "parity_apply",
            IoPurpose::SpareRead => "spare_read",
            IoPurpose::SpareInstall => "spare_install",
            IoPurpose::Reconstruct => "reconstruct",
            IoPurpose::Restore => "restore",
            IoPurpose::LogReplay => "log_replay",
        }
    }
}

/// A local block device fault surfaced to a machine during I/O.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockFault;

/// Local stable storage as seen by a machine: rows of fixed-size blocks.
///
/// The machine performs real reads/writes through this trait (it needs the
/// bytes to compute masks and XORs) and *additionally* reports each access
/// as an [`Effect::Read`]/[`Effect::Write`] receipt so drivers can account
/// for it without re-deriving the protocol.
pub trait Blocks {
    /// Read physical row `row`. `Err(BlockFault)` means the disk holding it
    /// is failed/lost. The returned [`Bytes`] is a refcounted view — storage
    /// backends hand out their buffer without copying, and the machine can
    /// forward it into a reply without copying either.
    fn read(&mut self, row: u64) -> Result<Bytes, BlockFault>;
    /// Write physical row `row`.
    fn write(&mut self, row: u64, data: &[u8]) -> Result<(), BlockFault>;
    /// Write physical row `row`, taking ownership of the buffer. In-memory
    /// backends can adopt the refcounted buffer as-is — a message body
    /// lands in storage without a copy. Defaults to [`write`](Blocks::write).
    fn write_owned(&mut self, row: u64, data: Bytes) -> Result<(), BlockFault> {
        self.write(row, &data)
    }
}

/// In-memory [`Blocks`]: one refcounted buffer per row, never faults.
/// Used by tests, proptests, and the protocol microbench.
#[derive(Debug, Clone)]
pub struct MemBlocks {
    zero: Bytes,
    rows: Vec<Option<Bytes>>,
}

impl MemBlocks {
    /// `rows` zeroed blocks of `block_size` bytes.
    pub fn new(rows: u64, block_size: usize) -> MemBlocks {
        MemBlocks {
            zero: Bytes::from(vec![0; block_size]),
            rows: vec![None; rows as usize],
        }
    }
}

impl Blocks for MemBlocks {
    fn read(&mut self, row: u64) -> Result<Bytes, BlockFault> {
        Ok(self.rows[row as usize]
            .clone()
            .unwrap_or_else(|| self.zero.clone()))
    }

    fn write(&mut self, row: u64, data: &[u8]) -> Result<(), BlockFault> {
        self.rows[row as usize] = Some(Bytes::copy_from_slice(data));
        Ok(())
    }

    fn write_owned(&mut self, row: u64, data: Bytes) -> Result<(), BlockFault> {
        self.rows[row as usize] = Some(data);
        Ok(())
    }
}

/// An externally visible action requested by a protocol machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Effect {
    /// Transmit `msg` to `to`; `wire` is its charged size.
    Send {
        /// Destination.
        to: Dest,
        /// The message.
        msg: Msg,
        /// Charged wire bytes ([`Msg::wire_size`]).
        wire: usize,
        /// True when this send is a stop-and-wait *retransmission* of an
        /// already-charged message; drivers resend but do not re-charge.
        retransmit: bool,
        /// True when this send replays a cached reply to a duplicate
        /// request; drivers resend but do not re-charge.
        replay: bool,
    },
    /// Receipt: the machine read local row `row` for `purpose`.
    Read {
        /// Physical row.
        row: u64,
        /// Why.
        purpose: IoPurpose,
    },
    /// Receipt: the machine wrote local row `row` for `purpose`.
    Write {
        /// Physical row.
        row: u64,
        /// Why.
        purpose: IoPurpose,
    },
    /// The reply to request `tag` is deferred until the row's parity update
    /// is acknowledged (W1 done, W4 pending).
    DeferAck {
        /// Deferred request tag.
        tag: u64,
        /// Row whose parity ack gates the reply.
        row: u64,
    },
    /// Arm the stop-and-wait retransmit timer for outstanding tag `tag`.
    /// `step` counts retransmissions so drivers can back off; sans-IO
    /// machines never see wall-clock durations.
    SetTimer {
        /// Outstanding request tag.
        tag: u64,
        /// Retransmission count so far (0 on first send).
        step: u32,
    },
    /// Disarm the retransmit timer for `tag` (it was acknowledged).
    ClearTimer {
        /// Acknowledged tag.
        tag: u64,
    },
    /// A parity update arrived for a row this site has not yet rebuilt
    /// (recovering site, invalidated row). The machine did not reply; the
    /// driver must rebuild the row and re-deliver the update.
    NeedParityRebuild {
        /// Row to rebuild.
        row: u64,
    },
    /// A parity update arrived but the disk holding the row is failed; the
    /// machine did not reply. The driver must redirect the update to the
    /// row's spare site.
    ParityUnservable {
        /// Row whose parity cannot be served locally.
        row: u64,
    },
}

impl Effect {
    /// Convenience constructor for a first-time (chargeable) send.
    pub fn send(to: Dest, msg: Msg) -> Effect {
        let wire = msg.wire_size();
        Effect::Send {
            to,
            msg,
            wire,
            retransmit: false,
            replay: false,
        }
    }
}
