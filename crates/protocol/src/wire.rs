//! Wire vocabulary shared by every RADD transport.
//!
//! These are *logical* messages: the threaded runtime serialises them with
//! serde over its loopback endpoints, the DES cluster passes them by value.
//! [`Msg::wire_size`] pins the §7.4 accounting next to the message itself so
//! both interpreters charge identical bytes for identical sends.

use bytes::Bytes;
use radd_parity::Uid;
use serde::{Deserialize, Serialize};

/// Fixed header overhead charged for any message that carries block data.
pub const BLOCK_MSG_HEADER: usize = 24;

/// Wire size charged for a control message (probe, ack, small request).
pub const CONTROL_MSG_BYTES: usize = 16;

/// What a spare slot holds, as shipped over the wire (§3.2 / §3.3).
///
/// A spare standing in for a *data* block carries that block's UID; a spare
/// standing in for a *parity* block carries the parity block's whole UID
/// array, because §3.3 read validation needs it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpareContent {
    /// Spare holds a data block with this UID.
    Data {
        /// UID minted for the redirected write.
        uid: Uid,
    },
    /// Spare holds a parity block with this per-site UID array.
    Parity {
        /// UID array slots, indexed by site.
        uids: Vec<Uid>,
    },
}

/// A spare slot as reported by a probe: who it substitutes for, the block
/// payload, and the metadata needed to validate/restore it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpareSlotWire {
    /// Site whose block this spare stands in for.
    pub for_site: usize,
    /// Block payload (refcounted: replies, caches, and retransmit queues
    /// share one buffer).
    pub data: Bytes,
    /// UID metadata (data UID or parity UID array).
    pub content: SpareContent,
}

/// Why a request was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NackReason {
    /// The site is administratively down.
    Down,
    /// Block index out of range.
    OutOfRange,
    /// Payload length does not match the configured block size.
    BadSize,
    /// The block cannot be served from this site (lost disk, stale row).
    Unavailable,
    /// A spare install conflicts with an existing slot for another site.
    Conflict,
}

/// Protocol messages. Requests carry a `tag` echoed by the reply, so a
/// stop-and-wait sender can match responses and a receiver can deduplicate
/// retransmissions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Msg {
    // ---- requests ----------------------------------------------------
    /// Client read of data block `index` at the receiving site.
    Read {
        /// Site-local data block index.
        index: u64,
        /// Request tag.
        tag: u64,
    },
    /// Client write of data block `index` (W1 at the receiving site).
    Write {
        /// Site-local data block index.
        index: u64,
        /// New block payload.
        data: Bytes,
        /// Request tag.
        tag: u64,
    },
    /// W3: change mask shipped to the parity site (or a stand-in spare).
    ParityUpdate {
        /// Physical row being updated.
        row: u64,
        /// Encoded [`radd_parity::ChangeMask`].
        mask_wire: Bytes,
        /// UID minted by the writer for this version.
        uid: Uid,
        /// Site whose data block changed.
        from_site: usize,
        /// Request tag.
        tag: u64,
    },
    /// Does the receiving site hold a spare for `row`, and for whom?
    SpareProbe {
        /// Physical row.
        row: u64,
        /// Ship the slot's block payload with the answer (a charged spare
        /// read). `false` probes ownership only — a pure control exchange.
        want_data: bool,
        /// Request tag.
        tag: u64,
    },
    /// Install a block into the receiving site's spare slot for `row`.
    SpareInstall {
        /// Physical row.
        row: u64,
        /// Site the spare stands in for.
        for_site: usize,
        /// Block payload.
        data: Bytes,
        /// UID metadata for the installed block.
        content: SpareContent,
        /// Request tag.
        tag: u64,
    },
    /// Raw block read for reconstruction: returns the block plus UID
    /// metadata (§3.3 validation).
    BlockRead {
        /// Physical row.
        row: u64,
        /// Request tag.
        tag: u64,
    },
    /// List rows for which the receiving site holds spares for `for_site`.
    SpareDrainList {
        /// Recovering site draining its redirected writes.
        for_site: usize,
        /// Request tag.
        tag: u64,
    },
    /// Release the receiving site's spare slot for `row` (recovery drained
    /// it). Idempotent; acked even if the slot is already gone.
    SpareTake {
        /// Physical row.
        row: u64,
        /// Request tag.
        tag: u64,
    },
    /// Write a drained/reconstructed block back to the recovering site.
    RestoreBlock {
        /// Physical row.
        row: u64,
        /// Block payload.
        data: Bytes,
        /// UID metadata to restore alongside the block.
        content: SpareContent,
        /// Request tag.
        tag: u64,
    },
    // ---- replies -----------------------------------------------------
    /// Successful read.
    ReadOk {
        /// Echoed request tag.
        tag: u64,
        /// Block payload.
        data: Bytes,
    },
    /// Write fully applied (W1–W4 complete: parity acked).
    WriteOk {
        /// Echoed request tag.
        tag: u64,
    },
    /// Generic success for parity updates, installs, takes, restores.
    Ack {
        /// Echoed request tag.
        tag: u64,
    },
    /// Refusal.
    Nack {
        /// Echoed request tag.
        tag: u64,
        /// Why.
        reason: NackReason,
    },
    /// Reply to [`Msg::BlockRead`].
    BlockData {
        /// Echoed request tag.
        tag: u64,
        /// Block payload.
        data: Bytes,
        /// Block UID (data rows) or `Uid::INVALID` for parity rows.
        uid: Uid,
        /// Parity UID array when the row is a parity row at this site.
        parity_uids: Option<Vec<Uid>>,
    },
    /// Reply to [`Msg::SpareProbe`].
    SpareState {
        /// Echoed request tag.
        tag: u64,
        /// The slot, if one exists.
        slot: Option<SpareSlotWire>,
    },
    /// Reply to [`Msg::SpareDrainList`].
    SpareRows {
        /// Echoed request tag.
        tag: u64,
        /// Rows with spares held for the requested site.
        rows: Vec<u64>,
    },
}

/// Discriminant of a [`Msg`], used in effect traces and stats.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum MsgKind {
    Read,
    Write,
    ParityUpdate,
    SpareProbe,
    SpareInstall,
    BlockRead,
    SpareDrainList,
    SpareTake,
    RestoreBlock,
    ReadOk,
    WriteOk,
    Ack,
    Nack,
    BlockData,
    SpareState,
    SpareRows,
}

impl MsgKind {
    /// Number of kinds; sizes dense per-kind counter arrays.
    pub const COUNT: usize = 16;

    /// Every kind, in [`MsgKind::index`] order.
    pub const ALL: [MsgKind; MsgKind::COUNT] = [
        MsgKind::Read,
        MsgKind::Write,
        MsgKind::ParityUpdate,
        MsgKind::SpareProbe,
        MsgKind::SpareInstall,
        MsgKind::BlockRead,
        MsgKind::SpareDrainList,
        MsgKind::SpareTake,
        MsgKind::RestoreBlock,
        MsgKind::ReadOk,
        MsgKind::WriteOk,
        MsgKind::Ack,
        MsgKind::Nack,
        MsgKind::BlockData,
        MsgKind::SpareState,
        MsgKind::SpareRows,
    ];

    /// Dense index into a `[_; MsgKind::COUNT]` counter array.
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Short stable name, used as a metrics key and in text snapshots.
    pub const fn name(self) -> &'static str {
        match self {
            MsgKind::Read => "read",
            MsgKind::Write => "write",
            MsgKind::ParityUpdate => "parity_update",
            MsgKind::SpareProbe => "spare_probe",
            MsgKind::SpareInstall => "spare_install",
            MsgKind::BlockRead => "block_read",
            MsgKind::SpareDrainList => "spare_drain_list",
            MsgKind::SpareTake => "spare_take",
            MsgKind::RestoreBlock => "restore_block",
            MsgKind::ReadOk => "read_ok",
            MsgKind::WriteOk => "write_ok",
            MsgKind::Ack => "ack",
            MsgKind::Nack => "nack",
            MsgKind::BlockData => "block_data",
            MsgKind::SpareState => "spare_state",
            MsgKind::SpareRows => "spare_rows",
        }
    }
}

impl Msg {
    /// The request/reply tag carried by every message.
    pub fn tag(&self) -> u64 {
        match self {
            Msg::Read { tag, .. }
            | Msg::Write { tag, .. }
            | Msg::ParityUpdate { tag, .. }
            | Msg::SpareProbe { tag, .. }
            | Msg::SpareInstall { tag, .. }
            | Msg::BlockRead { tag, .. }
            | Msg::SpareDrainList { tag, .. }
            | Msg::SpareTake { tag, .. }
            | Msg::RestoreBlock { tag, .. }
            | Msg::ReadOk { tag, .. }
            | Msg::WriteOk { tag }
            | Msg::Ack { tag }
            | Msg::Nack { tag, .. }
            | Msg::BlockData { tag, .. }
            | Msg::SpareState { tag, .. }
            | Msg::SpareRows { tag, .. } => *tag,
        }
    }

    /// Message kind for traces.
    pub fn kind(&self) -> MsgKind {
        match self {
            Msg::Read { .. } => MsgKind::Read,
            Msg::Write { .. } => MsgKind::Write,
            Msg::ParityUpdate { .. } => MsgKind::ParityUpdate,
            Msg::SpareProbe { .. } => MsgKind::SpareProbe,
            Msg::SpareInstall { .. } => MsgKind::SpareInstall,
            Msg::BlockRead { .. } => MsgKind::BlockRead,
            Msg::SpareDrainList { .. } => MsgKind::SpareDrainList,
            Msg::SpareTake { .. } => MsgKind::SpareTake,
            Msg::RestoreBlock { .. } => MsgKind::RestoreBlock,
            Msg::ReadOk { .. } => MsgKind::ReadOk,
            Msg::WriteOk { .. } => MsgKind::WriteOk,
            Msg::Ack { .. } => MsgKind::Ack,
            Msg::Nack { .. } => MsgKind::Nack,
            Msg::BlockData { .. } => MsgKind::BlockData,
            Msg::SpareState { .. } => MsgKind::SpareState,
            Msg::SpareRows { .. } => MsgKind::SpareRows,
        }
    }

    /// Is this a request (something a reply cache should deduplicate)?
    pub fn is_request(&self) -> bool {
        matches!(
            self,
            Msg::Read { .. }
                | Msg::Write { .. }
                | Msg::ParityUpdate { .. }
                | Msg::SpareProbe { .. }
                | Msg::SpareInstall { .. }
                | Msg::BlockRead { .. }
                | Msg::SpareDrainList { .. }
                | Msg::SpareTake { .. }
                | Msg::RestoreBlock { .. }
        )
    }

    /// Bytes this message is charged on the wire (§7.4 accounting).
    ///
    /// A parity update ships the encoded change mask plus a control header —
    /// *much* smaller than a block for sparse writes, which is the paper's
    /// §7.4 bandwidth argument. Anything carrying a block pays the payload
    /// plus [`BLOCK_MSG_HEADER`]; everything else is a fixed
    /// [`CONTROL_MSG_BYTES`].
    pub fn wire_size(&self) -> usize {
        match self {
            Msg::ParityUpdate { mask_wire, .. } => mask_wire.len() + CONTROL_MSG_BYTES,
            Msg::Write { data, .. }
            | Msg::SpareInstall { data, .. }
            | Msg::RestoreBlock { data, .. }
            | Msg::ReadOk { data, .. }
            | Msg::BlockData { data, .. } => data.len() + BLOCK_MSG_HEADER,
            Msg::SpareState {
                slot: Some(SpareSlotWire { data, .. }),
                ..
            } => data.len() + BLOCK_MSG_HEADER,
            Msg::Read { .. }
            | Msg::SpareProbe { .. }
            | Msg::BlockRead { .. }
            | Msg::SpareDrainList { .. }
            | Msg::SpareTake { .. }
            | Msg::WriteOk { .. }
            | Msg::Ack { .. }
            | Msg::Nack { .. }
            | Msg::SpareState { slot: None, .. }
            | Msg::SpareRows { .. } => CONTROL_MSG_BYTES,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_reports_its_tag() {
        let msgs = vec![
            Msg::Read { index: 1, tag: 7 },
            Msg::Write {
                index: 1,
                data: Bytes::from(vec![0; 4]),
                tag: 7,
            },
            Msg::ParityUpdate {
                row: 0,
                mask_wire: Bytes::new(),
                uid: Uid::INVALID,
                from_site: 0,
                tag: 7,
            },
            Msg::SpareProbe {
                row: 0,
                want_data: true,
                tag: 7,
            },
            Msg::SpareInstall {
                row: 0,
                for_site: 0,
                data: Bytes::from(vec![0; 4]),
                content: SpareContent::Data { uid: Uid::INVALID },
                tag: 7,
            },
            Msg::BlockRead { row: 0, tag: 7 },
            Msg::SpareDrainList {
                for_site: 0,
                tag: 7,
            },
            Msg::SpareTake { row: 0, tag: 7 },
            Msg::RestoreBlock {
                row: 0,
                data: Bytes::from(vec![0; 4]),
                content: SpareContent::Data { uid: Uid::INVALID },
                tag: 7,
            },
            Msg::ReadOk {
                tag: 7,
                data: Bytes::new(),
            },
            Msg::WriteOk { tag: 7 },
            Msg::Ack { tag: 7 },
            Msg::Nack {
                tag: 7,
                reason: NackReason::Down,
            },
            Msg::BlockData {
                tag: 7,
                data: Bytes::new(),
                uid: Uid::INVALID,
                parity_uids: None,
            },
            Msg::SpareState { tag: 7, slot: None },
            Msg::SpareRows {
                tag: 7,
                rows: vec![],
            },
        ];
        for m in msgs {
            assert_eq!(m.tag(), 7, "{:?}", m.kind());
        }
    }

    #[test]
    fn parity_update_wire_size_is_mask_plus_header() {
        let m = Msg::ParityUpdate {
            row: 0,
            mask_wire: Bytes::from(vec![0; 10]),
            uid: Uid::INVALID,
            from_site: 0,
            tag: 0,
        };
        assert_eq!(m.wire_size(), 10 + CONTROL_MSG_BYTES);
        let r = Msg::Read { index: 0, tag: 0 };
        assert_eq!(r.wire_size(), CONTROL_MSG_BYTES);
        let w = Msg::Write {
            index: 0,
            data: Bytes::from(vec![0; 64]),
            tag: 0,
        };
        assert_eq!(w.wire_size(), 64 + BLOCK_MSG_HEADER);
    }
}
