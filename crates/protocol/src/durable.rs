//! Durable site state: what a crashed site must find on disk to rejoin
//! without a §3.3 rebuild.
//!
//! A [`SiteMachine`](crate::SiteMachine) splits into durable and volatile
//! halves. Durable — the metadata whose loss is indistinguishable from a
//! site disaster: per-row block UIDs, parity UID arrays, spare slots, the
//! invalid-row set, and the two monotone generators (the UID counter backs
//! the §3.2 idempotence guard, so resetting it would let a re-minted UID
//! masquerade as an already-applied duplicate; the tag counter keys the
//! at-most-once reply cache). Volatile — the stop-and-wait queues,
//! in-flight retransmission state, deferred client replies, and the reply
//! cache itself: all of it is reconstructible from peer retransmissions,
//! and plans quiesce a site before killing it, so dropping these on
//! restart is safe. The §3.2 UID guard backstops the one case it is not
//! (a duplicate parity update arriving after the reply cache died with the
//! process).
//!
//! [`DurableSiteState`] is the serialisable projection of the durable
//! half. The codec is a hand-rolled little-endian binary format (the
//! workspace's serde shim is serialize-only) with a magic/version header
//! and bounds-checked decoding, in the style of [`crate::codec`]: torn or
//! truncated snapshots decode to an error, never to garbage state.

use crate::wire::SpareContent;
use radd_parity::Uid;
use std::fmt;

/// Magic prefix of an encoded snapshot: `"RDSS"` little-endian.
const MAGIC: u32 = 0x5353_4452;
/// Current snapshot format version.
const VERSION: u16 = 1;

/// Errors decoding a durable snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DurableError {
    /// The buffer ended before the structure did.
    Truncated,
    /// The magic prefix did not match — not a snapshot.
    BadMagic,
    /// A snapshot from an unknown format version.
    BadVersion(u16),
    /// Structurally invalid contents (e.g. a row index past the geometry).
    Malformed(&'static str),
}

impl fmt::Display for DurableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurableError::Truncated => write!(f, "durable snapshot truncated"),
            DurableError::BadMagic => write!(f, "durable snapshot magic mismatch"),
            DurableError::BadVersion(v) => write!(f, "durable snapshot version {v} unsupported"),
            DurableError::Malformed(why) => write!(f, "durable snapshot malformed: {why}"),
        }
    }
}

impl std::error::Error for DurableError {}

/// The durable half of a [`SiteMachine`](crate::SiteMachine), in a shape
/// that is storage- and wire-friendly (no maps, no private types).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DurableSiteState {
    /// The site this snapshot belongs to.
    pub site: usize,
    /// Group size `G` the geometry was built with.
    pub group_size: usize,
    /// Rows per site.
    pub rows: u64,
    /// Block size in bytes.
    pub block_size: usize,
    /// Per-row block UIDs (`rows` entries).
    pub block_uids: Vec<Uid>,
    /// `(row, slots)` for every row where this site holds a parity array.
    pub parity_uids: Vec<(u64, Vec<Uid>)>,
    /// `(row, for_site, content)` for every valid spare slot.
    pub spares: Vec<(u64, usize, SpareContent)>,
    /// Rows whose local content is untrustworthy.
    pub invalid_rows: Vec<u64>,
    /// The UID generator's counter (site id is implied by `site`).
    pub uid_counter: u64,
    /// The request-tag counter.
    pub next_tag: u64,
}

struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DurableError> {
        let end = self.at.checked_add(n).ok_or(DurableError::Truncated)?;
        if end > self.buf.len() {
            return Err(DurableError::Truncated);
        }
        let s = &self.buf[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn u16(&mut self) -> Result<u16, DurableError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, DurableError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, DurableError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// A length prefix that will be used to reserve memory: reject counts
    /// the remaining buffer could not possibly hold (8 bytes per element
    /// minimum), so a corrupt prefix cannot drive a huge allocation.
    fn count(&mut self) -> Result<usize, DurableError> {
        let n = self.u64()? as usize;
        if n > (self.buf.len() - self.at) / 8 {
            return Err(DurableError::Truncated);
        }
        Ok(n)
    }

    fn uids(&mut self, n: usize) -> Result<Vec<Uid>, DurableError> {
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(Uid::from_raw(self.u64()?));
        }
        Ok(v)
    }
}

fn put_uids(out: &mut Vec<u8>, uids: &[Uid]) {
    out.extend_from_slice(&(uids.len() as u64).to_le_bytes());
    for u in uids {
        out.extend_from_slice(&u.as_raw().to_le_bytes());
    }
}

impl DurableSiteState {
    /// Encode to the versioned binary snapshot format.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.block_uids.len() * 8);
        out.extend_from_slice(&MAGIC.to_le_bytes());
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(self.site as u32).to_le_bytes());
        out.extend_from_slice(&(self.group_size as u32).to_le_bytes());
        out.extend_from_slice(&self.rows.to_le_bytes());
        out.extend_from_slice(&(self.block_size as u32).to_le_bytes());
        out.extend_from_slice(&self.uid_counter.to_le_bytes());
        out.extend_from_slice(&self.next_tag.to_le_bytes());
        put_uids(&mut out, &self.block_uids);
        out.extend_from_slice(&(self.parity_uids.len() as u64).to_le_bytes());
        for (row, slots) in &self.parity_uids {
            out.extend_from_slice(&row.to_le_bytes());
            put_uids(&mut out, slots);
        }
        out.extend_from_slice(&(self.spares.len() as u64).to_le_bytes());
        for (row, for_site, content) in &self.spares {
            out.extend_from_slice(&row.to_le_bytes());
            out.extend_from_slice(&(*for_site as u32).to_le_bytes());
            match content {
                SpareContent::Data { uid } => {
                    out.push(0);
                    out.extend_from_slice(&uid.as_raw().to_le_bytes());
                }
                SpareContent::Parity { uids } => {
                    out.push(1);
                    put_uids(&mut out, uids);
                }
            }
        }
        out.extend_from_slice(&(self.invalid_rows.len() as u64).to_le_bytes());
        for row in &self.invalid_rows {
            out.extend_from_slice(&row.to_le_bytes());
        }
        out
    }

    /// Decode a snapshot, validating structure and bounds.
    pub fn decode(buf: &[u8]) -> Result<DurableSiteState, DurableError> {
        let mut r = Reader { buf, at: 0 };
        if r.u32()? != MAGIC {
            return Err(DurableError::BadMagic);
        }
        let version = r.u16()?;
        if version != VERSION {
            return Err(DurableError::BadVersion(version));
        }
        let site = r.u32()? as usize;
        let group_size = r.u32()? as usize;
        let rows = r.u64()?;
        let block_size = r.u32()? as usize;
        let uid_counter = r.u64()?;
        let next_tag = r.u64()?;
        let n_uids = r.count()?;
        if n_uids as u64 != rows {
            return Err(DurableError::Malformed("block UID count != rows"));
        }
        let block_uids = r.uids(n_uids)?;
        let n_parity = r.count()?;
        let mut parity_uids = Vec::with_capacity(n_parity);
        for _ in 0..n_parity {
            let row = r.u64()?;
            if row >= rows {
                return Err(DurableError::Malformed("parity row out of range"));
            }
            let n = r.count()?;
            parity_uids.push((row, r.uids(n)?));
        }
        let n_spares = r.count()?;
        let mut spares = Vec::with_capacity(n_spares);
        for _ in 0..n_spares {
            let row = r.u64()?;
            if row >= rows {
                return Err(DurableError::Malformed("spare row out of range"));
            }
            let for_site = r.u32()? as usize;
            let content = match r.take(1)?[0] {
                0 => SpareContent::Data {
                    uid: Uid::from_raw(r.u64()?),
                },
                1 => {
                    let n = r.count()?;
                    SpareContent::Parity { uids: r.uids(n)? }
                }
                _ => return Err(DurableError::Malformed("unknown spare kind tag")),
            };
            spares.push((row, for_site, content));
        }
        let n_invalid = r.count()?;
        let mut invalid_rows = Vec::with_capacity(n_invalid);
        for _ in 0..n_invalid {
            let row = r.u64()?;
            if row >= rows {
                return Err(DurableError::Malformed("invalid-row index out of range"));
            }
            invalid_rows.push(row);
        }
        if r.at != buf.len() {
            return Err(DurableError::Malformed("trailing bytes after snapshot"));
        }
        Ok(DurableSiteState {
            site,
            group_size,
            rows,
            block_size,
            block_uids,
            parity_uids,
            spares,
            invalid_rows,
            uid_counter,
            next_tag,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DurableSiteState {
        DurableSiteState {
            site: 2,
            group_size: 2,
            rows: 4,
            block_size: 16,
            block_uids: vec![
                Uid::from_raw(0x2_0000_0000_0001),
                Uid::INVALID,
                Uid::from_raw(0x2_0000_0000_0002),
                Uid::INVALID,
            ],
            parity_uids: vec![(1, vec![Uid::from_raw(7), Uid::INVALID, Uid::from_raw(9)])],
            spares: vec![
                (
                    0,
                    3,
                    SpareContent::Data {
                        uid: Uid::from_raw(5),
                    },
                ),
                (
                    2,
                    1,
                    SpareContent::Parity {
                        uids: vec![Uid::from_raw(1), Uid::from_raw(2)],
                    },
                ),
            ],
            invalid_rows: vec![1, 3],
            uid_counter: 2,
            next_tag: 11,
        }
    }

    #[test]
    fn roundtrip() {
        let s = sample();
        assert_eq!(DurableSiteState::decode(&s.encode()), Ok(s));
    }

    #[test]
    fn every_prefix_truncation_errors_not_panics() {
        let full = sample().encode();
        for n in 0..full.len() {
            assert!(
                DurableSiteState::decode(&full[..n]).is_err(),
                "prefix of {n} bytes decoded"
            );
        }
    }

    #[test]
    fn bad_magic_and_version() {
        let mut buf = sample().encode();
        buf[0] ^= 0xFF;
        assert_eq!(DurableSiteState::decode(&buf), Err(DurableError::BadMagic));
        let mut buf = sample().encode();
        buf[4] = 0xEE;
        assert_eq!(
            DurableSiteState::decode(&buf),
            Err(DurableError::BadVersion(0xEE))
        );
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut buf = sample().encode();
        buf.push(0);
        assert_eq!(
            DurableSiteState::decode(&buf),
            Err(DurableError::Malformed("trailing bytes after snapshot"))
        );
    }

    #[test]
    fn huge_count_rejected_without_allocation() {
        let mut buf = sample().encode();
        // Overwrite the block-UID count (offset 42: after the 42-byte
        // fixed header) with u64::MAX.
        buf[42..50].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(DurableSiteState::decode(&buf).is_err());
    }
}
