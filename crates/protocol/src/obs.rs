//! Observability projection of the effect stream.
//!
//! [`obs_event`] is the tap the `radd-obs` crate hangs off: it maps an
//! [`Effect`] onto a compact, heap-free [`ObsEvent`] suitable for a
//! fixed-size flight-recorder ring and for counter updates.
//!
//! It deliberately differs from [`crate::trace::trace`]. The differential
//! trace *drops* retransmissions and duplicate-reply replays so that a lossy
//! threaded run and a lossless DES run compare equal; the observability
//! layer *keeps* them — counting retransmissions and replays under faults is
//! precisely what it is for. Timer arm/disarm effects are still dropped:
//! they are interpreter bookkeeping, not protocol traffic. Driver
//! escalations ([`Effect::NeedParityRebuild`], [`Effect::ParityUnservable`])
//! are kept: they mark the degraded paths the paper's §3.3–§3.4 availability
//! argument is about.

use crate::effect::{Dest, Effect, IoPurpose};
use crate::wire::MsgKind;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One normalized protocol event, as recorded by the flight recorder.
///
/// `Copy` and free of heap data by construction: recording an event into a
/// pre-allocated ring never allocates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ObsEvent {
    /// A message left the machine.
    Send {
        /// Destination.
        to: Dest,
        /// Message kind.
        kind: MsgKind,
        /// Request/reply tag.
        tag: u64,
        /// Charged wire bytes.
        wire: u64,
        /// Stop-and-wait retransmission of an already-charged message.
        retransmit: bool,
        /// Cached-reply replay to a duplicate request.
        replay: bool,
    },
    /// A local block read.
    Read {
        /// Physical row.
        row: u64,
        /// Why.
        purpose: IoPurpose,
    },
    /// A local block write.
    Write {
        /// Physical row.
        row: u64,
        /// Why.
        purpose: IoPurpose,
    },
    /// A client reply was deferred until the row's parity ack (W1 done,
    /// W4 pending).
    DeferAck {
        /// Deferred request tag.
        tag: u64,
        /// Gating row.
        row: u64,
    },
    /// A parity update hit a row the site has not rebuilt yet; the driver
    /// must rebuild and re-deliver.
    ParityRebuild {
        /// Row to rebuild.
        row: u64,
    },
    /// A parity update hit a failed disk; the driver must redirect it to
    /// the row's spare site.
    ParityUnservable {
        /// Unservable row.
        row: u64,
    },
}

/// Project an effect onto the observability event, or `None` for timer
/// bookkeeping.
#[inline]
pub fn obs_event(effect: &Effect) -> Option<ObsEvent> {
    match effect {
        Effect::Send {
            to,
            msg,
            wire,
            retransmit,
            replay,
        } => Some(ObsEvent::Send {
            to: *to,
            kind: msg.kind(),
            tag: msg.tag(),
            wire: *wire as u64,
            retransmit: *retransmit,
            replay: *replay,
        }),
        Effect::Read { row, purpose } => Some(ObsEvent::Read {
            row: *row,
            purpose: *purpose,
        }),
        Effect::Write { row, purpose } => Some(ObsEvent::Write {
            row: *row,
            purpose: *purpose,
        }),
        Effect::DeferAck { tag, row } => Some(ObsEvent::DeferAck {
            tag: *tag,
            row: *row,
        }),
        Effect::SetTimer { .. } | Effect::ClearTimer { .. } => None,
        Effect::NeedParityRebuild { row } => Some(ObsEvent::ParityRebuild { row: *row }),
        Effect::ParityUnservable { row } => Some(ObsEvent::ParityUnservable { row: *row }),
    }
}

impl fmt::Display for ObsEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObsEvent::Send {
                to,
                kind,
                tag,
                wire,
                retransmit,
                replay,
            } => {
                let dest = match to {
                    Dest::Site(s) => format!("site {s}"),
                    Dest::Peer(p) => format!("peer {p}"),
                };
                write!(f, "send {} tag={tag} -> {dest} ({wire}B", kind.name())?;
                if *retransmit {
                    write!(f, ", retransmit")?;
                }
                if *replay {
                    write!(f, ", replay")?;
                }
                write!(f, ")")
            }
            ObsEvent::Read { row, purpose } => {
                write!(f, "read  row={row} [{}]", purpose.name())
            }
            ObsEvent::Write { row, purpose } => {
                write!(f, "write row={row} [{}]", purpose.name())
            }
            ObsEvent::DeferAck { tag, row } => write!(f, "defer tag={tag} row={row}"),
            ObsEvent::ParityRebuild { row } => write!(f, "escalate parity-rebuild row={row}"),
            ObsEvent::ParityUnservable { row } => write!(f, "escalate parity-unservable row={row}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::Msg;

    #[test]
    fn retransmissions_survive_the_obs_projection() {
        let eff = Effect::Send {
            to: Dest::Site(3),
            msg: Msg::Ack { tag: 9 },
            wire: 16,
            retransmit: true,
            replay: false,
        };
        assert!(crate::trace::trace(&eff).is_none(), "trace drops it");
        match obs_event(&eff) {
            Some(ObsEvent::Send {
                retransmit: true,
                kind: MsgKind::Ack,
                tag: 9,
                ..
            }) => {}
            other => panic!("obs must keep the retransmission: {other:?}"),
        }
    }

    #[test]
    fn timers_are_dropped() {
        assert_eq!(obs_event(&Effect::SetTimer { tag: 1, step: 0 }), None);
        assert_eq!(obs_event(&Effect::ClearTimer { tag: 1 }), None);
    }

    #[test]
    fn purpose_and_kind_indexing_is_dense_and_named() {
        for (i, p) in IoPurpose::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
            assert!(!p.name().is_empty());
        }
        for (i, k) in MsgKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
            assert!(!k.name().is_empty());
        }
    }
}
