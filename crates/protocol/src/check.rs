//! Model-checking hooks: canonical state hashing and pure invariant
//! predicates.
//!
//! The bounded explorer in `radd-check` walks millions of machine states
//! and needs two things from the protocol crate that only it can provide
//! (they read private machine state):
//!
//! * **Canonical hashing** — [`Canonicalizer`] plus the [`Checkable`] trait.
//!   Raw protocol identifiers are monotone counters (site tags are
//!   `((site+1) << 48) | n`, UIDs are `(namespace << 48) | n`), so two
//!   states that differ only in *when* during a run they were reached would
//!   never hash equal. The canonicalizer renames every tag and UID to its
//!   first-seen ordinal during a deterministic scan of the whole model
//!   state. Within one generator the raw values of live identifiers are
//!   ordered by creation, and that relative order is preserved by any
//!   run-to-run isomorphism, so first-seen renaming over a fixed scan order
//!   merges exactly the states that differ only by identifier age.
//!   Counters that influence *nothing observable* (generator positions,
//!   retransmission step counts, coalesce statistics) are excluded from the
//!   hash entirely.
//! * **Invariant predicates** — pure functions over machine references (and
//!   a block-read closure, since storage lives with the driver) asserting
//!   the paper's §3 guarantees: stripe parity is the XOR of the data blocks,
//!   the §3.3 UID arrays agree with the data sites' block UIDs, and spare
//!   stand-ins are structurally valid and fresh. The explorer calls these
//!   at every quiescent state; drivers and tests can call them too.
//!
//! The hash is 128 bits assembled from two independently salted
//! `DefaultHasher`s (`SipHash` with fixed keys — deterministic across
//! processes), so visited-set collisions are negligible at bounded-model
//! scale.

use crate::fasthash::FxHashMap;
use crate::server::{SiteMachine, SpareKind};
use crate::wire::{Msg, SpareContent};
use radd_parity::Uid;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Renaming state hasher for one canonical scan of a model state.
///
/// Feed the entire state through one canonicalizer in a deterministic
/// order; [`finish`](Canonicalizer::finish) yields the 128-bit digest.
/// [`begin_sub`](Canonicalizer::begin_sub)/[`end_sub`](Canonicalizer::end_sub)
/// divert hashing into a scoped sub-digest (renaming tables stay shared) so
/// callers can combine unordered collections commutatively.
#[derive(Debug)]
pub struct Canonicalizer {
    // Lookup-only renaming tables on the model checker's hot path (hit
    // once per identifier per state hash): FxHashMap per the fasthash
    // contract — these are never iterated, so order cannot reach a
    // digest (R002, DESIGN.md §16).
    uids: FxHashMap<u64, u64>,
    tags: FxHashMap<u64, u64>,
    main: (DefaultHasher, DefaultHasher),
    sub: Option<(DefaultHasher, DefaultHasher)>,
}

fn salted_pair() -> (DefaultHasher, DefaultHasher) {
    let h1 = DefaultHasher::new();
    let mut h2 = DefaultHasher::new();
    // Distinct stream for the upper 64 bits.
    h2.write_u64(0x9E37_79B9_7F4A_7C15);
    (h1, h2)
}

fn finish_pair(pair: &(DefaultHasher, DefaultHasher)) -> u128 {
    (pair.0.finish() as u128) | ((pair.1.finish() as u128) << 64)
}

impl Canonicalizer {
    /// A fresh canonicalizer with empty renaming tables.
    pub fn new() -> Canonicalizer {
        Canonicalizer {
            uids: FxHashMap::default(),
            tags: FxHashMap::default(),
            main: salted_pair(),
            sub: None,
        }
    }

    fn write_u64(&mut self, v: u64) {
        let pair = self.sub.as_mut().unwrap_or(&mut self.main);
        pair.0.write_u64(v);
        pair.1.write_u64(v);
    }

    /// Hash a UID under first-seen renaming. [`Uid::INVALID`] keeps the
    /// stable name 0.
    pub fn uid(&mut self, uid: Uid) {
        let raw = uid.as_raw();
        let canon = if raw == Uid::INVALID.as_raw() {
            0
        } else {
            let next = self.uids.len() as u64 + 1;
            *self.uids.entry(raw).or_insert(next)
        };
        self.write_u64(canon);
    }

    /// Hash a request tag under first-seen renaming.
    pub fn tag(&mut self, tag: u64) {
        let next = self.tags.len() as u64 + 1;
        let canon = *self.tags.entry(tag).or_insert(next);
        self.write_u64(canon);
    }

    /// Hash a value verbatim (no renaming).
    pub fn raw<T: Hash + ?Sized>(&mut self, v: &T) {
        struct Fan<'a>(&'a mut Canonicalizer);
        impl Hasher for Fan<'_> {
            fn write(&mut self, bytes: &[u8]) {
                let pair = self.0.sub.as_mut().unwrap_or(&mut self.0.main);
                pair.0.write(bytes);
                pair.1.write(bytes);
            }
            fn finish(&self) -> u64 {
                unreachable!("Fan is write-only")
            }
        }
        v.hash(&mut Fan(self));
    }

    /// Divert subsequent hashing into a scoped sub-digest. Renaming tables
    /// stay shared with the main scan. Nesting is not supported.
    pub fn begin_sub(&mut self) {
        assert!(self.sub.is_none(), "sub-digests do not nest");
        self.sub = Some(salted_pair());
    }

    /// Finish the scoped sub-digest and return it. The caller combines
    /// sub-digests commutatively (e.g. wrapping addition) and feeds the
    /// result back through [`raw`](Canonicalizer::raw) to hash an unordered
    /// collection.
    pub fn end_sub(&mut self) -> u128 {
        let pair = self.sub.take().expect("end_sub without begin_sub");
        finish_pair(&pair)
    }

    /// The 128-bit canonical digest of everything hashed so far.
    pub fn finish(self) -> u128 {
        finish_pair(&self.main)
    }
}

impl Default for Canonicalizer {
    fn default() -> Canonicalizer {
        Canonicalizer::new()
    }
}

/// State that knows how to write itself into a [`Canonicalizer`].
///
/// Implementations must scan deterministically (sorted map keys, in-queue
/// order), rename every tag/UID through the canonicalizer, and skip fields
/// with no observable influence on future behaviour (generator counters,
/// retransmission step counts, statistics).
pub trait Checkable {
    /// Write this value's canonical encoding into `c`.
    fn canon(&self, c: &mut Canonicalizer);
}

fn canon_spare_content(content: &SpareContent, c: &mut Canonicalizer) {
    match content {
        SpareContent::Data { uid } => {
            c.raw(&0u8);
            c.uid(*uid);
        }
        SpareContent::Parity { uids } => {
            c.raw(&1u8);
            c.raw(&uids.len());
            for u in uids {
                c.uid(*u);
            }
        }
    }
}

impl Checkable for Msg {
    fn canon(&self, c: &mut Canonicalizer) {
        c.raw(&self.kind().index());
        match self {
            Msg::Read { index, tag } => {
                c.raw(index);
                c.tag(*tag);
            }
            Msg::Write { index, data, tag } => {
                c.raw(index);
                c.raw(&data[..]);
                c.tag(*tag);
            }
            Msg::ParityUpdate {
                row,
                mask_wire,
                uid,
                from_site,
                tag,
            } => {
                c.raw(row);
                c.raw(&mask_wire[..]);
                c.uid(*uid);
                c.raw(from_site);
                c.tag(*tag);
            }
            Msg::SpareProbe {
                row,
                want_data,
                tag,
            } => {
                c.raw(row);
                c.raw(want_data);
                c.tag(*tag);
            }
            Msg::SpareInstall {
                row,
                for_site,
                data,
                content,
                tag,
            } => {
                c.raw(row);
                c.raw(for_site);
                c.raw(&data[..]);
                canon_spare_content(content, c);
                c.tag(*tag);
            }
            Msg::BlockRead { row, tag } | Msg::SpareTake { row, tag } => {
                c.raw(row);
                c.tag(*tag);
            }
            Msg::SpareDrainList { for_site, tag } => {
                c.raw(for_site);
                c.tag(*tag);
            }
            Msg::RestoreBlock {
                row,
                data,
                content,
                tag,
            } => {
                c.raw(row);
                c.raw(&data[..]);
                canon_spare_content(content, c);
                c.tag(*tag);
            }
            Msg::ReadOk { tag, data } => {
                c.tag(*tag);
                c.raw(&data[..]);
            }
            Msg::WriteOk { tag } | Msg::Ack { tag } => c.tag(*tag),
            Msg::Nack { tag, reason } => {
                c.tag(*tag);
                c.raw(&(*reason as u8));
            }
            Msg::BlockData {
                tag,
                data,
                uid,
                parity_uids,
            } => {
                c.tag(*tag);
                c.raw(&data[..]);
                c.uid(*uid);
                match parity_uids {
                    None => c.raw(&0u8),
                    Some(uids) => {
                        c.raw(&1u8);
                        c.raw(&uids.len());
                        for u in uids {
                            c.uid(*u);
                        }
                    }
                }
            }
            Msg::SpareRows { tag, rows } => {
                c.tag(*tag);
                c.raw(&rows.len());
                for row in rows {
                    c.raw(row);
                }
            }
            Msg::SpareState { tag, slot } => {
                c.tag(*tag);
                match slot {
                    None => c.raw(&0u8),
                    Some(s) => {
                        c.raw(&1u8);
                        c.raw(&s.for_site);
                        c.raw(&s.data[..]);
                        canon_spare_content(&s.content, c);
                    }
                }
            }
        }
    }
}

// ---- invariant predicates ---------------------------------------------

/// §3.2/Formula (1): every row's parity block equals the XOR of the row's
/// data blocks. `read(site, row)` returns the stored block, or `None` if
/// unreadable (which is itself a violation at a quiescent, all-up state).
///
/// Only meaningful at quiesce — an in-flight parity update legitimately
/// leaves the stripe inconsistent between W1 and W4.
pub fn check_stripe_parity(
    sites: &[SiteMachine],
    read: &mut dyn FnMut(usize, u64) -> Option<Vec<u8>>,
) -> Result<(), String> {
    let geo = *sites[0].geometry();
    for row in 0..geo.rows() {
        let parity_site = geo.parity_site(row);
        let Some(parity) = read(parity_site, row) else {
            return Err(format!("row {row}: parity block unreadable at quiesce"));
        };
        let mut acc = vec![0u8; parity.len()];
        for site in geo.data_sites(row) {
            let Some(block) = read(site, row) else {
                return Err(format!("row {row}: data block at site {site} unreadable"));
            };
            for (a, b) in acc.iter_mut().zip(block.iter()) {
                *a ^= *b;
            }
        }
        if acc != parity {
            return Err(format!(
                "row {row}: parity at site {parity_site} is not the XOR of the data blocks"
            ));
        }
    }
    Ok(())
}

/// §3.3: the parity site's UID array for each row agrees with every data
/// site's current block UID (or with the row's spare stand-in UID while a
/// spare covers that site).
pub fn check_uid_agreement(sites: &[SiteMachine]) -> Result<(), String> {
    let geo = *sites[0].geometry();
    for row in 0..geo.rows() {
        let parity_site = geo.parity_site(row);
        let Some(arr) = sites[parity_site].parity_uids().get(&row) else {
            continue; // no update ever applied: nothing recorded, nothing owed
        };
        let spare_site = geo.spare_site(row);
        for data_site in geo.data_sites(row) {
            let recorded = arr.get(data_site);
            let block = sites[data_site].block_uid(row);
            let stand_in = sites[spare_site].spares().get(&row).and_then(|slot| {
                (slot.for_site == data_site).then_some(match &slot.kind {
                    SpareKind::Data { data_uid } => *data_uid,
                    SpareKind::Parity { .. } => Uid::INVALID,
                })
            });
            let ok = recorded == block || stand_in.is_some_and(|s| recorded == s);
            if !ok {
                return Err(format!(
                    "row {row}: §3.3 disagreement — parity site {parity_site} records \
                     {recorded:?} for site {data_site}, whose block UID is {block:?} \
                     (spare stand-in: {stand_in:?})"
                ));
            }
        }
    }
    Ok(())
}

/// Spare slots are structurally valid: held by the row's spare site, stand
/// in for a *different* in-range site.
pub fn check_spare_structure(sites: &[SiteMachine]) -> Result<(), String> {
    let geo = *sites[0].geometry();
    for (holder, site) in sites.iter().enumerate() {
        for (&row, slot) in site.spares() {
            if geo.spare_site(row) != holder {
                return Err(format!(
                    "site {holder} holds a spare for row {row}, whose spare site is {}",
                    geo.spare_site(row)
                ));
            }
            if slot.for_site == holder || slot.for_site >= geo.num_sites() {
                return Err(format!(
                    "row {row}: spare at site {holder} stands in for invalid site {}",
                    slot.for_site
                ));
            }
        }
    }
    Ok(())
}

/// Spare-valid ⟹ spare-matches-owner: at an all-up quiescent state any
/// surviving data stand-in must still byte-match (and UID-match) the block
/// it covers. A stale slot left behind by a broken drain serves old bytes
/// to the next degraded reader.
pub fn check_spare_freshness(
    sites: &[SiteMachine],
    read: &mut dyn FnMut(usize, u64) -> Option<Vec<u8>>,
) -> Result<(), String> {
    for (holder, site) in sites.iter().enumerate() {
        for (&row, slot) in site.spares() {
            let SpareKind::Data { data_uid } = &slot.kind else {
                continue; // parity stand-ins are checked via the UID arrays
            };
            let owner = slot.for_site;
            if sites[owner].block_uid(row) != *data_uid {
                return Err(format!(
                    "row {row}: spare at site {holder} is stale — slot UID {data_uid:?} \
                     but site {owner}'s block UID is {:?}",
                    sites[owner].block_uid(row)
                ));
            }
            if read(holder, row) != read(owner, row) {
                return Err(format!(
                    "row {row}: spare at site {holder} no longer byte-matches \
                     site {owner}'s block"
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renaming_merges_isomorphic_identifiers() {
        // Two "runs" that used different raw tags/uids in the same relative
        // order must hash identically.
        let digest = |tags: [u64; 3], uid: u64| {
            let mut c = Canonicalizer::new();
            for t in tags {
                c.tag(t);
            }
            c.uid(Uid::from_raw(uid));
            c.finish()
        };
        assert_eq!(digest([5, 9, 5], 100), digest([6, 11, 6], 205));
        // Re-references distinguish states: (a, b, a) is not (a, b, b).
        assert_ne!(digest([5, 9, 5], 100), digest([5, 9, 9], 100));
    }

    #[test]
    fn invalid_uid_keeps_a_stable_name() {
        let mut a = Canonicalizer::new();
        a.uid(Uid::INVALID);
        a.uid(Uid::from_raw(7));
        let mut b = Canonicalizer::new();
        b.uid(Uid::INVALID);
        b.uid(Uid::from_raw(123));
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn sub_digests_share_renaming_and_combine_commutatively() {
        let envelope = |c: &mut Canonicalizer, tag: u64| {
            c.begin_sub();
            c.tag(tag);
            c.end_sub()
        };
        let total = |order: [u64; 2]| {
            let mut c = Canonicalizer::new();
            // Names assigned by first sight in scan order…
            c.tag(3);
            c.tag(8);
            // …so envelopes referencing them are order-insensitive.
            let sum = envelope(&mut c, order[0]).wrapping_add(envelope(&mut c, order[1]));
            c.raw(&(sum as u64));
            c.raw(&((sum >> 64) as u64));
            c.finish()
        };
        assert_eq!(total([3, 8]), total([8, 3]));
    }
}
