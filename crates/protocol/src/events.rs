//! Shared failure-event vocabulary (§3.1).
//!
//! Defined once here; `radd-schemes` and `radd-workload` re-export it so
//! scheme drivers and fault plans speak the same language.

use serde::{Deserialize, Serialize};

/// The paper's three failure kinds (§3.1), as injectable events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailureKind {
    /// Temporary site failure: the site stops; its disks keep their data.
    SiteFailure,
    /// Site disaster: the site stops and all its disks are lost.
    Disaster,
    /// One disk at the site fails; the site stays operational.
    DiskFailure {
        /// Which disk.
        disk: usize,
    },
}
