//! The client-side protocol machine (§3.2–§3.3 read/write/recovery logic),
//! sans-IO.
//!
//! [`ClientMachine`] owns every §3 *decision* a RADD client makes — when to
//! go degraded, how to probe/install spares, which sources feed an XOR
//! reconstruction and how their UIDs are validated, and how a recovering
//! site's redirected writes are drained — while delegating every *exchange*
//! to a [`ClientIo`] implementation. The DES cluster implements `ClientIo`
//! by synchronous in-memory delivery with cost-ledger charging; the threaded
//! runtime implements it with endpoint sends, timeouts, and retries.

use crate::effect::Dest;
use crate::trace::TraceEntry;
use crate::wire::{Msg, NackReason, SpareContent, SpareSlotWire};
use bytes::Bytes;
use radd_layout::Geometry;
use radd_parity::{xor_fold, Uid, UidArray, UidGen};
use serde::{Deserialize, Serialize};

/// How many spare blocks are allocated (§7.2).
///
/// The paper analyses one spare per parity block and notes that "a smaller
/// number of spare blocks can be allocated per site if the system
/// administrator is willing to tolerate lower availability. … Analyzing
/// availability for lesser numbers of parity blocks is left as a future
/// exercise." [`SparePolicy::Fraction`] implements that exercise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SparePolicy {
    /// One spare block per parity block — the paper's analysed configuration
    /// ("this will allow any block on the down machine to be written while
    /// the site is down").
    OnePerParity,
    /// No spare blocks: 12.5 % space overhead at `G = 8` instead of 25 %,
    /// but every down-site read reconstructs from scratch and down-site
    /// writes cannot be absorbed (they are refused as unavailable).
    None,
    /// Spares on `numerator` of every `denominator` rows. Down-site writes
    /// to spare-less rows are refused; reads of spare-less rows reconstruct
    /// every time.
    Fraction {
        /// Rows with a spare per cycle.
        numerator: u32,
        /// Cycle length.
        denominator: u32,
    },
}

impl SparePolicy {
    /// Does physical row `row` have a usable spare block under this policy?
    pub fn has_spare(&self, row: u64) -> bool {
        match *self {
            SparePolicy::OnePerParity => true,
            SparePolicy::None => false,
            SparePolicy::Fraction {
                numerator,
                denominator,
            } => {
                debug_assert!(numerator <= denominator && denominator > 0);
                (row % denominator as u64) < numerator as u64
            }
        }
    }

    /// Space overhead as a fraction of data capacity for group size `g`:
    /// one parity block per `g` data blocks, plus the allocated share of
    /// spares.
    pub fn space_overhead(&self, g: usize) -> f64 {
        let spare_share = match *self {
            SparePolicy::OnePerParity => 1.0,
            SparePolicy::None => 0.0,
            SparePolicy::Fraction {
                numerator,
                denominator,
            } => numerator as f64 / denominator as f64,
        };
        (1.0 + spare_share) / g as f64
    }
}

/// Why a client operation failed, transport-independently.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientErr {
    /// Block index beyond the site's data capacity.
    OutOfRange,
    /// Payload length does not match the block size.
    BadSize,
    /// The combination of failures exceeds what one parity group masks.
    MultipleFailure {
        /// Human-readable diagnosis.
        detail: String,
    },
    /// §3.3 validation failed: `site`'s block UID disagrees with the parity
    /// UID array (a parity update is still in flight).
    Inconsistent {
        /// The stale or racing source site.
        site: usize,
    },
    /// The block exists but cannot be served (e.g. a spare-less row on a
    /// down site under a partial [`SparePolicy`]).
    Unavailable {
        /// The refusing site.
        site: usize,
    },
    /// The transport gave up on `site` (threaded runtime only; the DES
    /// transport never times out).
    Timeout {
        /// The unresponsive site.
        site: usize,
    },
}

impl ClientErr {
    fn multiple(detail: impl Into<String>) -> ClientErr {
        ClientErr::MultipleFailure {
            detail: detail.into(),
        }
    }
}

/// The transport half of a client: one request/reply exchange with a site.
///
/// `background` marks recovery-daemon traffic (drivers charge it to the
/// background ledger rather than to a foreground operation's latency).
pub trait ClientIo {
    /// Send `msg` to `site` and return the (matching-tag) reply.
    fn exchange(&mut self, site: usize, msg: Msg, background: bool) -> Result<Msg, ClientErr>;

    /// Issue a batch of independent request/reply exchanges and return the
    /// replies in request order. The default runs them one at a time —
    /// exactly the serial behaviour a deterministic interpreter wants. A
    /// pipelining transport (the threaded runtime) overrides this to put
    /// every request on the wire before collecting replies, so the target
    /// sites work concurrently.
    fn exchange_batch(
        &mut self,
        reqs: Vec<(usize, Msg)>,
        background: bool,
    ) -> Vec<Result<Msg, ClientErr>> {
        reqs.into_iter()
            .map(|(site, msg)| self.exchange(site, msg, background))
            .collect()
    }

    /// Driver-supplied old value of the failed site's block at `row`, if the
    /// driver has one (the DES cluster's buffer-pool oracle, honouring the
    /// paper's costing where a degraded write needs no spare read). `None`
    /// makes [`ClientMachine::write`] fetch it with a charged spare read.
    fn old_value(&mut self, _site: usize, _row: u64) -> Option<Vec<u8>> {
        None
    }
}

/// The client-side state machine.
#[derive(Debug, Clone)]
pub struct ClientMachine {
    geo: Geometry,
    block_size: usize,
    spare_policy: SparePolicy,
    validate_uids: bool,
    uid_gen: UidGen,
    next_tag: u64,
    down: Vec<bool>,
    trace: Option<Vec<TraceEntry>>,
}

impl ClientMachine {
    /// A new client for a `G = group_size`, `rows`-row cluster.
    /// `uid_namespace` disambiguates UIDs this client mints for redirected
    /// writes from every site's generator.
    pub fn new(
        group_size: usize,
        rows: u64,
        block_size: usize,
        spare_policy: SparePolicy,
        validate_uids: bool,
        uid_namespace: u16,
    ) -> ClientMachine {
        let geo = Geometry::new(group_size, rows).expect("valid geometry");
        let n = geo.num_sites();
        ClientMachine {
            geo,
            block_size,
            spare_policy,
            validate_uids,
            uid_gen: UidGen::new(uid_namespace),
            next_tag: 0,
            down: vec![false; n],
            trace: None,
        }
    }

    /// The layout geometry.
    pub fn geometry(&self) -> &Geometry {
        &self.geo
    }

    /// Mark `site` as believed-down (`true`) or back up (`false`). While a
    /// site is believed down the machine never sends to it — it serves reads
    /// by spare/reconstruction and absorbs writes into the row's spare.
    pub fn set_down(&mut self, site: usize, down: bool) {
        self.down[site] = down;
    }

    /// Is `site` currently believed down?
    pub fn is_down(&self, site: usize) -> bool {
        self.down[site]
    }

    /// Start recording a normalised request trace (for differential tests).
    pub fn record_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// Take the recorded trace, leaving recording enabled.
    pub fn take_trace(&mut self) -> Vec<TraceEntry> {
        self.trace.replace(Vec::new()).unwrap_or_default()
    }

    /// Salt all future request tags with a restart *incarnation*. Sites
    /// cache their last reply per `(client, tag)` for at-most-once
    /// semantics, so a client process that restarts — same endpoint id,
    /// tag counter back at zero — would otherwise be *replayed* a cached
    /// reply meant for its previous life (e.g. a `WriteOk` answering a
    /// fresh `Read`). Long-lived harness clients never restart and keep
    /// the default incarnation 0 (tags stay `1, 2, 3, …`, which the
    /// differential traces rely on); standalone processes pass something
    /// unique per start (wall-clock works). Only the low 14 bits are used,
    /// placed at bits 32–45: below the oracle-sweep bit (46) and the
    /// site-tag salt (48), above any realistic single-run tag count.
    pub fn set_incarnation(&mut self, incarnation: u64) {
        self.next_tag = (incarnation & 0x3FFF) << 32;
    }

    fn tag(&mut self) -> u64 {
        self.next_tag += 1;
        self.next_tag
    }

    /// Mint a request tag from this client's namespace, for drivers that
    /// put a request on the wire themselves (the model checker's
    /// event-granular healthy writes) and must not collide with tags the
    /// machine mints for its own exchanges.
    pub fn mint_tag(&mut self) -> u64 {
        self.tag()
    }

    fn send(
        &mut self,
        io: &mut dyn ClientIo,
        site: usize,
        msg: Msg,
        background: bool,
    ) -> Result<Msg, ClientErr> {
        debug_assert!(
            !self.down[site],
            "protocol bug: request sent to believed-down site {site}"
        );
        self.send_unchecked(io, site, msg, background)
    }

    /// Like [`send`](Self::send) but without the believed-down assertion:
    /// the recovery drain legitimately targets the recovering site, which
    /// stays on the down-list (degraded paths preferred) until the drain
    /// completes.
    fn send_unchecked(
        &mut self,
        io: &mut dyn ClientIo,
        site: usize,
        msg: Msg,
        background: bool,
    ) -> Result<Msg, ClientErr> {
        if let Some(trace) = &mut self.trace {
            trace.push(TraceEntry::Send {
                to: Dest::Site(site),
                kind: msg.kind(),
                tag: msg.tag(),
                wire: msg.wire_size(),
            });
        }
        io.exchange(site, msg, background)
    }

    /// Batched counterpart of [`send`](Self::send): records one trace entry
    /// per request (in request order — identical to issuing them serially)
    /// and hands the whole batch to the transport, which may pipeline it.
    /// No believed-down assertion; callers vet targets (the recovery drain
    /// legitimately restores onto the still-listed-down recovering site).
    fn send_batch(
        &mut self,
        io: &mut dyn ClientIo,
        reqs: Vec<(usize, Msg)>,
        background: bool,
    ) -> Vec<Result<Msg, ClientErr>> {
        if let Some(trace) = &mut self.trace {
            for (site, msg) in &reqs {
                trace.push(TraceEntry::Send {
                    to: Dest::Site(*site),
                    kind: msg.kind(),
                    tag: msg.tag(),
                    wire: msg.wire_size(),
                });
            }
        }
        io.exchange_batch(reqs, background)
    }

    fn map_nack(site: usize, reason: NackReason) -> ClientErr {
        match reason {
            NackReason::OutOfRange => ClientErr::OutOfRange,
            NackReason::BadSize => ClientErr::BadSize,
            NackReason::Down | NackReason::Unavailable => ClientErr::multiple(format!(
                "site {site} cannot serve the block (second failure in the group)"
            )),
            NackReason::Conflict => ClientErr::multiple(format!(
                "row spare at site {site} already stands in for another site"
            )),
        }
    }

    // -- §3.2 reads ------------------------------------------------------

    /// Read data block `index` of `site`, going degraded if the site is
    /// believed down. The returned [`Bytes`] is the refcounted buffer the
    /// reply carried — no copy between storage and caller.
    pub fn read(
        &mut self,
        io: &mut dyn ClientIo,
        site: usize,
        index: u64,
    ) -> Result<Bytes, ClientErr> {
        if index >= self.geo.data_capacity(site) {
            return Err(ClientErr::OutOfRange);
        }
        if self.down[site] {
            return self.degraded_read(io, site, index);
        }
        let tag = self.tag();
        match self.send(io, site, Msg::Read { index, tag }, false)? {
            Msg::ReadOk { data, .. } => Ok(data),
            Msg::Nack { reason, .. } => Err(Self::map_nack(site, reason)),
            other => Err(ClientErr::multiple(format!(
                "unexpected reply {:?} to Read",
                other.kind()
            ))),
        }
    }

    /// §3.2 down-site read: serve from the row's spare if a redirected write
    /// landed there, otherwise reconstruct from the other `G` blocks and
    /// cache the result in the spare for subsequent reads.
    fn degraded_read(
        &mut self,
        io: &mut dyn ClientIo,
        owner: usize,
        index: u64,
    ) -> Result<Bytes, ClientErr> {
        let row = self.geo.data_to_physical(owner, index);
        let spare = self.geo.spare_site(row);
        if self.spare_policy.has_spare(row) && !self.down[spare] {
            let tag = self.tag();
            let probe = Msg::SpareProbe {
                row,
                want_data: true,
                tag,
            };
            match self.send(io, spare, probe, false)? {
                Msg::SpareState {
                    slot: Some(SpareSlotWire { for_site, data, .. }),
                    ..
                } if for_site == owner => return Ok(data),
                Msg::SpareState {
                    slot: Some(SpareSlotWire { for_site, .. }),
                    ..
                } => {
                    // The spare absorbed a different site's failure: two
                    // failures in one parity group.
                    return Err(ClientErr::multiple(format!(
                        "row {row} spare already used by site {for_site}"
                    )));
                }
                Msg::SpareState { slot: None, .. } => {}
                Msg::Nack { reason, .. } => return Err(Self::map_nack(spare, reason)),
                other => {
                    return Err(ClientErr::multiple(format!(
                        "unexpected reply {:?} to SpareProbe",
                        other.kind()
                    )))
                }
            }
        }
        let (data, uid) = self.reconstruct(io, owner, row, false)?;
        let data = Bytes::from(data);
        if self.spare_policy.has_spare(row) && !self.down[spare] {
            // Cache the reconstruction in the spare (§3.2: subsequent reads
            // then cost one block access, not G). Installed in the
            // background; a conflict just means a racing failure claimed the
            // slot first — the read itself already succeeded.
            let tag = self.tag();
            let install = Msg::SpareInstall {
                row,
                for_site: owner,
                data: data.clone(),
                content: SpareContent::Data { uid },
                tag,
            };
            self.send(io, spare, install, true)?;
        }
        Ok(data)
    }

    // -- §3.2 writes -----------------------------------------------------

    /// Write data block `index` of `site` (W1–W4 at the site, or the W1'
    /// spare redirect if the site is believed down).
    pub fn write(
        &mut self,
        io: &mut dyn ClientIo,
        site: usize,
        index: u64,
        data: &[u8],
    ) -> Result<(), ClientErr> {
        if index >= self.geo.data_capacity(site) {
            return Err(ClientErr::OutOfRange);
        }
        if data.len() != self.block_size {
            return Err(ClientErr::BadSize);
        }
        if self.down[site] {
            return self.degraded_write(io, site, index, data);
        }
        let tag = self.tag();
        let msg = Msg::Write {
            index,
            data: Bytes::copy_from_slice(data),
            tag,
        };
        match self.send(io, site, msg, false)? {
            Msg::WriteOk { .. } => Ok(()),
            Msg::Nack { reason, .. } => Err(Self::map_nack(site, reason)),
            other => Err(ClientErr::multiple(format!(
                "unexpected reply {:?} to Write",
                other.kind()
            ))),
        }
    }

    /// §3.2 down-site write (W1'): redirect the block into the row's spare
    /// with a fresh UID and send the change mask to the parity site as
    /// usual, so the down site's block stays reconstructable.
    fn degraded_write(
        &mut self,
        io: &mut dyn ClientIo,
        owner: usize,
        index: u64,
        data: &[u8],
    ) -> Result<(), ClientErr> {
        let row = self.geo.data_to_physical(owner, index);
        let spare = self.geo.spare_site(row);
        let parity = self.geo.parity_site(row);
        if !self.spare_policy.has_spare(row) {
            return Err(ClientErr::Unavailable { site: owner });
        }
        if self.down[spare] {
            return Err(ClientErr::multiple(format!(
                "row {row} spare site {spare} is down along with site {owner}"
            )));
        }
        if self.down[parity] {
            return Err(ClientErr::multiple(format!(
                "row {row} parity site {parity} is down along with site {owner}"
            )));
        }
        // W2': the old value, needed for the change mask. The driver may
        // have it in its buffer pool (the paper's costing); otherwise fetch
        // whatever the spare already absorbed, or reconstruct.
        let oracle_old = io.old_value(owner, row);
        let want_data = oracle_old.is_none();
        let tag = self.tag();
        let probe = Msg::SpareProbe {
            row,
            want_data,
            tag,
        };
        let old = match self.send(io, spare, probe, false)? {
            Msg::SpareState {
                slot: Some(SpareSlotWire { for_site, data, .. }),
                ..
            } if for_site == owner => {
                if want_data {
                    data.to_vec()
                } else {
                    oracle_old.expect("want_data is false only with an oracle value")
                }
            }
            Msg::SpareState {
                slot: Some(SpareSlotWire { for_site, .. }),
                ..
            } => {
                return Err(ClientErr::multiple(format!(
                    "row {row} spare already used by site {for_site}"
                )));
            }
            Msg::SpareState { slot: None, .. } => match oracle_old {
                Some(v) => v,
                None => self.reconstruct(io, owner, row, false)?.0,
            },
            Msg::Nack { reason, .. } => return Err(Self::map_nack(spare, reason)),
            other => {
                return Err(ClientErr::multiple(format!(
                    "unexpected reply {:?} to SpareProbe",
                    other.kind()
                )))
            }
        };
        // W1': install the new content in the spare under a client-minted
        // UID…
        let uid = self.uid_gen.next_uid();
        let tag = self.tag();
        let install = Msg::SpareInstall {
            row,
            for_site: owner,
            data: Bytes::copy_from_slice(data),
            content: SpareContent::Data { uid },
            tag,
        };
        match self.send(io, spare, install, false)? {
            Msg::Ack { .. } => {}
            Msg::Nack { reason, .. } => return Err(Self::map_nack(spare, reason)),
            other => {
                return Err(ClientErr::multiple(format!(
                    "unexpected reply {:?} to SpareInstall",
                    other.kind()
                )))
            }
        }
        // …and W3': ship the mask so the parity site records the new UID.
        let mask = radd_parity::ChangeMask::diff(&old, data);
        let tag = self.tag();
        let update = Msg::ParityUpdate {
            row,
            mask_wire: mask.encode(),
            uid,
            from_site: owner,
            tag,
        };
        match self.send(io, parity, update, false)? {
            Msg::Ack { .. } => Ok(()),
            Msg::Nack { reason, .. } => Err(Self::map_nack(parity, reason)),
            other => Err(ClientErr::multiple(format!(
                "unexpected reply {:?} to ParityUpdate",
                other.kind()
            ))),
        }
    }

    // -- §3.3 reconstruction ---------------------------------------------

    /// Reconstruct `owner`'s block at `row` by XOR of the row's other `G`
    /// blocks, validating every source UID against the parity UID array
    /// (§3.3) when enabled. Returns the block and the UID the parity array
    /// records for `owner` (what the reconstruction is valid *as of*).
    ///
    /// All `G` source reads go out as one batch — a pipelining transport
    /// fetches them concurrently — and the XOR folds all sources in one
    /// multi-way [`xor_fold`] pass instead of `G` two-way passes.
    pub fn reconstruct(
        &mut self,
        io: &mut dyn ClientIo,
        owner: usize,
        row: u64,
        background: bool,
    ) -> Result<(Vec<u8>, Uid), ClientErr> {
        let n = self.geo.num_sites();
        let spare = self.geo.spare_site(row);
        let parity = self.geo.parity_site(row);
        let read_sites: Vec<usize> = (0..n).filter(|&s| s != owner && s != spare).collect();
        for &s in &read_sites {
            if self.down[s] {
                return Err(ClientErr::multiple(format!(
                    "cannot reconstruct row {row}: source site {s} is down too"
                )));
            }
        }
        let reqs: Vec<(usize, Msg)> = read_sites
            .iter()
            .map(|&s| {
                let tag = self.tag();
                (s, Msg::BlockRead { row, tag })
            })
            .collect();
        let replies = self.send_batch(io, reqs, background);
        let mut blocks: Vec<Bytes> = Vec::with_capacity(read_sites.len());
        let mut sources: Vec<(usize, Uid)> = Vec::with_capacity(n - 2);
        let mut parity_arr: Option<UidArray> = None;
        for (&s, reply) in read_sites.iter().zip(replies) {
            match reply? {
                Msg::BlockData {
                    data,
                    uid,
                    parity_uids,
                    ..
                } => {
                    if s == parity {
                        let mut arr = UidArray::new(n);
                        for (i, u) in parity_uids.unwrap_or_default().iter().enumerate().take(n) {
                            arr.set(i, *u);
                        }
                        parity_arr = Some(arr);
                    } else {
                        sources.push((s, uid));
                    }
                    blocks.push(data);
                }
                Msg::Nack { reason, .. } => return Err(Self::map_nack(s, reason)),
                other => {
                    return Err(ClientErr::multiple(format!(
                        "unexpected reply {:?} to BlockRead",
                        other.kind()
                    )))
                }
            }
        }
        let mut acc = vec![0u8; self.block_size];
        let views: Vec<&[u8]> = blocks.iter().map(|b| &b[..]).collect();
        xor_fold(&mut acc, &views);
        let arr = parity_arr.unwrap_or_else(|| UidArray::new(n));
        if self.validate_uids {
            // §3.3: "the UIDs of the blocks used in the reconstruction must
            // agree with the UIDs in the [parity] array" — otherwise a
            // parity update is still in flight and the XOR would be stale.
            for &(s, uid) in &sources {
                if !arr.matches(s, uid) {
                    return Err(ClientErr::Inconsistent { site: s });
                }
            }
        }
        Ok((acc, arr.get(owner)))
    }

    // -- §3.2 recovery drain ---------------------------------------------

    /// Drain every spare that absorbed writes for recovering `site`: copy
    /// the absorbed blocks (and their UID metadata) back to `site`, then
    /// release the slots. Returns how many blocks were drained. All traffic
    /// is background.
    ///
    /// Each per-site drain runs as three *waves* — probe every listed row,
    /// restore every absorbed block, then release every drained slot —
    /// rather than one row at a time. Rows are independent, so a pipelining
    /// transport overlaps the whole wave; the serial default preserves the
    /// deterministic site-ascending, list-order schedule. Errors surface in
    /// that same deterministic order (first failing reply of the first
    /// failing wave).
    pub fn recover(&mut self, io: &mut dyn ClientIo, site: usize) -> Result<u64, ClientErr> {
        let n = self.geo.num_sites();
        let mut drained = 0u64;
        for s in (0..n).filter(|&s| s != site) {
            if self.down[s] {
                return Err(ClientErr::multiple(format!(
                    "cannot drain spares: site {s} is down during recovery of {site}"
                )));
            }
            let tag = self.tag();
            let rows = match self.send(
                io,
                s,
                Msg::SpareDrainList {
                    for_site: site,
                    tag,
                },
                true,
            )? {
                Msg::SpareRows { rows, .. } => rows,
                Msg::Nack { reason, .. } => return Err(Self::map_nack(s, reason)),
                other => {
                    return Err(ClientErr::multiple(format!(
                        "unexpected reply {:?} to SpareDrainList",
                        other.kind()
                    )))
                }
            };
            if rows.is_empty() {
                continue;
            }
            // Wave 1: probe every listed row for its absorbed payload.
            let probes: Vec<(usize, Msg)> = rows
                .iter()
                .map(|&row| {
                    let tag = self.tag();
                    (
                        s,
                        Msg::SpareProbe {
                            row,
                            want_data: true,
                            tag,
                        },
                    )
                })
                .collect();
            let replies = self.send_batch(io, probes, true);
            let mut pending: Vec<(u64, SpareSlotWire)> = Vec::with_capacity(rows.len());
            for (&row, reply) in rows.iter().zip(replies) {
                match reply? {
                    Msg::SpareState { slot, .. } => match slot {
                        // Raced with another drain or the slot is gone:
                        // nothing to restore.
                        None => {}
                        Some(slot) if slot.for_site != site => {}
                        Some(slot) => pending.push((row, slot)),
                    },
                    Msg::Nack { reason, .. } => return Err(Self::map_nack(s, reason)),
                    other => {
                        return Err(ClientErr::multiple(format!(
                            "unexpected reply {:?} to SpareProbe",
                            other.kind()
                        )))
                    }
                }
            }
            if pending.is_empty() {
                continue;
            }
            // Wave 2: restore every absorbed block onto the recovering site.
            // The slot payloads are refcounted, so building the restore
            // messages moves the buffers rather than copying blocks.
            let mut restore_rows: Vec<u64> = Vec::with_capacity(pending.len());
            let restores: Vec<(usize, Msg)> = pending
                .into_iter()
                .map(|(row, slot)| {
                    restore_rows.push(row);
                    let tag = self.tag();
                    (
                        site,
                        Msg::RestoreBlock {
                            row,
                            data: slot.data,
                            content: slot.content,
                            tag,
                        },
                    )
                })
                .collect();
            for reply in self.send_batch(io, restores, true) {
                match reply? {
                    Msg::Ack { .. } => {}
                    Msg::Nack { reason, .. } => return Err(Self::map_nack(site, reason)),
                    other => {
                        return Err(ClientErr::multiple(format!(
                            "unexpected reply {:?} to RestoreBlock",
                            other.kind()
                        )))
                    }
                }
            }
            // Wave 3: release the drained slots.
            let takes: Vec<(usize, Msg)> = restore_rows
                .iter()
                .map(|&row| {
                    let tag = self.tag();
                    (s, Msg::SpareTake { row, tag })
                })
                .collect();
            for reply in self.send_batch(io, takes, true) {
                match reply? {
                    Msg::Ack { .. } => {}
                    Msg::Nack { reason, .. } => return Err(Self::map_nack(s, reason)),
                    other => {
                        return Err(ClientErr::multiple(format!(
                            "unexpected reply {:?} to SpareTake",
                            other.kind()
                        )))
                    }
                }
                drained += 1;
            }
        }
        Ok(drained)
    }
}

/// Outcome of one member-slot rebuild ([`ClientMachine::rebuild_member`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RebuildReport {
    /// Physical rows examined.
    pub rows_scanned: u64,
    /// Blocks reconstructed and installed into their row's spare.
    pub blocks_rebuilt: u64,
    /// Rows whose spare already stood in for the failed member (a
    /// redirected write or a cached reconstruction) — nothing to do.
    pub blocks_absorbed: u64,
    /// Rows skipped because the [`SparePolicy`] allocates no spare there.
    pub rows_spareless: u64,
    /// Bytes folded through [`xor_fold`] (source blocks × block size).
    pub bytes_xored: u64,
    /// `BlockRead`s issued per member slot — the read fan-out a rebuild
    /// puts on each surviving peer.
    pub peer_reads: Vec<u64>,
}

impl ClientMachine {
    // -- parallel rebuild (declustered recovery) --------------------------

    /// Rebuild believed-down member `owner`: reconstruct every data block
    /// it holds and install the results into the rows' spares, so
    /// subsequent degraded reads cost one access instead of `G` and a
    /// later recovery drain restores the site from its spares alone.
    ///
    /// Rows are processed in waves of `wave_rows`; within one wave each
    /// phase — spare probes, the `G` source reads of *every* row, spare
    /// installs — goes out as a single [`exchange_batch`], so a pipelining
    /// transport keeps all survivor sites busy at once. Reconstruction
    /// XORs run through the multi-way [`xor_fold`] kernel and every source
    /// UID is validated against the parity UID array (§3.3); a racing
    /// parity update surfaces as [`ClientErr::Inconsistent`], and a retry
    /// skips the rows already installed (the probe wave sees them
    /// absorbed), making the pass idempotent.
    ///
    /// [`exchange_batch`]: ClientIo::exchange_batch
    pub fn rebuild_member(
        &mut self,
        io: &mut dyn ClientIo,
        owner: usize,
        wave_rows: usize,
    ) -> Result<RebuildReport, ClientErr> {
        let n = self.geo.num_sites();
        if !self.down[owner] {
            return Err(ClientErr::Unavailable { site: owner });
        }
        for s in (0..n).filter(|&s| s != owner) {
            if self.down[s] {
                return Err(ClientErr::multiple(format!(
                    "cannot rebuild site {owner}: site {s} is down too"
                )));
            }
        }
        let wave_rows = wave_rows.max(1);
        let mut report = RebuildReport {
            peer_reads: vec![0; n],
            ..RebuildReport::default()
        };
        // The failed member's data rows (parity and spare rows hold no data
        // block to reconstruct; the site's own copies come back with its
        // disks on revive).
        let mut todo: Vec<u64> = Vec::new();
        for row in 0..self.geo.rows() {
            report.rows_scanned += 1;
            if self.geo.parity_site(row) == owner || self.geo.spare_site(row) == owner {
                continue;
            }
            if !self.spare_policy.has_spare(row) {
                report.rows_spareless += 1;
                continue;
            }
            todo.push(row);
        }
        for wave in todo.chunks(wave_rows) {
            // Wave 1: probe each row's spare (metadata only).
            let mut probes = Vec::with_capacity(wave.len());
            for &row in wave {
                let tag = self.tag();
                probes.push((
                    self.geo.spare_site(row),
                    Msg::SpareProbe {
                        row,
                        want_data: false,
                        tag,
                    },
                ));
            }
            let replies = self.send_batch(io, probes, true);
            let mut rebuild_rows: Vec<u64> = Vec::with_capacity(wave.len());
            for (&row, reply) in wave.iter().zip(replies) {
                let spare = self.geo.spare_site(row);
                match reply? {
                    Msg::SpareState {
                        slot: Some(SpareSlotWire { for_site, .. }),
                        ..
                    } if for_site == owner => report.blocks_absorbed += 1,
                    Msg::SpareState {
                        slot: Some(SpareSlotWire { for_site, .. }),
                        ..
                    } => {
                        return Err(ClientErr::multiple(format!(
                            "row {row} spare already used by site {for_site}"
                        )));
                    }
                    Msg::SpareState { slot: None, .. } => rebuild_rows.push(row),
                    Msg::Nack { reason, .. } => return Err(Self::map_nack(spare, reason)),
                    other => {
                        return Err(ClientErr::multiple(format!(
                            "unexpected reply {:?} to SpareProbe",
                            other.kind()
                        )))
                    }
                }
            }
            if rebuild_rows.is_empty() {
                continue;
            }
            // Wave 2: the `G` source reads of every row in the wave, one
            // pipelined batch across all survivors.
            let mut reqs = Vec::with_capacity(rebuild_rows.len() * (n - 2));
            for &row in &rebuild_rows {
                let spare = self.geo.spare_site(row);
                for s in (0..n).filter(|&s| s != owner && s != spare) {
                    let tag = self.tag();
                    reqs.push((s, Msg::BlockRead { row, tag }));
                    report.peer_reads[s] += 1;
                }
            }
            let mut replies = self.send_batch(io, reqs, true).into_iter();
            // Fold each row with the FOLD_WAYS kernel and validate UIDs.
            let mut installs = Vec::with_capacity(rebuild_rows.len());
            for &row in &rebuild_rows {
                let spare = self.geo.spare_site(row);
                let parity = self.geo.parity_site(row);
                let mut blocks: Vec<Bytes> = Vec::with_capacity(n - 2);
                let mut sources: Vec<(usize, Uid)> = Vec::with_capacity(n - 3);
                let mut parity_arr: Option<UidArray> = None;
                for s in (0..n).filter(|&s| s != owner && s != spare) {
                    match replies.next().expect("one reply per request")? {
                        Msg::BlockData {
                            data,
                            uid,
                            parity_uids,
                            ..
                        } => {
                            if s == parity {
                                let mut arr = UidArray::new(n);
                                for (i, u) in
                                    parity_uids.unwrap_or_default().iter().enumerate().take(n)
                                {
                                    arr.set(i, *u);
                                }
                                parity_arr = Some(arr);
                            } else {
                                sources.push((s, uid));
                            }
                            blocks.push(data);
                        }
                        Msg::Nack { reason, .. } => return Err(Self::map_nack(s, reason)),
                        other => {
                            return Err(ClientErr::multiple(format!(
                                "unexpected reply {:?} to BlockRead",
                                other.kind()
                            )))
                        }
                    }
                }
                let mut acc = vec![0u8; self.block_size];
                let views: Vec<&[u8]> = blocks.iter().map(|b| &b[..]).collect();
                xor_fold(&mut acc, &views);
                report.bytes_xored += (views.len() * self.block_size) as u64;
                let arr = parity_arr.unwrap_or_else(|| UidArray::new(n));
                if self.validate_uids {
                    for &(s, uid) in &sources {
                        if !arr.matches(s, uid) {
                            return Err(ClientErr::Inconsistent { site: s });
                        }
                    }
                }
                let tag = self.tag();
                installs.push((
                    spare,
                    Msg::SpareInstall {
                        row,
                        for_site: owner,
                        data: Bytes::from(acc),
                        content: SpareContent::Data {
                            uid: arr.get(owner),
                        },
                        tag,
                    },
                ));
            }
            // Wave 3: install the reconstructions into the spares.
            let spares: Vec<usize> = rebuild_rows
                .iter()
                .map(|&row| self.geo.spare_site(row))
                .collect();
            for (&spare, reply) in spares.iter().zip(self.send_batch(io, installs, true)) {
                match reply? {
                    Msg::Ack { .. } => report.blocks_rebuilt += 1,
                    Msg::Nack { reason, .. } => return Err(Self::map_nack(spare, reason)),
                    other => {
                        return Err(ClientErr::multiple(format!(
                            "unexpected reply {:?} to SpareInstall",
                            other.kind()
                        )))
                    }
                }
            }
        }
        Ok(report)
    }
}

impl crate::check::Checkable for ClientMachine {
    /// Only the believed-down list is observable, varying state: the
    /// geometry/policy fields are static configuration, `uid_gen` and
    /// `next_tag` are generator positions erased by renaming, and `trace`
    /// is diagnostic.
    fn canon(&self, c: &mut crate::check::Canonicalizer) {
        for flag in &self.down {
            c.raw(flag);
        }
    }
}
