//! The multi-group router: shard lookup in front of per-group clients.
//!
//! A sharded cluster runs `A` independent `G + 2` groups over a shared site
//! pool ([`ShardMap`]). Every runtime needs the same thin coordinator in
//! front of its per-group client machinery: resolve a [`GlobalAddr`] to
//! `(group, member slot, data index)`, hand the op to that group's handle,
//! and fan pool-site faults out to every group the site serves. [`Router`]
//! is that coordinator, written sans-IO like the rest of this crate: it is
//! generic over the per-group handle `H`, so the DES cluster (`radd-core`),
//! the threaded runtime (`radd-node`) and the socket runtime (`radd-rt`)
//! all reuse it — each handle transitively owns that group's
//! [`ClientMachine`](crate::ClientMachine).
//!
//! The router also carries the map's **placement epoch**. Operations tagged
//! with an epoch are checked first: a request routed under an older map is
//! refused with [`RouteError::StaleEpoch`] instead of landing on the wrong
//! site after a rebalance.

use radd_layout::{GlobalAddr, GroupId, ShardMap, ShardTarget, SiteId};
use std::fmt;

/// Routing failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteError {
    /// The address is past the end of the sharded space.
    OutOfRange {
        /// The offending address.
        addr: GlobalAddr,
        /// Size of the space.
        total: u64,
    },
    /// The caller's map epoch does not match the router's.
    StaleEpoch {
        /// The router's current epoch.
        current: u64,
        /// The epoch the caller routed under.
        seen: u64,
    },
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::OutOfRange { addr, total } => {
                write!(
                    f,
                    "address {addr} is outside the sharded space [0, {total})"
                )
            }
            RouteError::StaleEpoch { current, seen } => {
                write!(
                    f,
                    "stale shard map: routed under epoch {seen}, current is {current}"
                )
            }
        }
    }
}

impl std::error::Error for RouteError {}

/// Shard-lookup coordinator owning one handle per group.
///
/// `H` is whatever a runtime keeps per group — a DES cluster, a threaded
/// client, a socket connection bundle. The router owns the handles so a
/// lookup borrows the map and the target handle in one call.
#[derive(Debug)]
pub struct Router<H> {
    map: ShardMap,
    handles: Vec<H>,
}

impl<H> Router<H> {
    /// Build a router over `map`, creating one handle per group with
    /// `make_handle`.
    pub fn new(map: ShardMap, mut make_handle: impl FnMut(GroupId) -> H) -> Router<H> {
        let handles = (0..map.num_groups())
            .map(|k| make_handle(GroupId(k)))
            .collect();
        Router { map, handles }
    }

    /// Fallible version of [`new`]: abort on the first handle error.
    ///
    /// [`new`]: Router::new
    pub fn try_new<E>(
        map: ShardMap,
        mut make_handle: impl FnMut(GroupId) -> Result<H, E>,
    ) -> Result<Router<H>, E> {
        let handles = (0..map.num_groups())
            .map(|k| make_handle(GroupId(k)))
            .collect::<Result<_, E>>()?;
        Ok(Router { map, handles })
    }

    /// The shard map.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// Current placement epoch.
    pub fn epoch(&self) -> u64 {
        self.map.epoch()
    }

    /// Number of groups (= number of handles).
    pub fn num_groups(&self) -> usize {
        self.handles.len()
    }

    /// Refuse work routed under a stale map.
    pub fn check_epoch(&self, seen: u64) -> Result<(), RouteError> {
        if seen == self.map.epoch() {
            Ok(())
        } else {
            Err(RouteError::StaleEpoch {
                current: self.map.epoch(),
                seen,
            })
        }
    }

    /// Resolve `addr` to its target and the owning group's handle.
    pub fn route(&self, addr: GlobalAddr) -> Result<(ShardTarget, &H), RouteError> {
        let target = self.map.locate(addr).ok_or(RouteError::OutOfRange {
            addr,
            total: self.map.total_data_blocks(),
        })?;
        Ok((target, &self.handles[target.group.0]))
    }

    /// Mutable version of [`route`].
    ///
    /// [`route`]: Router::route
    pub fn route_mut(&mut self, addr: GlobalAddr) -> Result<(ShardTarget, &mut H), RouteError> {
        let target = self.map.locate(addr).ok_or(RouteError::OutOfRange {
            addr,
            total: self.map.total_data_blocks(),
        })?;
        Ok((target, &mut self.handles[target.group.0]))
    }

    /// The handle for `group`.
    pub fn group(&self, group: GroupId) -> &H {
        &self.handles[group.0]
    }

    /// Mutable handle for `group`.
    pub fn group_mut(&mut self, group: GroupId) -> &mut H {
        &mut self.handles[group.0]
    }

    /// Iterate `(group, handle)` pairs.
    pub fn groups(&self) -> impl Iterator<Item = (GroupId, &H)> {
        self.handles
            .iter()
            .enumerate()
            .map(|(k, h)| (GroupId(k), h))
    }

    /// Mutable iteration over `(group, handle)` pairs.
    pub fn groups_mut(&mut self) -> impl Iterator<Item = (GroupId, &mut H)> {
        self.handles
            .iter_mut()
            .enumerate()
            .map(|(k, h)| (GroupId(k), h))
    }

    /// Fan a pool-site fault out: every `(group, member slot)` hosted by
    /// `pool_site`, with mutable access to each group's handle. The
    /// callback runs once per affected group.
    pub fn for_pool_site(&mut self, pool_site: SiteId, mut f: impl FnMut(GroupId, SiteId, &mut H)) {
        for (group, member) in self.map.pool_site_slots(pool_site) {
            f(group, member, &mut self.handles[group.0]);
        }
    }

    /// Consume the router, yielding the map and handles.
    pub fn into_parts(self) -> (ShardMap, Vec<H>) {
        (self.map, self.handles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radd_layout::Geometry;

    fn router4() -> Router<Vec<String>> {
        let map = ShardMap::uniform(4, Geometry::new(2, 8).unwrap()).unwrap();
        Router::new(map, |_| Vec::new())
    }

    #[test]
    fn routes_to_owning_group() {
        let mut r = router4();
        let cap = r.map().group_capacity();
        for a in 0..r.map().total_data_blocks() {
            let (t, h) = r.route_mut(GlobalAddr(a)).unwrap();
            assert_eq!(t.group.0 as u64, a / cap);
            h.push(format!("{a}"));
        }
        // Every group handle saw exactly its own range.
        for (g, h) in r.groups() {
            assert_eq!(h.len() as u64, cap, "group {g} op count");
        }
    }

    #[test]
    fn out_of_range_is_refused() {
        let r = router4();
        let end = r.map().total_data_blocks();
        let err = r.route(GlobalAddr(end)).unwrap_err();
        assert!(matches!(err, RouteError::OutOfRange { .. }));
        assert!(err.to_string().contains(&format!("{end}")));
    }

    #[test]
    fn stale_epoch_is_refused() {
        let r = router4();
        assert!(r.check_epoch(0).is_ok());
        let err = r.check_epoch(7).unwrap_err();
        assert_eq!(
            err,
            RouteError::StaleEpoch {
                current: 0,
                seen: 7
            }
        );
        assert!(err.to_string().contains("stale"));
    }

    #[test]
    fn pool_site_fault_fans_out_to_every_group() {
        let mut r = router4();
        let mut hit = Vec::new();
        r.for_pool_site(0, |g, member, h| {
            hit.push((g, member));
            h.push("faulted".into());
        });
        // The uniform pool puts site 0 in all 4 groups, in rotated slots.
        assert_eq!(hit.len(), 4);
        let mut members: Vec<_> = hit.iter().map(|&(_, m)| m).collect();
        members.sort_unstable();
        assert_eq!(members, vec![0, 1, 2, 3]);
    }

    #[test]
    fn try_new_propagates_errors() {
        let map = ShardMap::uniform(2, Geometry::new(1, 6).unwrap()).unwrap();
        let r: Result<Router<()>, &str> =
            Router::try_new(map, |g| if g.0 == 1 { Err("boom") } else { Ok(()) });
        assert_eq!(r.unwrap_err(), "boom");
    }
}
