//! The per-site protocol state machine (§3.2–§3.3 server side), sans-IO.
//!
//! [`SiteMachine::handle`] consumes one delivered message and pushes the
//! resulting [`Effect`]s; [`SiteMachine::on_timer`] consumes a retransmit
//! timer firing. The machine owns every piece of §3 server state — block
//! UIDs, parity UID arrays, spare slots, the W1–W4 deferred-ack pipeline,
//! per-row stop-and-wait parity retransmission, and an at-most-once reply
//! cache — but never touches a socket, a thread, or a clock. The DES
//! cluster and the threaded runtime are both thin interpreters around it.
//!
//! ### Idempotence and retransmission
//!
//! Every request carries a `(src, tag)` identity. The machine remembers the
//! reply it gave to each recent request and *replays* it (marked
//! `replay: true`) when a retransmission arrives, so no request is executed
//! twice no matter how often the transport duplicates it. Parity updates
//! carry a second, protocol-level guard: the UID recorded in the row's
//! array slot (a retransmission whose ack was lost arrives with a UID the
//! slot already records — re-applying its XOR mask would corrupt parity).
//! Outbound parity updates are stop-and-wait per row: at most one UID per
//! `(row, site)` slot is ever in flight, so a retransmitted older mask can
//! never land after a newer one (the ABA the PR-1 soak plans exposed).
//!
//! ### Parity-update coalescing
//!
//! While a row's update is in flight, further writes to the row queue
//! behind it. Under [`CoalescePolicy::Merge`] the queued masks are
//! XOR-merged ([`ChangeMask::merge`]) into a *single* waiting update
//! carrying the newest UID — §7.4's bandwidth argument applied to bursts:
//! one wire message and one parity read-modify-write absorb the whole
//! burst, and every absorbed write's client reply resolves on that one
//! ack. The policy defaults to [`CoalescePolicy::Off`] so the DES
//! interpreter's Figure 3/4 cost receipts stay bit-for-bit unchanged; the
//! threaded runtime switches it on.

use crate::durable::DurableSiteState;
use crate::effect::{Blocks, Dest, Effect, IoPurpose};
use crate::fasthash::{FxHashMap, FxHashSet};
use crate::wire::{Msg, NackReason, SpareContent, SpareSlotWire};
use bytes::Bytes;
use radd_layout::Geometry;
use radd_parity::{ChangeMask, Uid, UidArray, UidGen};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// The three states of §3.1: "up — functioning normally, down — not
/// functioning, recovering — running recovery actions".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SiteState {
    /// Functioning normally.
    Up,
    /// Not functioning (temporary failure or disaster).
    Down,
    /// Restored and running recovery actions; also entered directly on a
    /// disk failure ("a disk failure will move a site directly from up to
    /// recovering").
    Recovering,
}

/// What kind of block a spare slot stands in for. The paper's row-K spare
/// can absorb *any* of the down site's row-K blocks; when the down site was
/// the row's parity site, the stand-in carries the UID array instead of a
/// single UID.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpareKind {
    /// Stand-in for a data block.
    Data {
        /// The UID consistent with the row's parity UID array (so validated
        /// reconstruction involving this content succeeds). The paper's
        /// "new UID … to make the block valid" corresponds to this slot
        /// existing.
        data_uid: Uid,
    },
    /// Stand-in for the down site's parity block.
    Parity {
        /// The row's UID array, maintained here while the parity site is
        /// down.
        uids: UidArray,
    },
}

/// A valid spare slot: this site's spare block of some row currently stands
/// in for another site's block (the content lives in the storage row).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpareSlot {
    /// Whose block this spare holds.
    pub for_site: usize,
    /// Data or parity stand-in.
    pub kind: SpareKind,
}

impl SpareSlot {
    /// The slot's UID metadata in wire form.
    pub fn content(&self) -> SpareContent {
        match &self.kind {
            SpareKind::Data { data_uid } => SpareContent::Data { uid: *data_uid },
            SpareKind::Parity { uids } => SpareContent::Parity {
                uids: uids.slots().to_vec(),
            },
        }
    }
}

/// Build a [`SpareKind`] back from its wire form.
pub fn kind_from_content(content: &SpareContent, num_sites: usize) -> SpareKind {
    match content {
        SpareContent::Data { uid } => SpareKind::Data { data_uid: *uid },
        SpareContent::Parity { uids } => {
            let mut arr = UidArray::new(num_sites);
            for (i, u) in uids.iter().enumerate().take(num_sites) {
                arr.set(i, *u);
            }
            SpareKind::Parity { uids: arr }
        }
    }
}

/// Whether queued parity updates for one row may be XOR-merged while an
/// earlier update is in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum CoalescePolicy {
    /// Every write ships its own parity update, strictly in order. The DES
    /// interpreter's default: cost receipts match the paper's per-write
    /// accounting exactly.
    #[default]
    Off,
    /// Masks queued behind an in-flight update merge into one waiting
    /// update (newest UID wins; every absorbed write is acknowledged by the
    /// merged update's ack). The threaded runtime's default.
    Merge,
}

/// A write whose client reply is deferred until its parity ack (W1 done,
/// W4 pending).
#[derive(Debug, Clone)]
struct PendingWrite {
    client: usize,
    client_tag: u64,
    row: u64,
}

/// A parity update waiting its turn in a row's stop-and-wait queue. The
/// wire message is built at launch time from the stored mask, so a merged
/// entry ships exactly one encoding.
#[derive(Debug, Clone)]
struct QueuedUpdate {
    tag: u64,
    uid: Uid,
    mask: ChangeMask,
    /// Parity tags of later writes folded into this entry
    /// ([`CoalescePolicy::Merge`]): their pending client replies resolve
    /// when this entry's ack lands.
    absorbed: Vec<u64>,
}

/// An outbound request awaiting its ack, for retransmission.
#[derive(Debug, Clone)]
struct Inflight {
    to: usize,
    msg: Msg,
    step: u32,
}

/// How many distinct `(src, tag)` replies the at-most-once cache retains.
const REPLY_CACHE_CAP: usize = 1024;

/// The per-site server machine.
#[derive(Debug, Clone)]
pub struct SiteMachine {
    site: usize,
    geo: Geometry,
    block_size: usize,
    state: SiteState,
    block_uids: Vec<Uid>,
    parity_uids: BTreeMap<u64, UidArray>,
    spares: BTreeMap<u64, SpareSlot>,
    invalid_rows: BTreeSet<u64>,
    uid_gen: UidGen,
    next_tag: u64,
    /// Writes whose client reply awaits a parity ack, keyed by the parity
    /// message's tag. Lookup-only (never iterated), so a fast hash map.
    pending: FxHashMap<u64, PendingWrite>,
    /// `(client, client_tag)` of writes currently in `pending` — a
    /// duplicate of an in-progress write is swallowed (its reply will go
    /// out when the parity ack lands).
    in_progress: FxHashSet<(usize, u64)>,
    /// Stop-and-wait per row: the front entry is in flight, the rest wait
    /// for its ack.
    parity_queue: FxHashMap<u64, VecDeque<QueuedUpdate>>,
    coalesce: CoalescePolicy,
    /// Writes absorbed into an already-queued parity update under
    /// [`CoalescePolicy::Merge`]; surfaced through the observability layer.
    coalesced_merges: u64,
    /// In-flight requests by tag, for timer-driven retransmission.
    inflight: FxHashMap<u64, Inflight>,
    /// At-most-once reply cache; eviction order lives in `reply_order`.
    replies: FxHashMap<(usize, u64), Msg>,
    reply_order: VecDeque<(usize, u64)>,
}

impl SiteMachine {
    /// A fresh, healthy site machine.
    pub fn new(site: usize, group_size: usize, rows: u64, block_size: usize) -> SiteMachine {
        SiteMachine {
            site,
            geo: Geometry::new(group_size, rows).expect("valid geometry"),
            block_size,
            state: SiteState::Up,
            block_uids: vec![Uid::INVALID; rows as usize],
            parity_uids: BTreeMap::new(),
            spares: BTreeMap::new(),
            invalid_rows: BTreeSet::new(),
            uid_gen: UidGen::new(site as u16),
            next_tag: 0,
            pending: FxHashMap::default(),
            in_progress: FxHashSet::default(),
            parity_queue: FxHashMap::default(),
            coalesce: CoalescePolicy::Off,
            coalesced_merges: 0,
            inflight: FxHashMap::default(),
            replies: FxHashMap::default(),
            reply_order: VecDeque::new(),
        }
    }

    // -- accessors used by drivers and invariant checkers ----------------

    /// This machine's site id.
    pub fn site(&self) -> usize {
        self.site
    }

    /// The layout geometry.
    pub fn geometry(&self) -> &Geometry {
        &self.geo
    }

    /// Current availability state.
    pub fn state(&self) -> SiteState {
        self.state
    }

    /// Drive an up/down/recovering transition (an input event owned by the
    /// driver: process death, revival, §5 isolation).
    pub fn set_state(&mut self, state: SiteState) {
        self.state = state;
    }

    /// Select the parity-update coalescing policy (see [`CoalescePolicy`]).
    pub fn set_coalesce(&mut self, policy: CoalescePolicy) {
        self.coalesce = policy;
    }

    /// The active coalescing policy.
    pub fn coalesce(&self) -> CoalescePolicy {
        self.coalesce
    }

    /// How many writes were XOR-merged into an already-queued parity update
    /// (always 0 under [`CoalescePolicy::Off`]).
    pub fn coalesced_merges(&self) -> u64 {
        self.coalesced_merges
    }

    /// The UID stored with the block at `row`.
    pub fn block_uid(&self, row: u64) -> Uid {
        self.block_uids[row as usize]
    }

    /// Overwrite the UID stored with the block at `row` (recovery
    /// bookkeeping).
    pub fn set_block_uid(&mut self, row: u64, uid: Uid) {
        self.block_uids[row as usize] = uid;
    }

    /// UID arrays for the rows where this site is the parity site.
    pub fn parity_uids(&self) -> &BTreeMap<u64, UidArray> {
        &self.parity_uids
    }

    /// Mutable parity UID arrays (recovery bookkeeping).
    pub fn parity_uids_mut(&mut self) -> &mut BTreeMap<u64, UidArray> {
        &mut self.parity_uids
    }

    /// The UID array for a parity row, created empty on first touch (all
    /// slots zero — consistent with never-written data blocks).
    pub fn parity_uid_array(&mut self, row: u64) -> &mut UidArray {
        let n = self.geo.num_sites();
        self.parity_uids
            .entry(row)
            .or_insert_with(|| UidArray::new(n))
    }

    /// Valid spare slots held by this site.
    pub fn spares(&self) -> &BTreeMap<u64, SpareSlot> {
        &self.spares
    }

    /// Mutable spare slots (driver-orchestrated installs/invalidations).
    pub fn spares_mut(&mut self) -> &mut BTreeMap<u64, SpareSlot> {
        &mut self.spares
    }

    /// Is the spare block of `row` valid at this site?
    pub fn spare_valid(&self, row: u64) -> bool {
        self.spares.contains_key(&row)
    }

    /// Rows whose local content is untrustworthy and must be rebuilt.
    pub fn invalid_rows(&self) -> &BTreeSet<u64> {
        &self.invalid_rows
    }

    /// Mutable invalid-row set (failure injection / recovery bookkeeping).
    pub fn invalid_rows_mut(&mut self) -> &mut BTreeSet<u64> {
        &mut self.invalid_rows
    }

    /// Mint a fresh UID from this site's generator.
    pub fn mint_uid(&mut self) -> Uid {
        self.uid_gen.next_uid()
    }

    /// A fresh site-unique request tag (site id in the high bits).
    pub fn fresh_tag(&mut self) -> u64 {
        self.next_tag += 1;
        ((self.site as u64 + 1) << 48) | self.next_tag
    }

    /// Writes still awaiting their parity ack.
    pub fn pending_writes(&self) -> usize {
        self.pending.len()
    }

    /// No request of ours is awaiting an ack (quiesced).
    pub fn all_acked(&self) -> bool {
        self.inflight.is_empty() && self.pending.is_empty()
    }

    /// Every in-flight (launched, unacked) parity update, as
    /// `(row, tag, uid, to)`. The model checker's at-most-one-writer
    /// invariant scans these against the messages still on the wire.
    pub fn inflight_updates(&self) -> Vec<(u64, u64, Uid, usize)> {
        let mut v: Vec<(u64, u64, Uid, usize)> = self
            .inflight
            .values()
            .filter_map(|inf| match &inf.msg {
                Msg::ParityUpdate { row, uid, tag, .. } => Some((*row, *tag, *uid, inf.to)),
                _ => None,
            })
            .collect();
        v.sort_unstable();
        v
    }

    /// Drop every cached at-most-once reply, as if the LRU cap had aged
    /// the whole cache out. The model checker uses this to exercise the
    /// §3.2 idempotence guard that backstops the cache: a duplicate
    /// arriving *after* eviction re-executes the handler, and only the
    /// UID check stops a parity mask from being applied twice.
    pub fn evict_replies(&mut self) {
        self.replies.clear();
        self.reply_order.clear();
    }

    /// Forget everything a site disaster loses: block UIDs, parity arrays,
    /// spare slots; every row becomes invalid.
    pub fn forget_all(&mut self) {
        for u in &mut self.block_uids {
            *u = Uid::INVALID;
        }
        self.parity_uids.clear();
        self.spares.clear();
        self.invalid_rows = (0..self.block_uids.len() as u64).collect();
    }

    /// The durable half of this machine's state, for persistence (see
    /// [`crate::durable`] for the durable/volatile split and why the two
    /// counters are part of it).
    pub fn durable_snapshot(&self) -> DurableSiteState {
        DurableSiteState {
            site: self.site,
            group_size: self.geo.group_size(),
            rows: self.block_uids.len() as u64,
            block_size: self.block_size,
            block_uids: self.block_uids.clone(),
            parity_uids: self
                .parity_uids
                .iter()
                .map(|(row, arr)| (*row, arr.slots().to_vec()))
                .collect(),
            spares: self
                .spares
                .iter()
                .map(|(row, slot)| (*row, slot.for_site, slot.content()))
                .collect(),
            invalid_rows: self.invalid_rows.iter().copied().collect(),
            uid_counter: self.uid_gen.counter(),
            next_tag: self.next_tag,
        }
    }

    /// A machine rebuilt from a durable snapshot, as a restarting process
    /// does after a crash. Volatile state (queues, in-flight requests, the
    /// reply cache) starts empty — peers retransmit what matters and the
    /// §3.2 UID guard absorbs the duplicates — and the machine comes up
    /// [`SiteState::Up`]: a snapshot taken at quiesce is complete, so no
    /// §3.3 recovery pass is needed.
    pub fn restore_durable(d: &DurableSiteState) -> SiteMachine {
        let mut m = SiteMachine::new(d.site, d.group_size, d.rows, d.block_size);
        assert_eq!(
            d.block_uids.len(),
            m.block_uids.len(),
            "snapshot geometry mismatch"
        );
        m.block_uids = d.block_uids.clone();
        let n = m.geo.num_sites();
        for (row, slots) in &d.parity_uids {
            let mut arr = UidArray::new(n);
            for (i, u) in slots.iter().enumerate().take(n) {
                arr.set(i, *u);
            }
            m.parity_uids.insert(*row, arr);
        }
        for (row, for_site, content) in &d.spares {
            m.spares.insert(
                *row,
                SpareSlot {
                    for_site: *for_site,
                    kind: kind_from_content(content, n),
                },
            );
        }
        m.invalid_rows = d.invalid_rows.iter().copied().collect();
        m.uid_gen = UidGen::restore(d.site as u16, d.uid_counter);
        m.next_tag = d.next_tag;
        m
    }

    /// Forget the metadata of `rows` (a replaced disk's blank blocks).
    pub fn forget_rows(&mut self, rows: std::ops::Range<u64>) {
        for row in rows {
            self.block_uids[row as usize] = Uid::INVALID;
            self.parity_uids.remove(&row);
            self.spares.remove(&row);
            self.invalid_rows.insert(row);
        }
    }

    /// W1 applied under driver orchestration (a recovering site's write,
    /// where the driver supplies the old value from its oracle): write the
    /// block with a fresh UID, clear the row's invalid mark, and return the
    /// UID for the caller's W3.
    pub fn apply_w1(
        &mut self,
        blocks: &mut dyn Blocks,
        row: u64,
        data: &[u8],
        out: &mut Vec<Effect>,
    ) -> Option<Uid> {
        let uid = self.uid_gen.next_uid();
        blocks.write(row, data).ok()?;
        out.push(Effect::Write {
            row,
            purpose: IoPurpose::WriteData,
        });
        self.block_uids[row as usize] = uid;
        self.invalid_rows.remove(&row);
        Some(uid)
    }

    // -- the event handlers ----------------------------------------------

    fn reply(&mut self, out: &mut Vec<Effect>, src: usize, request_tag: u64, msg: Msg) {
        self.cache_reply(src, request_tag, msg.clone());
        out.push(Effect::send(Dest::Peer(src), msg));
    }

    fn cache_reply(&mut self, src: usize, tag: u64, msg: Msg) {
        if self.replies.insert((src, tag), msg).is_none() {
            self.reply_order.push_back((src, tag));
            if self.reply_order.len() > REPLY_CACHE_CAP {
                if let Some(old) = self.reply_order.pop_front() {
                    self.replies.remove(&old);
                }
            }
        }
    }

    /// Handle one delivered message from peer `src`, appending effects.
    pub fn handle(&mut self, blocks: &mut dyn Blocks, src: usize, msg: Msg, out: &mut Vec<Effect>) {
        if msg.is_request() {
            let key = (src, msg.tag());
            // At-most-once: replay the cached reply to a duplicate request
            // without re-executing it.
            if let Some(cached) = self.replies.get(&key) {
                out.push(Effect::Send {
                    to: Dest::Peer(src),
                    wire: cached.wire_size(),
                    msg: cached.clone(),
                    retransmit: false,
                    replay: true,
                });
                return;
            }
            // A duplicate of a write still waiting for its parity ack:
            // swallow; the deferred reply will answer the original.
            if self.in_progress.contains(&key) {
                return;
            }
        }
        match msg {
            Msg::Read { index, tag } => self.on_read(blocks, src, index, tag, out),
            Msg::Write { index, data, tag } => self.on_write(blocks, src, index, &data, tag, out),
            Msg::ParityUpdate {
                row,
                mask_wire,
                uid,
                from_site,
                tag,
            } => self.on_parity_update(blocks, src, row, &mask_wire, uid, from_site, tag, out),
            Msg::Ack { tag } => self.on_ack(src, tag, out),
            Msg::SpareProbe {
                row,
                want_data,
                tag,
            } => self.on_spare_probe(blocks, src, row, want_data, tag, out),
            Msg::SpareInstall {
                row,
                for_site,
                data,
                content,
                tag,
            } => self.on_spare_install(blocks, src, row, for_site, data, &content, tag, out),
            Msg::BlockRead { row, tag } => self.on_block_read(blocks, src, row, tag, out),
            Msg::SpareDrainList { for_site, tag } => {
                let rows: Vec<u64> = self
                    .spares
                    .iter()
                    .filter(|(_, s)| s.for_site == for_site)
                    .map(|(&r, _)| r)
                    .collect();
                self.reply(out, src, tag, Msg::SpareRows { tag, rows });
            }
            Msg::SpareTake { row, tag } => {
                // Idempotent invalidation: acked even if the slot is
                // already gone (the drain restored the block first, so a
                // lost ack costs nothing).
                #[cfg(feature = "mutations")]
                let take = !crate::mutations::is(crate::mutations::Mutation::SpareNoInvalidate);
                #[cfg(not(feature = "mutations"))]
                let take = true;
                if take {
                    self.spares.remove(&row);
                }
                self.reply(out, src, tag, Msg::Ack { tag });
            }
            Msg::RestoreBlock {
                row,
                data,
                content,
                tag,
            } => self.on_restore(blocks, src, row, data, &content, tag, out),
            // Replies that reach a site outside its pending table are stale
            // (e.g. an ack for a write whose site restarted): drop them.
            Msg::ReadOk { .. }
            | Msg::WriteOk { .. }
            | Msg::Nack { .. }
            | Msg::BlockData { .. }
            | Msg::SpareState { .. }
            | Msg::SpareRows { .. } => {}
        }
    }

    fn on_read(
        &mut self,
        blocks: &mut dyn Blocks,
        src: usize,
        index: u64,
        tag: u64,
        out: &mut Vec<Effect>,
    ) {
        if index >= self.geo.data_capacity(self.site) {
            return self.nack(out, src, tag, NackReason::OutOfRange);
        }
        let row = self.geo.data_to_physical(self.site, index);
        if self.invalid_rows.contains(&row) {
            return self.nack(out, src, tag, NackReason::Unavailable);
        }
        let Ok(data) = blocks.read(row) else {
            return self.nack(out, src, tag, NackReason::Unavailable);
        };
        out.push(Effect::Read {
            row,
            purpose: IoPurpose::Data,
        });
        self.reply(out, src, tag, Msg::ReadOk { tag, data });
    }

    #[allow(clippy::too_many_arguments)]
    fn on_write(
        &mut self,
        blocks: &mut dyn Blocks,
        src: usize,
        index: u64,
        data: &Bytes,
        tag: u64,
        out: &mut Vec<Effect>,
    ) {
        if index >= self.geo.data_capacity(self.site) {
            return self.nack(out, src, tag, NackReason::OutOfRange);
        }
        if data.len() != self.block_size {
            return self.nack(out, src, tag, NackReason::BadSize);
        }
        let row = self.geo.data_to_physical(self.site, index);
        // W2: old value from the "buffer pool" — our own storage.
        let Ok(old) = blocks.read(row) else {
            return self.nack(out, src, tag, NackReason::Unavailable);
        };
        out.push(Effect::Read {
            row,
            purpose: IoPurpose::OldValue,
        });
        // W1: local write with a fresh UID.
        let uid = self.uid_gen.next_uid();
        if blocks.write_owned(row, data.clone()).is_err() {
            return self.nack(out, src, tag, NackReason::Unavailable);
        }
        out.push(Effect::Write {
            row,
            purpose: IoPurpose::WriteData,
        });
        #[cfg(feature = "mutations")]
        let shipped_uid = if crate::mutations::is(crate::mutations::Mutation::DroppedUidBump) {
            self.block_uids[row as usize] // the stale pre-W1 UID
        } else {
            uid
        };
        #[cfg(not(feature = "mutations"))]
        let shipped_uid = uid;
        self.block_uids[row as usize] = uid;
        self.invalid_rows.remove(&row);
        // W3: change mask to the parity site; defer the client reply until
        // the ack (the §6 "done = prepared" discipline).
        let mask = ChangeMask::diff(&old, data);
        let ptag = self.fresh_tag();
        self.pending.insert(
            ptag,
            PendingWrite {
                client: src,
                client_tag: tag,
                row,
            },
        );
        self.in_progress.insert((src, tag));
        out.push(Effect::DeferAck { tag, row });
        // Stop-and-wait per row: send immediately only if no earlier
        // update for this row is still awaiting its ack. Under the Merge
        // policy a write landing behind an in-flight update folds into the
        // single waiting entry instead of queueing its own (the front is
        // never touched — its bytes may already be on the wire).
        let queue = self.parity_queue.entry(row).or_default();
        if self.coalesce == CoalescePolicy::Merge && queue.len() >= 2 {
            let back = queue.back_mut().expect("len >= 2");
            back.mask = back.mask.merge(&mask);
            back.uid = shipped_uid;
            back.absorbed.push(ptag);
            self.coalesced_merges += 1;
        } else {
            queue.push_back(QueuedUpdate {
                tag: ptag,
                uid: shipped_uid,
                mask,
                absorbed: Vec::new(),
            });
            if queue.len() == 1 {
                self.launch_front(row, out);
            }
        }
    }

    /// Build the wire message for `row`'s queue front and send it.
    fn launch_front(&mut self, row: u64, out: &mut Vec<Effect>) {
        let site = self.site;
        let Some((tag, msg)) = self
            .parity_queue
            .get(&row)
            .and_then(|q| q.front())
            .map(|front| {
                (
                    front.tag,
                    Msg::ParityUpdate {
                        row,
                        mask_wire: front.mask.encode(),
                        uid: front.uid,
                        from_site: site,
                        tag: front.tag,
                    },
                )
            })
        else {
            return;
        };
        let to = self.geo.parity_site(row);
        self.launch(to, tag, msg, out);
    }

    fn launch(&mut self, to: usize, tag: u64, msg: Msg, out: &mut Vec<Effect>) {
        out.push(Effect::send(Dest::Site(to), msg.clone()));
        out.push(Effect::SetTimer { tag, step: 0 });
        self.inflight
            .insert(msg.tag(), Inflight { to, msg, step: 0 });
        debug_assert_eq!(tag, self.inflight[&tag].msg.tag());
    }

    #[allow(clippy::too_many_arguments)]
    fn on_parity_update(
        &mut self,
        blocks: &mut dyn Blocks,
        src: usize,
        row: u64,
        mask_wire: &Bytes,
        uid: Uid,
        from_site: usize,
        tag: u64,
        out: &mut Vec<Effect>,
    ) {
        debug_assert_eq!(self.geo.parity_site(row), self.site);
        // A recovering parity site whose array block for this row is blank
        // must have the row rebuilt before the mask lands on garbage. The
        // machine cannot rebuild (that needs remote reads); escalate to the
        // driver, which rebuilds and re-delivers.
        if self.invalid_rows.contains(&row) {
            out.push(Effect::NeedParityRebuild { row });
            return;
        }
        // §3.2 idempotence guard: a retransmission whose ack was lost
        // arrives with a UID this slot already records — re-applying its
        // XOR mask would corrupt the parity block, so just ack again.
        let n = self.geo.num_sites();
        let already = self
            .parity_uids
            .get(&row)
            .is_some_and(|a| a.get(from_site) == uid);
        #[cfg(feature = "mutations")]
        let already = already && !crate::mutations::is(crate::mutations::Mutation::AbaDoubleApply);
        if !already {
            let mut parity = match blocks.read(row) {
                Ok(d) => d.to_vec(),
                Err(_) => {
                    // Row lives on a failed disk: the row's spare block
                    // must stand in; escalate to the driver.
                    out.push(Effect::ParityUnservable { row });
                    return;
                }
            };
            out.push(Effect::Read {
                row,
                purpose: IoPurpose::ParityApply,
            });
            // Formula (1), XORed straight from the wire buffer.
            ChangeMask::apply_wire(mask_wire, &mut parity).expect("well-formed mask");
            if blocks.write_owned(row, Bytes::from(parity)).is_err() {
                out.push(Effect::ParityUnservable { row });
                return;
            }
            out.push(Effect::Write {
                row,
                purpose: IoPurpose::ParityApply,
            });
            self.parity_uids
                .entry(row)
                .or_insert_with(|| UidArray::new(n))
                .set(from_site, uid); // W4
        }
        self.reply(out, src, tag, Msg::Ack { tag });
    }

    /// Acknowledge the deferred write behind parity tag `tag`: emit the
    /// client's `WriteOk` and cache it for duplicate requests.
    fn resolve_pending(&mut self, tag: u64, out: &mut Vec<Effect>) {
        if let Some(p) = self.pending.remove(&tag) {
            self.in_progress.remove(&(p.client, p.client_tag));
            let done = Msg::WriteOk { tag: p.client_tag };
            self.cache_reply(p.client, p.client_tag, done.clone());
            out.push(Effect::send(Dest::Peer(p.client), done));
        }
    }

    fn on_ack(&mut self, _src: usize, tag: u64, out: &mut Vec<Effect>) {
        if self.inflight.remove(&tag).is_some() {
            out.push(Effect::ClearTimer { tag });
        }
        // Duplicate acks (from retransmissions whose originals also got
        // through) fall out of the pending table as no-ops.
        if let Some(p) = self.pending.remove(&tag) {
            self.in_progress.remove(&(p.client, p.client_tag));
            let done = Msg::WriteOk { tag: p.client_tag };
            self.cache_reply(p.client, p.client_tag, done.clone());
            out.push(Effect::send(Dest::Peer(p.client), done));
            // Advance the row's stop-and-wait queue: resolve every write the
            // acked entry absorbed (coalescing), then launch the next queued
            // update now that its predecessor is applied.
            if let Some(queue) = self.parity_queue.get_mut(&p.row) {
                if queue.front().map(|q| q.tag) == Some(tag) {
                    let front = queue.pop_front().expect("front exists");
                    for atag in front.absorbed {
                        self.resolve_pending(atag, out);
                    }
                }
            }
            match self.parity_queue.get(&p.row) {
                Some(queue) if !queue.is_empty() => self.launch_front(p.row, out),
                Some(_) => {
                    self.parity_queue.remove(&p.row);
                }
                None => {}
            }
        }
    }

    fn on_spare_probe(
        &mut self,
        blocks: &mut dyn Blocks,
        src: usize,
        row: u64,
        want_data: bool,
        tag: u64,
        out: &mut Vec<Effect>,
    ) {
        debug_assert_eq!(self.geo.spare_site(row), self.site);
        let slot = match self.spares.get(&row) {
            None => None,
            Some(s) => {
                let (data, io) = if want_data {
                    match blocks.read(row) {
                        Ok(d) => (d, true),
                        Err(_) => return self.nack(out, src, tag, NackReason::Unavailable),
                    }
                } else {
                    // Validity/ownership is a metadata check — a control
                    // message, no block I/O (the paper's "probing an
                    // invalid spare costs no block I/O" convention extends
                    // to ownership probes).
                    (Bytes::new(), false)
                };
                if io {
                    out.push(Effect::Read {
                        row,
                        purpose: IoPurpose::SpareRead,
                    });
                }
                Some(SpareSlotWire {
                    for_site: s.for_site,
                    data,
                    content: s.content(),
                })
            }
        };
        self.reply(out, src, tag, Msg::SpareState { tag, slot });
    }

    #[allow(clippy::too_many_arguments)]
    fn on_spare_install(
        &mut self,
        blocks: &mut dyn Blocks,
        src: usize,
        row: u64,
        for_site: usize,
        data: Bytes,
        content: &SpareContent,
        tag: u64,
        out: &mut Vec<Effect>,
    ) {
        debug_assert_eq!(self.geo.spare_site(row), self.site);
        if data.len() != self.block_size {
            return self.nack(out, src, tag, NackReason::BadSize);
        }
        // Two failures may not share one spare: an install for a site the
        // slot does not already stand in for is refused.
        if let Some(slot) = self.spares.get(&row) {
            if slot.for_site != for_site {
                return self.nack(out, src, tag, NackReason::Conflict);
            }
        }
        if blocks.write_owned(row, data).is_err() {
            return self.nack(out, src, tag, NackReason::Unavailable);
        }
        out.push(Effect::Write {
            row,
            purpose: IoPurpose::SpareInstall,
        });
        let n = self.geo.num_sites();
        self.spares.insert(
            row,
            SpareSlot {
                for_site,
                kind: kind_from_content(content, n),
            },
        );
        self.reply(out, src, tag, Msg::Ack { tag });
    }

    fn on_block_read(
        &mut self,
        blocks: &mut dyn Blocks,
        src: usize,
        row: u64,
        tag: u64,
        out: &mut Vec<Effect>,
    ) {
        if self.invalid_rows.contains(&row) {
            return self.nack(out, src, tag, NackReason::Unavailable);
        }
        let Ok(data) = blocks.read(row) else {
            return self.nack(out, src, tag, NackReason::Unavailable);
        };
        out.push(Effect::Read {
            row,
            purpose: IoPurpose::Reconstruct,
        });
        let parity_uids = if self.geo.parity_site(row) == self.site {
            let n = self.geo.num_sites();
            Some(
                self.parity_uids
                    .get(&row)
                    .cloned()
                    .unwrap_or_else(|| UidArray::new(n))
                    .slots()
                    .to_vec(),
            )
        } else {
            None
        };
        let uid = self.block_uids[row as usize];
        self.reply(
            out,
            src,
            tag,
            Msg::BlockData {
                tag,
                data,
                uid,
                parity_uids,
            },
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn on_restore(
        &mut self,
        blocks: &mut dyn Blocks,
        src: usize,
        row: u64,
        data: Bytes,
        content: &SpareContent,
        tag: u64,
        out: &mut Vec<Effect>,
    ) {
        if data.len() != self.block_size {
            return self.nack(out, src, tag, NackReason::BadSize);
        }
        if blocks.write_owned(row, data).is_err() {
            return self.nack(out, src, tag, NackReason::Unavailable);
        }
        out.push(Effect::Write {
            row,
            purpose: IoPurpose::Restore,
        });
        let n = self.geo.num_sites();
        match kind_from_content(content, n) {
            SpareKind::Data { data_uid } => self.block_uids[row as usize] = data_uid,
            SpareKind::Parity { uids } => {
                self.parity_uids.insert(row, uids);
            }
        }
        self.invalid_rows.remove(&row);
        self.reply(out, src, tag, Msg::Ack { tag });
    }

    fn nack(&mut self, out: &mut Vec<Effect>, src: usize, tag: u64, reason: NackReason) {
        self.reply(out, src, tag, Msg::Nack { tag, reason });
    }

    /// The retransmit timer for `tag` fired: resend if still unacked and
    /// re-arm with the next backoff step.
    pub fn on_timer(&mut self, tag: u64, out: &mut Vec<Effect>) {
        if let Some(inf) = self.inflight.get_mut(&tag) {
            inf.step += 1;
            out.push(Effect::Send {
                to: Dest::Site(inf.to),
                wire: inf.msg.wire_size(),
                msg: inf.msg.clone(),
                retransmit: true,
                replay: false,
            });
            out.push(Effect::SetTimer {
                tag,
                step: inf.step,
            });
        }
    }
}

impl crate::check::Checkable for SiteMachine {
    /// Canonical scan, in fixed field order. Excluded as unobservable:
    /// `uid_gen`/`next_tag` (renaming makes generator positions
    /// irrelevant), `Inflight::step` (retransmission backoff counter),
    /// `coalesced_merges` (a statistic), and static configuration
    /// (`site`, `geo`, `block_size`, `coalesce` — constant per model).
    fn canon(&self, c: &mut crate::check::Canonicalizer) {
        c.raw(&(self.state as u8));
        for uid in &self.block_uids {
            c.uid(*uid);
        }
        for (row, arr) in &self.parity_uids {
            c.raw(row);
            for uid in arr.slots() {
                c.uid(*uid);
            }
        }
        for (row, slot) in &self.spares {
            c.raw(row);
            c.raw(&slot.for_site);
            match &slot.kind {
                SpareKind::Data { data_uid } => {
                    c.raw(&0u8);
                    c.uid(*data_uid);
                }
                SpareKind::Parity { uids } => {
                    c.raw(&1u8);
                    for uid in uids.slots() {
                        c.uid(*uid);
                    }
                }
            }
        }
        for row in &self.invalid_rows {
            c.raw(row);
        }
        let mut pending: Vec<_> = self.pending.iter().collect();
        pending.sort_unstable_by_key(|(tag, _)| **tag);
        for (tag, p) in pending {
            c.tag(*tag);
            c.raw(&p.client);
            c.tag(p.client_tag);
            c.raw(&p.row);
        }
        let mut in_progress: Vec<_> = self.in_progress.iter().collect();
        in_progress.sort_unstable();
        for (client, tag) in in_progress {
            c.raw(client);
            c.tag(*tag);
        }
        let mut queues: Vec<_> = self
            .parity_queue
            .iter()
            .filter(|(_, q)| !q.is_empty())
            .collect();
        queues.sort_unstable_by_key(|(row, _)| **row);
        for (row, queue) in queues {
            c.raw(row);
            for entry in queue {
                c.tag(entry.tag);
                c.uid(entry.uid);
                c.raw(&entry.mask.encode()[..]);
                for absorbed in &entry.absorbed {
                    c.tag(*absorbed);
                }
            }
        }
        let mut inflight: Vec<_> = self.inflight.iter().collect();
        inflight.sort_unstable_by_key(|(tag, _)| **tag);
        for (tag, inf) in inflight {
            c.tag(*tag);
            c.raw(&inf.to);
            inf.msg.canon(c);
        }
        // The reply cache in insertion (= eviction) order, which
        // `reply_order` already records deterministically.
        for key in &self.reply_order {
            c.raw(&key.0);
            c.tag(key.1);
            if let Some(msg) = self.replies.get(key) {
                msg.canon(c);
            }
        }
    }
}
