//! Normalised effect traces for cross-interpreter differential testing.
//!
//! [`trace`] projects an [`Effect`] onto the transport- and clock-free
//! subset two different drivers must agree on: what was sent where (and how
//! many wire bytes it cost) and which local blocks were touched, why.
//! Timer arming, retransmissions, and duplicate-reply replays are dropped —
//! they exist precisely because real transports lose and reorder messages,
//! so a lossy threaded run and a lossless DES run still produce identical
//! filtered traces.

use crate::effect::{Dest, Effect, IoPurpose};
use crate::wire::MsgKind;
use serde::{Deserialize, Serialize};

/// One normalised trace entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEntry {
    /// A first-time send.
    Send {
        /// Destination.
        to: Dest,
        /// Message kind.
        kind: MsgKind,
        /// Request/reply tag.
        tag: u64,
        /// Charged wire bytes.
        wire: usize,
    },
    /// A local block read.
    Read {
        /// Physical row.
        row: u64,
        /// Why.
        purpose: IoPurpose,
    },
    /// A local block write.
    Write {
        /// Physical row.
        row: u64,
        /// Why.
        purpose: IoPurpose,
    },
    /// A deferred client reply (W1 done, awaiting the parity ack).
    DeferAck {
        /// Deferred request tag.
        tag: u64,
        /// Gating row.
        row: u64,
    },
}

/// Project an effect onto the normalised trace, or `None` for effects that
/// legitimately differ between transports (timers, retransmits, replays,
/// driver escalations).
pub fn trace(effect: &Effect) -> Option<TraceEntry> {
    match effect {
        Effect::Send {
            retransmit: false,
            replay: false,
            to,
            msg,
            wire,
        } => Some(TraceEntry::Send {
            to: *to,
            kind: msg.kind(),
            tag: msg.tag(),
            wire: *wire,
        }),
        Effect::Send { .. } => None,
        Effect::Read { row, purpose } => Some(TraceEntry::Read {
            row: *row,
            purpose: *purpose,
        }),
        Effect::Write { row, purpose } => Some(TraceEntry::Write {
            row: *row,
            purpose: *purpose,
        }),
        Effect::DeferAck { tag, row } => Some(TraceEntry::DeferAck {
            tag: *tag,
            row: *row,
        }),
        Effect::SetTimer { .. } | Effect::ClearTimer { .. } => None,
        Effect::NeedParityRebuild { .. } | Effect::ParityUnservable { .. } => None,
    }
}
