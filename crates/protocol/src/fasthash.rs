//! A minimal multiply-rotate hasher for the machines' bookkeeping maps.
//!
//! Every healthy write touches the pending/inflight/reply tables several
//! times, all keyed by small integers (tags, rows, peer ids). The standard
//! library's default `SipHash` is DoS-resistant but costs more than the
//! lookup itself for such keys; this hasher — the well-known `FxHash`
//! scheme from the Firefox/rustc codebases — is a rotate, an XOR, and a
//! multiply per word. Keys here are protocol-internal (never
//! attacker-chosen), so collision-flooding resistance buys nothing.
//!
//! Only maps that are **never iterated** may use these aliases: iteration
//! order of a hash map is arbitrary, and the deterministic simulator's
//! receipts must not depend on it. Tables whose iteration order reaches
//! effects (spare slots, invalid rows, parity UID arrays) stay in
//! `BTreeMap`s.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-rotate hasher; state is a single `u64`.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

/// Knuth-style multiplicative constant (golden ratio of 2^64).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut last = [0u8; 8];
            last[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(last));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `HashMap` keyed through [`FxHasher`]. Lookup-only tables — never iterate.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed through [`FxHasher`]. Lookup-only tables — never iterate.
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_hash_distinctly_enough() {
        let mut seen = std::collections::BTreeSet::new();
        for tag in 0u64..10_000 {
            let mut h = FxHasher::default();
            h.write_u64(tag);
            seen.insert(h.finish());
        }
        assert_eq!(seen.len(), 10_000, "sequential tags must not collide");
    }

    #[test]
    fn maps_behave_like_std() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(7, "seven");
        m.insert(8, "eight");
        assert_eq!(m.remove(&7), Some("seven"));
        assert_eq!(m.get(&8), Some(&"eight"));
        let mut s: FxHashSet<(usize, u64)> = FxHashSet::default();
        assert!(s.insert((1, 2)));
        assert!(!s.insert((1, 2)));
        assert!(s.contains(&(1, 2)));
    }
}
