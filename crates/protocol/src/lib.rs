//! # radd-protocol — the sans-IO RADD state machines
//!
//! One implementation of the paper's §3 multiple-copy algorithm and §5
//! partition rules, shared by every runtime. The crate is deliberately
//! **pure**: no clocks, no threads, no channels, no sockets — machines
//! consume *events* (delivered messages, timer firings, state transitions)
//! and emit *effects* (sends with wire sizes, local block I/O receipts,
//! timer arm/disarm requests) that a surrounding driver interprets.
//!
//! * [`SiteMachine`] — the per-site server: W1–W4 deferred-ack writes,
//!   parity read-modify-write with the §3.2 UID idempotence guard,
//!   stop-and-wait per-row retransmission, spare-slot lifecycle, §3.3
//!   UID-array maintenance, and an at-most-once reply cache.
//! * [`ClientMachine`] — the client: degraded reads via spare or validated
//!   XOR reconstruction, W1' redirected writes, and the recovery drain.
//! * [`partition`] — §5: when a network partition may be treated as a
//!   single site failure and when the system must block.
//!
//! Two drivers ship in this workspace: the deterministic DES cluster
//! (`radd-core`), which interprets effects synchronously and turns them
//! into Figure-3 cost receipts, and the threaded runtime (`radd-node`),
//! which interprets them over lossy in-process endpoints with real
//! retransmission timers. A differential test drives both with the same
//! workload and asserts identical normalised effect traces.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
pub mod client;
pub mod codec;
pub mod durable;
pub mod effect;
pub mod events;
pub mod fasthash;
#[cfg(feature = "mutations")]
pub mod mutations;
pub mod obs;
pub mod partition;
pub mod router;
pub mod server;
pub mod trace;
pub mod wire;

pub use check::{
    check_spare_freshness, check_spare_structure, check_stripe_parity, check_uid_agreement,
    Canonicalizer, Checkable,
};
pub use client::{ClientErr, ClientIo, ClientMachine, RebuildReport, SparePolicy};
pub use codec::{decode_msg, encode_msg, encode_msg_vec, CodecError};
pub use durable::{DurableError, DurableSiteState};
pub use effect::{BlockFault, Blocks, Dest, Effect, IoPurpose, MemBlocks};
pub use events::FailureKind;
pub use obs::{obs_event, ObsEvent};
pub use partition::{classify, gate, Gate, PartitionVerdict};
pub use router::{RouteError, Router};
pub use server::{kind_from_content, CoalescePolicy, SiteMachine, SiteState, SpareKind, SpareSlot};
pub use trace::{trace, TraceEntry};
pub use wire::{
    Msg, MsgKind, NackReason, SpareContent, SpareSlotWire, BLOCK_MSG_HEADER, CONTROL_MSG_BYTES,
};
