//! Seeded protocol mutants for validating the model checker.
//!
//! Compiled only under the `mutations` feature, this module re-introduces
//! three known-bad protocol variants behind a process-global switch. Each is
//! a bug class that either actually occurred during development (the ABA
//! double-apply that PR 1's loss plans exposed) or is a canonical way to get
//! the paper's algorithms wrong. The `radd-check` crate's CI job arms each
//! mutant in turn and proves the bounded explorer catches it with a short
//! replayable counterexample; an uncaught mutant fails the build.
//!
//! The switch is a global atomic rather than per-machine state so that the
//! same armed mutant affects every `SiteMachine` in a process — including
//! ones constructed deep inside a driver the test never touches directly.
//! Tests that arm mutants must serialise on [`test_lock`] (Rust runs tests
//! in threads within one process).

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, MutexGuard};

/// The three seeded protocol bugs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Disable the §3.2 UID idempotence guard in the parity site's
    /// read-modify-write: a duplicated `ParityUpdate` re-applies its XOR
    /// mask, cancelling the first application and leaving the parity block
    /// stale (the ABA corruption the stop-and-wait layer exists to stop).
    AbaDoubleApply = 1,
    /// W3 ships the *pre-write* block UID in the parity update instead of
    /// the freshly minted W1 UID, so the parity site's §3.3 UID array stops
    /// agreeing with the data site's block UID — validated reconstruction
    /// of that block will wrongly refuse (or wrongly accept stale bytes).
    DroppedUidBump = 2,
    /// `SpareTake` acks without removing the spare slot, leaving a stale
    /// stand-in behind after the recovery drain; the next write to the
    /// covered block makes the spare serve old bytes to degraded readers.
    SpareNoInvalidate = 3,
}

/// 0 = no mutant armed; otherwise a [`Mutation`] discriminant.
static ARMED: AtomicU8 = AtomicU8::new(0);

/// Serialises tests that arm mutants (the switch is process-global).
static TEST_LOCK: Mutex<()> = Mutex::new(());

/// Arm `mutation` (or disarm everything with `None`). Affects every
/// protocol machine in the process from the next handled event on.
pub fn arm(mutation: Option<Mutation>) {
    ARMED.store(mutation.map_or(0, |m| m as u8), Ordering::SeqCst);
}

/// The currently armed mutant, if any.
pub fn armed() -> Option<Mutation> {
    match ARMED.load(Ordering::SeqCst) {
        1 => Some(Mutation::AbaDoubleApply),
        2 => Some(Mutation::DroppedUidBump),
        3 => Some(Mutation::SpareNoInvalidate),
        _ => None,
    }
}

/// Is `mutation` the armed mutant? (The hot-path check the hooks use.)
#[inline]
pub fn is(mutation: Mutation) -> bool {
    ARMED.load(Ordering::Relaxed) == mutation as u8
}

/// Take the global test lock, disarming on acquisition so a previous
/// panicked holder cannot leak an armed mutant into this test.
pub fn test_lock() -> MutexGuard<'static, ()> {
    let guard = match TEST_LOCK.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    arm(None);
    guard
}
