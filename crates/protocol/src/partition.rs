//! §5 network-partition rules, exactly once.
//!
//! "If the partition looks like a single failure, e.g. there are two
//! collections with respectively G+1 and 1 site, then the algorithms of
//! Section 3 apply to the partition with G+1 members. … Any other network
//! partition looks like a multiple site failure … the system must block."
//!
//! The substrate (`radd-net`) owns *who can talk to whom*; this module owns
//! what a given split **means** for availability, and both the DES cluster
//! and any future transport gate operations through [`gate`].

use serde::{Deserialize, Serialize};

/// What a partition means for RADD availability (§5).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PartitionVerdict {
    /// All sites in one group — no partition, normal operation.
    Connected,
    /// The split looks like a single site failure: the listed majority group
    /// (`G + 1` of the `G + 2` sites) may run the Section 3 algorithms,
    /// treating the singleton as down; the singleton must cease processing.
    SingleFailureLike {
        /// Sites in the surviving majority partition.
        majority: Vec<usize>,
        /// The isolated site, treated as down.
        isolated: usize,
    },
    /// Any other split is a multiple failure: block until reconnection.
    MustBlock,
}

/// Classify a site→group assignment per §5 for a cluster of `G + 2` sites.
pub fn classify(group_of: &[u32], group_size_g: usize) -> PartitionVerdict {
    let n = group_of.len();
    debug_assert_eq!(n, group_size_g + 2, "RADD cluster has G+2 sites");
    // BTreeMap so the verdict (and the order of `majority`) is a pure
    // function of the assignment — iteration reaches the returned value,
    // which downstream drivers compare and trace (R002, DESIGN.md §16).
    let mut groups: std::collections::BTreeMap<u32, Vec<usize>> = Default::default();
    for (site, &g) in group_of.iter().enumerate() {
        groups.entry(g).or_default().push(site);
    }
    match groups.len() {
        1 => PartitionVerdict::Connected,
        2 => {
            let mut parts: Vec<Vec<usize>> = groups.into_values().collect();
            parts.sort_by_key(|p| p.len());
            let (small, large) = (&parts[0], &parts[1]);
            if small.len() == 1 && large.len() == group_size_g + 1 {
                PartitionVerdict::SingleFailureLike {
                    majority: large.clone(),
                    isolated: small[0],
                }
            } else {
                PartitionVerdict::MustBlock
            }
        }
        _ => PartitionVerdict::MustBlock,
    }
}

/// May `actor` operate under `verdict`?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Gate {
    /// Operation may proceed.
    Proceed,
    /// The actor sits in the isolated singleton and must cease processing.
    ActorIsolated {
        /// The isolated site.
        site: usize,
    },
    /// The whole system must block until reconnection.
    Blocked,
}

/// Gate an operation by `actor_site` (`None` for an external client attached
/// to the majority) against the current partition verdict.
pub fn gate(verdict: &PartitionVerdict, actor_site: Option<usize>) -> Gate {
    match verdict {
        PartitionVerdict::Connected => Gate::Proceed,
        PartitionVerdict::MustBlock => Gate::Blocked,
        PartitionVerdict::SingleFailureLike { isolated, .. } => {
            if actor_site == Some(*isolated) {
                Gate::ActorIsolated { site: *isolated }
            } else {
                Gate::Proceed
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn g_plus_1_and_1_is_single_failure_like() {
        let mut groups = vec![0u32; 10];
        groups[4] = 1;
        let v = classify(&groups, 8);
        assert!(matches!(
            v,
            PartitionVerdict::SingleFailureLike { isolated: 4, .. }
        ));
        assert_eq!(gate(&v, None), Gate::Proceed);
        assert_eq!(gate(&v, Some(0)), Gate::Proceed);
        assert_eq!(gate(&v, Some(4)), Gate::ActorIsolated { site: 4 });
    }

    #[test]
    fn any_other_split_blocks() {
        let mut groups = vec![0u32; 10];
        groups[0] = 1;
        groups[1] = 1;
        let v = classify(&groups, 8);
        assert_eq!(v, PartitionVerdict::MustBlock);
        assert_eq!(gate(&v, None), Gate::Blocked);
    }

    /// Compact verdict expectation for the classification table.
    #[derive(Debug, PartialEq, Eq)]
    enum Want {
        Connected,
        Isolated(usize),
        Block,
    }

    fn want_of(v: &PartitionVerdict) -> Want {
        match v {
            PartitionVerdict::Connected => Want::Connected,
            PartitionVerdict::SingleFailureLike { isolated, .. } => Want::Isolated(*isolated),
            PartitionVerdict::MustBlock => Want::Block,
        }
    }

    #[test]
    fn classification_table() {
        // (description, G, site→group assignment, expected verdict)
        let table: &[(&str, usize, Vec<u32>, Want)] = &[
            ("all connected, G=2", 2, vec![0, 0, 0, 0], Want::Connected),
            (
                "one label for everyone is connected whatever the label",
                2,
                vec![7, 7, 7, 7],
                Want::Connected,
            ),
            (
                "first site isolated, G=2",
                2,
                vec![1, 0, 0, 0],
                Want::Isolated(0),
            ),
            (
                "middle site isolated, G=2",
                2,
                vec![0, 0, 9, 0],
                Want::Isolated(2),
            ),
            (
                "last site isolated, G=2",
                2,
                vec![0, 0, 0, 3],
                Want::Isolated(3),
            ),
            ("even tie blocks, G=2", 2, vec![0, 0, 1, 1], Want::Block),
            (
                "majority vs two-site minority blocks, G=2",
                2,
                vec![0, 1, 0, 1],
                Want::Block,
            ),
            (
                "three-way split blocks even with a singleton, G=2",
                2,
                vec![0, 1, 2, 0],
                Want::Block,
            ),
            (
                "single isolated, G=8",
                8,
                vec![0, 0, 0, 0, 1, 0, 0, 0, 0, 0],
                Want::Isolated(4),
            ),
            (
                "five-five tie blocks, G=8",
                8,
                vec![0, 0, 0, 0, 0, 1, 1, 1, 1, 1],
                Want::Block,
            ),
            (
                "eight-two split blocks, G=8",
                8,
                vec![0, 0, 0, 0, 0, 0, 0, 0, 1, 1],
                Want::Block,
            ),
            (
                "fully shattered blocks, G=2",
                2,
                vec![0, 1, 2, 3],
                Want::Block,
            ),
        ];
        for (what, g, groups, want) in table {
            let got = want_of(&classify(groups, *g));
            assert_eq!(got, *want, "{what}: classify({groups:?}, G={g})");
        }
    }

    #[test]
    fn gate_table() {
        let isolated_2 = classify(&[0, 0, 1, 0], 2);
        let blocked = classify(&[0, 0, 1, 1], 2);
        // (description, verdict, actor, expected gate)
        let table: &[(&str, &PartitionVerdict, Option<usize>, Gate)] = &[
            (
                "external client rides the majority",
                &isolated_2,
                None,
                Gate::Proceed,
            ),
            (
                "majority-side actor proceeds",
                &isolated_2,
                Some(0),
                Gate::Proceed,
            ),
            (
                // The believed-down edge the client gate relies on: the
                // very site the majority treats as down is exactly the one
                // that must cease processing — its own operations are
                // refused even though, from its own vantage point, it is
                // healthy and *everyone else* looks down.
                "the isolated (believed-down) site itself must cease",
                &isolated_2,
                Some(2),
                Gate::ActorIsolated { site: 2 },
            ),
            (
                "another minority shape blocks everyone, external included",
                &blocked,
                None,
                Gate::Blocked,
            ),
            (
                "another minority shape blocks majority members too",
                &blocked,
                Some(0),
                Gate::Blocked,
            ),
        ];
        for (what, verdict, actor, want) in table {
            assert_eq!(gate(verdict, *actor), *want, "{what}");
        }
    }
}
