//! Property tests of the sans-IO machines, independent of any runtime.
//!
//! * **Idempotent parity application**: delivering the same `ParityUpdate`
//!   twice (a retransmission, §3.2's stop-and-wait) leaves the parity
//!   block and UID array exactly as after the first delivery, performs no
//!   block I/O, and answers from the reply cache.
//! * **No traffic to believed-down sites**: whatever the client machine is
//!   asked to do, it never exchanges a message with a site it believes
//!   down — degraded paths route around it (the whole point of §3.2).

use proptest::prelude::*;
use radd_layout::Geometry;
use radd_parity::{ChangeMask, Uid};
use radd_protocol::{
    Blocks, ClientErr, ClientIo, ClientMachine, Dest, Effect, MemBlocks, Msg, SiteMachine,
    SparePolicy,
};
use std::collections::VecDeque;

const G: usize = 4;
const ROWS: u64 = 12;
const BLOCK: usize = 32;

// ---------------------------------------------------------------------
// (a) duplicated parity-update delivery is effect-free after the first
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn duplicate_parity_update_is_effect_free(
        row in 0..ROWS,
        old in proptest::collection::vec(any::<u8>(), BLOCK),
        new in proptest::collection::vec(any::<u8>(), BLOCK),
        uid_raw in 1u64..u64::MAX,
        from_peer_salt in 0usize..G,
    ) {
        let geo = Geometry::new(G, ROWS).unwrap();
        let parity_site = geo.parity_site(row);
        // Sender: any data site of the row.
        let from_site = geo.data_sites(row)[from_peer_salt % G];
        let mut machine = SiteMachine::new(parity_site, G, ROWS, BLOCK);
        let mut blocks = MemBlocks::new(ROWS, BLOCK);

        let msg = Msg::ParityUpdate {
            row,
            mask_wire: ChangeMask::diff(&old, &new).encode(),
            uid: Uid::from_raw(uid_raw),
            from_site,
            tag: 7,
        };
        let src_peer = from_site + 1;

        let mut first = Vec::new();
        machine.handle(&mut blocks, src_peer, msg.clone(), &mut first);
        let applied_block = Blocks::read(&mut blocks, row).unwrap();
        let applied_uid = machine.parity_uids().get(&row).cloned();

        let mut second = Vec::new();
        machine.handle(&mut blocks, src_peer, msg, &mut second);

        // No block I/O of any kind on the duplicate.
        prop_assert!(
            !second.iter().any(|e| matches!(e, Effect::Read { .. } | Effect::Write { .. })),
            "duplicate delivery touched blocks: {second:?}"
        );
        // Same ack, straight from the reply cache.
        prop_assert!(
            second.iter().any(|e| matches!(
                e,
                Effect::Send { msg: Msg::Ack { tag: 7 }, replay: true, .. }
            )),
            "duplicate delivery did not replay the cached ack: {second:?}"
        );
        // Parity block and UID bookkeeping byte-identical.
        prop_assert_eq!(Blocks::read(&mut blocks, row).unwrap(), applied_block);
        prop_assert_eq!(machine.parity_uids().get(&row).cloned(), applied_uid);
    }
}

// ---------------------------------------------------------------------
// (b) the client machine never exchanges with a believed-down site
// ---------------------------------------------------------------------

/// A pure synchronous interpreter over `G + 2` site machines that panics
/// the moment the client exchanges with a believed-down site. Messages a
/// site sends to a down peer are swallowed (the threaded runtime's
/// behaviour; they would retransmit until the peer returned).
struct Net {
    sites: Vec<(SiteMachine, MemBlocks)>,
    down: Vec<bool>,
}

impl Net {
    fn new(n: usize) -> Net {
        Net {
            sites: (0..n)
                .map(|j| {
                    (
                        SiteMachine::new(j, G, ROWS, BLOCK),
                        MemBlocks::new(ROWS, BLOCK),
                    )
                })
                .collect(),
            down: vec![false; n],
        }
    }

    fn deliver(&mut self, dst: usize, src: usize, msg: Msg) -> Option<Msg> {
        let mut queue = VecDeque::new();
        queue.push_back((dst, src, msg));
        let mut reply = None;
        while let Some((d, s, m)) = queue.pop_front() {
            if self.down[d] {
                continue; // swallowed; a live sender would retransmit
            }
            let (machine, blocks) = &mut self.sites[d];
            let mut out = Vec::new();
            machine.handle(blocks, s, m, &mut out);
            for eff in out {
                if let Effect::Send { to, msg: sm, .. } = eff {
                    match to {
                        Dest::Peer(0) => reply = Some(sm),
                        Dest::Peer(p) => queue.push_back((p - 1, d + 1, sm)),
                        Dest::Site(t) => queue.push_back((t, d + 1, sm)),
                    }
                }
            }
        }
        reply
    }
}

impl ClientIo for Net {
    fn exchange(&mut self, site: usize, msg: Msg, _background: bool) -> Result<Msg, ClientErr> {
        assert!(
            !self.down[site],
            "client machine sent {msg:?} to believed-down site {site}"
        );
        self.deliver(site, 0, msg)
            .ok_or(ClientErr::Unavailable { site })
    }
}

#[derive(Debug, Clone)]
enum Op {
    Write { site: usize, index: u64, fill: u8 },
    Read { site: usize, index: u64 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..G + 2, 0..8u64, any::<u8>()).prop_map(|(site, index, fill)| Op::Write {
            site,
            index,
            fill
        }),
        (0..G + 2, 0..8u64).prop_map(|(site, index)| Op::Read { site, index }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn client_never_contacts_a_believed_down_site(
        down_site in 0..G + 2,
        ops in proptest::collection::vec(arb_op(), 1..40),
    ) {
        let mut net = Net::new(G + 2);
        let mut client =
            ClientMachine::new(G, ROWS, BLOCK, SparePolicy::OnePerParity, true, u16::MAX);

        // Seed some healthy-state content first.
        for s in 0..G + 2 {
            let _ = client.write(&mut net, s, 0, &[s as u8 + 1; BLOCK]);
        }

        net.down[down_site] = true;
        net.sites[down_site].0.set_state(radd_protocol::SiteState::Down);
        client.set_down(down_site, true);

        for op in &ops {
            // Errors (multiple-failure refusals, unavailable spares) are
            // legitimate protocol outcomes; the property is only that the
            // exchange assertion in `Net` never fires.
            match *op {
                Op::Write { site, index, fill } => {
                    let _ = client.write(&mut net, site, index, &[fill; BLOCK]);
                }
                Op::Read { site, index } => {
                    let _ = client.read(&mut net, site, index);
                }
            }
        }
    }
}
