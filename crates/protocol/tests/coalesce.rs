//! Deterministic tests of parity-update coalescing ([`CoalescePolicy`]).
//!
//! The driver is the test itself: writes are fed straight into the owner
//! [`SiteMachine`] and the parity site's acks are *withheld*, so the
//! per-row stop-and-wait queue actually builds depth — the situation
//! coalescing exists for. With [`CoalescePolicy::Merge`], the queued masks
//! must collapse into one pending update whose mask equals the
//! composition of the individual diffs; with [`CoalescePolicy::Off`], one
//! update per write must cross the wire, in order.

use bytes::Bytes;
use radd_layout::Geometry;
use radd_parity::ChangeMask;
use radd_protocol::{Blocks, CoalescePolicy, Dest, Effect, MemBlocks, Msg, SiteMachine};

const G: usize = 4;
const ROWS: u64 = 12;
const BLOCK: usize = 64;

/// Every `ParityUpdate` the machine pushed into `out`, as
/// `(wire tag, decoded mask, destination site)`.
fn parity_updates(out: &[Effect]) -> Vec<(u64, ChangeMask, usize)> {
    out.iter()
        .filter_map(|e| match e {
            Effect::Send {
                to: Dest::Site(s),
                msg: Msg::ParityUpdate { mask_wire, tag, .. },
                ..
            } => Some((*tag, ChangeMask::decode(mask_wire).unwrap(), *s)),
            _ => None,
        })
        .collect()
}

fn write_oks(out: &[Effect]) -> Vec<u64> {
    out.iter()
        .filter_map(|e| match e {
            Effect::Send {
                msg: Msg::WriteOk { tag },
                ..
            } => Some(*tag),
            _ => None,
        })
        .collect()
}

/// One parity update as observed on the wire: (uid, mask, payload bytes).
type SentUpdate = (u64, ChangeMask, usize);

/// Run three back-to-back writes with the parity ack withheld, then ack
/// what was sent. Returns (updates sent, `WriteOk` tags in resolution
/// order, final block content).
fn run(policy: CoalescePolicy) -> (Vec<SentUpdate>, Vec<u64>, Vec<u8>) {
    let geo = Geometry::new(G, ROWS).unwrap();
    let owner = 2usize;
    let index = 0u64;
    let row = geo.data_to_physical(owner, index);
    let parity = geo.parity_site(row);
    assert_ne!(parity, owner);
    let parity_peer = parity + 1; // site j answers from peer j + 1

    let mut machine = SiteMachine::new(owner, G, ROWS, BLOCK);
    machine.set_coalesce(policy);
    assert_eq!(machine.coalesce(), policy);
    let mut blocks = MemBlocks::new(ROWS, BLOCK);

    let payloads: Vec<Vec<u8>> = vec![vec![0x11; BLOCK], vec![0x22; BLOCK], vec![0x33; BLOCK]];
    let mut sent = Vec::new();
    let mut oks = Vec::new();
    for (i, p) in payloads.iter().enumerate() {
        let mut out = Vec::new();
        let msg = Msg::Write {
            index,
            data: Bytes::copy_from_slice(p),
            tag: 101 + i as u64,
        };
        machine.handle(&mut blocks, 0, msg, &mut out);
        sent.extend(parity_updates(&out));
        oks.extend(write_oks(&out));
    }
    // Drain the stop-and-wait queue: ack whatever is in flight until the
    // machine stops sending updates.
    let mut cursor = 0;
    while cursor < sent.len() {
        let tag = sent[cursor].0;
        cursor += 1;
        let mut out = Vec::new();
        machine.handle(&mut blocks, parity_peer, Msg::Ack { tag }, &mut out);
        sent.extend(parity_updates(&out));
        oks.extend(write_oks(&out));
    }
    let data = Blocks::read(&mut blocks, row).unwrap().to_vec();
    (sent, oks, data)
}

#[test]
fn merge_collapses_queued_updates_into_one() {
    let (sent, oks, data) = run(CoalescePolicy::Merge);
    // Write 1's update goes out immediately; writes 2 and 3 merge behind
    // it into a single second update.
    assert_eq!(sent.len(), 2, "expected 2 wire updates, got {sent:?}");
    // Every write is acknowledged exactly once, in order.
    assert_eq!(oks, vec![101, 102, 103]);
    // The merged mask is the composition 0x11-block -> 0x33-block.
    let expect = ChangeMask::diff(&[0x11; BLOCK], &[0x33; BLOCK]);
    assert_eq!(sent[1].1, expect, "merged mask is not diff(w1, w3)");
    // W1 storage holds the last write.
    assert_eq!(data, vec![0x33; BLOCK]);
}

#[test]
fn off_ships_every_update_serially() {
    let (sent, oks, data) = run(CoalescePolicy::Off);
    assert_eq!(
        sent.len(),
        3,
        "stop-and-wait must ship one update per write"
    );
    assert_eq!(oks, vec![101, 102, 103]);
    // Masks are the individual consecutive diffs.
    assert_eq!(sent[1].1, ChangeMask::diff(&[0x11; BLOCK], &[0x22; BLOCK]));
    assert_eq!(sent[2].1, ChangeMask::diff(&[0x22; BLOCK], &[0x33; BLOCK]));
    assert_eq!(data, vec![0x33; BLOCK]);
}

/// The parity site ends up with the same parity block either way: apply
/// the shipped masks of both runs to a zeroed parity block and compare.
#[test]
fn both_policies_produce_identical_parity() {
    let (merged, _, _) = run(CoalescePolicy::Merge);
    let (serial, _, _) = run(CoalescePolicy::Off);
    let mut via_merge = vec![0u8; BLOCK];
    for (_, mask, _) in &merged {
        mask.apply(&mut via_merge);
    }
    let mut via_serial = vec![0u8; BLOCK];
    for (_, mask, _) in &serial {
        mask.apply(&mut via_serial);
    }
    assert_eq!(via_merge, via_serial);
}

/// Coalescing only merges *waiting* updates; the defaults keep it off so
/// existing interpreters (the DES) are bit-for-bit unaffected.
#[test]
fn default_policy_is_off() {
    let machine = SiteMachine::new(0, G, ROWS, BLOCK);
    assert_eq!(machine.coalesce(), CoalescePolicy::Off);
    assert_eq!(CoalescePolicy::default(), CoalescePolicy::Off);
}
