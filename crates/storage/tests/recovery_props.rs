//! Property-based crash-recovery testing: for any transaction history and
//! any crash point, recovery must restore exactly the committed state —
//! for both storage managers.

use proptest::prelude::*;
use radd_storage::{NoOverwriteManager, RecoveryContext, StorageManager, TxnId, WalManager};
use std::collections::HashMap;

const PAGES: u64 = 8;
const PAGE_SIZE: usize = 64;

#[derive(Debug, Clone)]
enum Step {
    Begin,
    Write { txn_choice: u8, page: u64, tag: u8 },
    Commit { txn_choice: u8 },
    Abort { txn_choice: u8 },
    StealFlush { page: u64 },
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        2 => Just(Step::Begin),
        5 => (any::<u8>(), 0..PAGES, any::<u8>())
            .prop_map(|(txn_choice, page, tag)| Step::Write { txn_choice, page, tag }),
        2 => any::<u8>().prop_map(|txn_choice| Step::Commit { txn_choice }),
        1 => any::<u8>().prop_map(|txn_choice| Step::Abort { txn_choice }),
        1 => (0..PAGES).prop_map(|page| Step::StealFlush { page }),
    ]
}

/// Drive a manager through the steps, mirroring committed state into an
/// oracle. Returns the oracle.
fn drive<M: StorageManager>(m: &mut M, steps: &[Step], allow_steal: bool) -> HashMap<u64, Vec<u8>> {
    let mut committed: HashMap<u64, Vec<u8>> = HashMap::new();
    let mut live: Vec<(TxnId, HashMap<u64, Vec<u8>>)> = Vec::new();
    for step in steps {
        match step {
            Step::Begin => {
                let t = m.begin().unwrap();
                live.push((t, HashMap::new()));
            }
            Step::Write {
                txn_choice,
                page,
                tag,
            } => {
                if live.is_empty() {
                    continue;
                }
                let i = *txn_choice as usize % live.len();
                // 2PL discipline: skip if another live txn wrote this page.
                if live
                    .iter()
                    .enumerate()
                    .any(|(j, (_, w))| j != i && w.contains_key(page))
                {
                    continue;
                }
                let (t, writes) = &mut live[i];
                let data = vec![*tag; PAGE_SIZE];
                m.write(*t, *page, &data).unwrap();
                writes.insert(*page, data);
            }
            Step::Commit { txn_choice } => {
                if live.is_empty() {
                    continue;
                }
                let i = *txn_choice as usize % live.len();
                let (t, writes) = live.remove(i);
                m.commit(t).unwrap();
                committed.extend(writes);
            }
            Step::Abort { txn_choice } => {
                if live.is_empty() {
                    continue;
                }
                let i = *txn_choice as usize % live.len();
                let (t, _) = live.remove(i);
                m.abort(t).unwrap();
            }
            Step::StealFlush { page } => {
                if allow_steal {
                    // Only meaningful for the WAL manager; harmless skip
                    // otherwise (handled by the caller passing false).
                    let _ = page;
                }
            }
        }
    }
    committed
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn wal_recovery_restores_exactly_the_committed_state(
        steps in proptest::collection::vec(arb_step(), 1..60),
        remote in any::<bool>(),
    ) {
        let mut m = WalManager::new(PAGES, PAGE_SIZE);
        let mut committed = HashMap::new();
        {
            // Replay with real steal flushes for the WAL.
            let mut live: Vec<(TxnId, HashMap<u64, Vec<u8>>)> = Vec::new();
            for step in &steps {
                match step {
                    Step::Begin => {
                        live.push((m.begin().unwrap(), HashMap::new()));
                    }
                    Step::Write { txn_choice, page, tag } => {
                        if live.is_empty() { continue; }
                        let i = *txn_choice as usize % live.len();
                        if live.iter().enumerate().any(|(j, (_, w))| j != i && w.contains_key(page)) {
                            continue;
                        }
                        let (t, writes) = &mut live[i];
                        let data = vec![*tag; PAGE_SIZE];
                        m.write(*t, *page, &data).unwrap();
                        writes.insert(*page, data);
                    }
                    Step::Commit { txn_choice } => {
                        if live.is_empty() { continue; }
                        let i = *txn_choice as usize % live.len();
                        let (t, writes) = live.remove(i);
                        m.commit(t).unwrap();
                        committed.extend(writes);
                    }
                    Step::Abort { txn_choice } => {
                        if live.is_empty() { continue; }
                        let i = *txn_choice as usize % live.len();
                        let (t, _) = live.remove(i);
                        m.abort(t).unwrap();
                    }
                    Step::StealFlush { page } => {
                        m.flush_page(*page).unwrap();
                    }
                }
            }
        }
        m.crash();
        let ctx = if remote { RecoveryContext::RemoteRadd { g: 8 } } else { RecoveryContext::Local };
        m.recover(ctx).unwrap();
        for page in 0..PAGES {
            let want = committed.get(&page).cloned().unwrap_or_else(|| vec![0u8; PAGE_SIZE]);
            let got = m.committed(page).unwrap();
            prop_assert_eq!(&got[..], &want[..], "page {}", page);
        }
    }

    #[test]
    fn no_overwrite_recovery_restores_exactly_the_committed_state(
        steps in proptest::collection::vec(arb_step(), 1..60),
    ) {
        let mut m = NoOverwriteManager::new(PAGES, PAGE_SIZE);
        let committed = drive(&mut m, &steps, false);
        m.crash();
        let stats = m.recover(RecoveryContext::Local).unwrap();
        prop_assert_eq!(stats.log_blocks_read, 0, "never a log to scan");
        for page in 0..PAGES {
            let want = committed.get(&page).cloned().unwrap_or_else(|| vec![0u8; PAGE_SIZE]);
            let got = m.committed(page).unwrap();
            prop_assert_eq!(&got[..], &want[..], "page {}", page);
        }
    }

    /// Both managers agree with each other on every committed page for the
    /// same history (differential testing).
    #[test]
    fn managers_agree_on_committed_state(
        steps in proptest::collection::vec(arb_step(), 1..50),
    ) {
        let mut wal = WalManager::new(PAGES, PAGE_SIZE);
        let mut now = NoOverwriteManager::new(PAGES, PAGE_SIZE);
        drive(&mut wal, &steps, false);
        drive(&mut now, &steps, false);
        wal.crash();
        now.crash();
        wal.recover(RecoveryContext::Local).unwrap();
        now.recover(RecoveryContext::Local).unwrap();
        for page in 0..PAGES {
            prop_assert_eq!(
                &wal.committed(page).unwrap()[..],
                &now.committed(page).unwrap()[..],
                "page {}", page
            );
        }
    }
}
